#!/usr/bin/env bash
# Tier-1 verification plus the cheap robustness regression gates.
#
# Everything here runs offline: no network, no external crates. The
# `--smoke` report paths use tiny geometries and trial counts so a full
# run stays in CI budget while still exercising the fault-injection and
# margin layers end to end (their shape assertions run inside the report
# builders, so a regression panics the binary).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --workspace

echo "== clippy (deny warnings, all targets incl. benches) =="
cargo clippy --workspace --all-targets --features bench -- -D warnings

echo "== tests (default scheduler: calendar queue) =="
cargo test -q --workspace

echo "== differential + invariance suites (default scheduler: reference heap) =="
# The `reference-queue` feature only flips which scheduler plain
# constructors pick — both implementations are always compiled — so the
# differential suites prove byte-identical behaviour from either default.
cargo test -q --workspace --features reference-queue \
    --test sim_equivalence --test thread_invariance --test rf_conformance

echo "== robustness smoke reports =="
cargo run -q --release -p hiperrf-bench --bin repro -- margins --smoke
cargo run -q --release -p hiperrf-bench --bin repro -- faults --smoke

echo "== design-registry smoke matrix =="
cargo run -q --release -p hiperrf-bench --bin repro -- designs --smoke

echo "== static lint matrix (netlist DRC + min/max-path timing) =="
# lint_matrix asserts every registered design is error-free, so this run
# doubles as the gate keeping shipped netlists DRC- and timing-clean.
cargo run -q --release -p hiperrf-bench --bin repro -- lint --smoke

echo "== no new lint suppressions =="
# The crates carry zero `#[allow(dead_code)]` / `#[allow(unused...)]`
# attributes; keep it that way rather than silencing what sfq-lint or
# clippy find.
if grep -rn --include='*.rs' -E '#\[allow\((dead_code|unused)' crates tests; then
    echo "error: new #[allow(dead_code/unused...)] suppression found" >&2
    exit 1
fi

echo "== simulator-core perf smoke (schedulers + parallel MC) =="
cargo run -q --release -p hiperrf-bench --bin repro -- perf --smoke --threads 2

echo "== co-simulation smoke (CPU on pulse-level netlists) =="
cargo run -q --release -p hiperrf-bench --bin repro -- cosim --smoke

echo "== docs (deny rustdoc warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: OK"
