#!/usr/bin/env bash
# Tier-1 verification plus the cheap robustness regression gates.
#
# Everything here runs offline: no network, no external crates. The
# `--smoke` report paths use tiny geometries and trial counts so a full
# run stays in CI budget while still exercising the fault-injection and
# margin layers end to end (their shape assertions run inside the report
# builders, so a regression panics the binary).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --workspace

echo "== clippy (deny warnings, all targets incl. benches) =="
cargo clippy --workspace --all-targets --features bench -- -D warnings

echo "== tests (default scheduler: calendar queue) =="
cargo test -q --workspace

echo "== differential + invariance suites (default scheduler: reference heap) =="
# The `reference-queue` / `reference-engine` / `lane-scheduler` features
# only flip which scheduler / execution engine plain constructors pick —
# every implementation is always compiled — so the differential suites
# prove byte-identical behaviour from any default.
cargo test -q --workspace --features reference-queue \
    --test sim_equivalence --test engine_equivalence \
    --test thread_invariance --test rf_conformance

echo "== engine differential suite (default engine: dyn interpreter) =="
cargo test -q --workspace --features reference-engine \
    --test engine_equivalence --test sim_equivalence --test rf_conformance

echo "== scheduler torture + three-way differential (default scheduler: lane-batched) =="
# The torture suite replays seeded raw push/pop scripts (behind-cursor
# storms, wheel wrap-around, overflow migration, lane-capacity seq ties)
# against the heap oracle, then drives scheduler-hostile circuits across
# every scheduler x engine pairing; the perf smoke re-checks the
# three-scheduler agreement without enforcing throughput floors (smoke
# soaks are scheduling noise — floors are full-run only).
cargo test -q --workspace --features lane-scheduler \
    --test scheduler_torture --test sim_equivalence --test rf_conformance
cargo test -q --workspace --test scheduler_torture

echo "== permutation differential (default placement: identity, no prefetch) =="
# `reference-layout` pins the identity cell placement (the pre-layout
# delivery path) as the default; the equivalence suite then drives the
# BFS affinity layout and seeded arbitrary permutations against it and
# requires byte-identical traces, violations, stats, and work counters.
cargo test -q --workspace --features reference-layout \
    --test engine_equivalence --test sim_equivalence --test rf_conformance

echo "== typed-vs-raw differential (digest + observable equality, every design) =="
# The registry designs elaborate through the typed `sfq_cells::typed` API
# by default; the `new_raw` constructors keep the original CircuitBuilder
# wiring as an oracle. These suites require the two paths to agree on the
# netlist digest and on every simulation observable, and that random typed
# programs are lint-clean by construction.
cargo test -q --workspace --test typed_differential --test typed_properties

echo "== no new raw connect call sites in crates/core =="
# New wiring in hiperrf must go through the typed elaboration layer; raw
# `.connect(` / `.connect_delayed(` is reserved for the frozen `new_raw`
# differential oracles and intentional lint/digest fixtures. The per-file
# budgets below pin those; any count above budget means raw wiring crept
# into new code — port it to the typed API instead of raising the budget.
RAW_CONNECT_BUDGET="
banked.rs=6
demux.rs=4
fabric.rs=1
hashing.rs=1
hc_rf.rs=11
lint.rs=1
ndro_rf.rs=4
shift_rf.rs=8
"
RAW_CONNECT_FAIL=0
for f in crates/core/src/*.rs; do
    n=$(grep -cE '\.connect(_delayed)?\(' "$f" || true)
    base=$(basename "$f")
    allowed=$(printf '%s\n' "$RAW_CONNECT_BUDGET" | awk -F= -v f="$base" '$1==f{print $2}')
    allowed=${allowed:-0}
    if [ "$n" -gt "$allowed" ]; then
        echo "error: $f has $n raw connect call sites (budget: $allowed)" >&2
        RAW_CONNECT_FAIL=1
    fi
done
if [ "$RAW_CONNECT_FAIL" -ne 0 ]; then
    echo "error: new raw connect call sites in crates/core/src — use the typed API" >&2
    exit 1
fi
echo "raw connect call sites within budget"

echo "== robustness smoke reports =="
cargo run -q --release -p hiperrf-bench --bin repro -- margins --smoke
cargo run -q --release -p hiperrf-bench --bin repro -- faults --smoke

echo "== design-registry smoke matrix =="
cargo run -q --release -p hiperrf-bench --bin repro -- designs --smoke

echo "== static lint matrix (netlist DRC + min/max-path timing) =="
# lint_matrix asserts every registered design is error-free, so this run
# doubles as the gate keeping shipped netlists DRC- and timing-clean.
cargo run -q --release -p hiperrf-bench --bin repro -- lint --smoke

echo "== no new lint suppressions =="
# The crates carry zero `#[allow(dead_code)]` / `#[allow(unused...)]`
# attributes; keep it that way rather than silencing what sfq-lint or
# clippy find.
if grep -rn --include='*.rs' -E '#\[allow\((dead_code|unused)' crates tests; then
    echo "error: new #[allow(dead_code/unused...)] suppression found" >&2
    exit 1
fi

echo "== simulator-core perf smoke (engines + schedulers + parallel MC) =="
cargo run -q --release -p hiperrf-bench --bin repro -- perf --smoke --threads 2

echo "== co-simulation smoke (CPU on pulse-level netlists) =="
cargo run -q --release -p hiperrf-bench --bin repro -- cosim --smoke

echo "== sim-as-a-service smoke (submit, cache hit, drain) =="
cargo run -q --release -p hiperrf-bench --bin repro -- serve --smoke --json

echo "== crash recovery (SIGKILL mid-batch, WAL replay, digest equality) =="
SERVE_BIN=target/release/sfq-serve
SERVE_TMP=$(mktemp -d)
SERVE_SPEC='{"kind":"margins","design":"hiperrf","trials":6,"shard_len":1,"seed":"424242"}'

serve_wait_addr() { # addr-file -> prints address once published
    for _ in $(seq 200); do
        [ -s "$1" ] && { cat "$1"; return 0; }
        sleep 0.05
    done
    echo "error: sfq-serve never published its address" >&2
    return 1
}

# Uninterrupted baseline digest.
"$SERVE_BIN" run --wal "$SERVE_TMP/base.wal" --addr 127.0.0.1:0 \
    --addr-file "$SERVE_TMP/base.addr" 2>/dev/null &
BASE_PID=$!
BASE_ADDR=$(serve_wait_addr "$SERVE_TMP/base.addr")
"$SERVE_BIN" submit --addr "$BASE_ADDR" --spec "$SERVE_SPEC" > /dev/null
BASE_DIGEST=$("$SERVE_BIN" wait --addr "$BASE_ADDR" --id 1 \
    | grep -o '"digest":"[0-9a-f]*"' | head -1)
"$SERVE_BIN" drain --addr "$BASE_ADDR" > /dev/null
wait "$BASE_PID"

# Crash run: slowed shards so SIGKILL lands mid-batch, then resume on the
# same journal and require the byte-identical digest.
"$SERVE_BIN" run --wal "$SERVE_TMP/crash.wal" --addr 127.0.0.1:0 \
    --addr-file "$SERVE_TMP/crash.addr" --shard-delay-ms 150 2>/dev/null &
CRASH_PID=$!
CRASH_ADDR=$(serve_wait_addr "$SERVE_TMP/crash.addr")
"$SERVE_BIN" submit --addr "$CRASH_ADDR" --spec "$SERVE_SPEC" > /dev/null
for _ in $(seq 200); do
    DONE=$("$SERVE_BIN" health --addr "$CRASH_ADDR" 2>/dev/null \
        | grep -o '"shards_executed":[0-9]*' | grep -o '[0-9]*$' || true)
    [ "${DONE:-0}" -ge 2 ] && break
    sleep 0.05
done
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
rm -f "$SERVE_TMP/crash.addr"
"$SERVE_BIN" run --wal "$SERVE_TMP/crash.wal" --addr 127.0.0.1:0 \
    --addr-file "$SERVE_TMP/crash.addr" 2>/dev/null &
RESUME_PID=$!
RESUME_ADDR=$(serve_wait_addr "$SERVE_TMP/crash.addr")
RESUME_DIGEST=$("$SERVE_BIN" wait --addr "$RESUME_ADDR" --id 1 \
    | grep -o '"digest":"[0-9a-f]*"' | head -1)
"$SERVE_BIN" drain --addr "$RESUME_ADDR" > /dev/null
wait "$RESUME_PID"
rm -rf "$SERVE_TMP"
if [ -z "$BASE_DIGEST" ] || [ "$BASE_DIGEST" != "$RESUME_DIGEST" ]; then
    echo "error: resumed digest (${RESUME_DIGEST:-none}) != uninterrupted digest (${BASE_DIGEST:-none})" >&2
    exit 1
fi
echo "crash recovery: resumed digest matches uninterrupted run ($BASE_DIGEST)"

echo "== docs (deny rustdoc warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: OK"
