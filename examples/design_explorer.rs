//! Explores the register-file design space: JJ count, static power, and
//! readout delay for all three designs across sizes — the paper's Tables
//! I–III generalized into a sweep, showing where each design wins.
//!
//! Run with: `cargo run --example design_explorer`

use hiperrf::budget::{dual_banked_budget, hiperrf_budget, ndro_rf_budget};
use hiperrf::config::RfGeometry;
use hiperrf::delay::{readout_delay_ps, RfDesign};

fn main() {
    println!(
        "{:>10} {:>9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7}",
        "registers",
        "width",
        "JJ:base",
        "JJ:hi",
        "JJ:dual",
        "µW:base",
        "µW:hi",
        "µW:dual",
        "ps:base",
        "ps:hi",
        "ps:dual"
    );
    for regs in [4usize, 8, 16, 32, 64, 128] {
        for width in [16usize, 32, 64] {
            let g = RfGeometry::new(regs, width).expect("valid geometry");
            let base = ndro_rf_budget(g);
            let hi = hiperrf_budget(g);
            let dual = dual_banked_budget(g);
            println!(
                "{:>10} {:>9} | {:>8} {:>8} {:>8} | {:>8.0} {:>8.0} {:>8.0} | {:>7.1} {:>7.1} {:>7.1}",
                regs,
                width,
                base.jj_total(),
                hi.jj_total(),
                dual.jj_total(),
                base.static_power_uw(),
                hi.static_power_uw(),
                dual.static_power_uw(),
                readout_delay_ps(RfDesign::NdroBaseline, g),
                readout_delay_ps(RfDesign::HiPerRf, g),
                readout_delay_ps(RfDesign::DualBanked, g),
            );
        }
    }

    println!("\nCrossover analysis (width 32): where does HiPerRF start winning?");
    for regs in [2usize, 4, 8, 16, 32] {
        let g = RfGeometry::new(regs, 32).expect("valid geometry");
        let saving =
            1.0 - hiperrf_budget(g).jj_total() as f64 / ndro_rf_budget(g).jj_total() as f64;
        let verdict = if saving > 0.0 {
            "HiPerRF wins"
        } else {
            "baseline wins"
        };
        println!(
            "  {regs:>3} registers: JJ saving {:>6.1}%  -> {verdict}",
            saving * 100.0
        );
    }
    println!("\nThe paper's observation holds: overhead circuits (HC-CLK/WRITE/READ,");
    println!("LoopBuffer) amortize with size, so the advantage grows with the file.");
}
