//! Pulse-level playground: watch individual fluxons move through the HC
//! access circuits — HC-WRITE serializes a 2-bit value into a pulse train,
//! an HC-DRO cell accumulates it, HC-CLK pops it, and HC-READ counts it
//! back into parallel bits. Prints the ASCII waveforms.
//!
//! Run with: `cargo run --example pulse_playground [value0..3]`
//!
//! Set `VCD_OUT=/path/to/file.vcd` to additionally dump the waveforms in
//! VCD format for GTKWave.

use sfq_cells::builder::CircuitBuilder;
use sfq_cells::composite::{build_hc_clk, build_hc_read, build_hc_write};
use sfq_cells::storage::HcDro;
use sfq_sim::netlist::Pin;
use sfq_sim::prelude::*;
use sfq_sim::trace::render_waveforms;

fn main() {
    let value: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    assert!(value < 4, "a dual-bit cell stores 0..=3");

    let mut b = CircuitBuilder::new();
    let write = build_hc_write(&mut b);
    let cell = b.hcdro();
    let clk = build_hc_clk(&mut b);
    let read = build_hc_read(&mut b);
    b.connect(write.output, Pin::new(cell, HcDro::D));
    b.connect(clk.output, Pin::new(cell, HcDro::CLK));
    b.connect(Pin::new(cell, HcDro::Q), read.input);

    let mut sim = Simulator::new(b.finish());
    let p_train = sim.probe(write.output, "write train");
    let p_q = sim.probe(Pin::new(cell, HcDro::Q), "cell pops");
    let p_b0 = sim.probe(read.b0, "B0");
    let p_b1 = sim.probe(read.b1, "B1");

    // Write the value at t=0 (both bits pulsed simultaneously).
    if value & 1 != 0 {
        sim.inject(write.b0, Time::ZERO);
    }
    if value & 2 != 0 {
        sim.inject(write.b1, Time::ZERO);
    }
    sim.run();
    println!(
        "wrote {value}: the cell holds {} fluxon(s)",
        sim.netlist().component(cell).stored().unwrap()
    );

    // Pop everything with one tripled enable, then latch the counters.
    sim.inject(clk.input, Time::from_ps(100.0));
    sim.run();
    sim.inject(read.read, Time::from_ps(200.0));
    sim.run();

    let b0 = !sim.probe_trace(p_b0).is_empty() as u64;
    let b1 = !sim.probe_trace(p_b1).is_empty() as u64;
    println!("HC-READ decoded: b1 b0 = {b1}{b0} (value {})", b1 * 2 + b0);
    assert_eq!(b1 * 2 + b0, value);

    let traces = [
        sim.probe_trace(p_train).clone(),
        sim.probe_trace(p_q).clone(),
        sim.probe_trace(p_b0).clone(),
        sim.probe_trace(p_b1).clone(),
    ];
    println!("\nwaveforms (5 ps bins; | = one pulse, 2/3 = multiple in a bin):");
    print!(
        "{}",
        render_waveforms(&traces, Time::ZERO, Duration::from_ps(5.0), 44)
    );
    println!("\nviolations: {:?}", sim.violations());

    if let Ok(path) = std::env::var("VCD_OUT") {
        let doc = sfq_sim::vcd::to_vcd(&traces, "hiperrf_playground");
        std::fs::write(&path, doc).expect("writable VCD path");
        println!("wrote VCD to {path}");
    }
}
