//! Runs one benchmark on the gate-level pipelined RISC-V core under all
//! four register-file designs and prints the Figure 14-style comparison,
//! including the stall breakdown that explains *where* HiPerRF's CPI
//! overhead comes from.
//!
//! Run with: `cargo run --example cpu_pipeline [benchmark]`

use hiperrf::delay::RfDesign;
use sfq_cpu::{GateLevelCpu, PipelineConfig};
use sfq_riscv::asm::assemble;
use sfq_workloads::suite;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "towers".to_string());
    let suite = suite();
    let Some(w) = suite.iter().find(|w| w.name == which) else {
        eprintln!("unknown benchmark `{which}`; available:");
        for w in &suite {
            eprintln!("  {}", w.name);
        }
        std::process::exit(2);
    };

    let prog = assemble(&w.source, 0).expect("workload assembles");
    println!(
        "benchmark: {} ({} instruction words)\n",
        w.name,
        prog.words.len()
    );

    let mut baseline_cpi = None;
    for design in RfDesign::ALL {
        let mut cpu = GateLevelCpu::new(design, PipelineConfig::sodor());
        let out = cpu.run(&prog, w.mem_size, w.budget).expect("workload runs");
        assert_eq!(out.exit_code, 1, "self-check must pass");
        let cpi = out.stats.cpi();
        let overhead = baseline_cpi
            .map(|b: f64| format!("{:+.2}%", (cpi / b - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_string());
        println!("{:<28}  CPI {:6.2}  ({overhead})", design.name(), cpi);
        println!(
            "  retired {:>8}   raw {:>7}  loopback {:>5}  port {:>6}  control {:>7}  bank-conflicts {:>5}",
            out.stats.retired,
            out.stats.raw_stall_cycles,
            out.stats.loopback_stall_cycles,
            out.stats.port_stall_cycles,
            out.stats.control_stall_cycles,
            out.stats.bank_conflicts,
        );
        if baseline_cpi.is_none() {
            baseline_cpi = Some(cpi);
        }
    }
    println!("\n(paper Figure 14 averages: HiPerRF +9.8%, dual-banked +3.6%, ideal +2.3%)");
}
