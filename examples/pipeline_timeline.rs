//! Renders the gate-level pipeline timeline of a short dependent-chain
//! program on each register-file design: when each instruction reads the
//! register file, when its operands reach execute, and when it writes
//! back — making the RAW stalls and the HiPerRF loopback windows visible.
//!
//! Run with: `cargo run --example pipeline_timeline`

use hiperrf::delay::RfDesign;
use sfq_cpu::{GateLevelCpu, PipelineConfig};
use sfq_riscv::asm::assemble;
use sfq_riscv::disasm::disassemble;

const PROGRAM: &str = "
    li   t0, 3
    add  t1, t0, t0      # RAW on t0
    li   t2, 100         # independent
    add  t3, t1, t1      # RAW on t1
    add  t4, t3, t2      # RAW on t3 and t2
    mv   a0, t4
    li   a7, 93
    ecall";

fn main() {
    let prog = assemble(PROGRAM, 0).expect("assembles");
    for design in [
        RfDesign::NdroBaseline,
        RfDesign::HiPerRf,
        RfDesign::DualBanked,
    ] {
        let mut cpu = GateLevelCpu::new(design, PipelineConfig::sodor());
        let mut trace = Vec::new();
        let out = cpu
            .run_traced(&prog, 1 << 16, 1000, &mut trace)
            .expect("runs");
        println!("\n=== {} (CPI {:.2}) ===", design.name(), out.stats.cpi());
        println!(
            "{:>4} {:>5} {:>5} {:>5}  instruction",
            "pc", "rf", "op", "wb"
        );
        for rec in &trace {
            println!(
                "{:>4x} {:>5} {:>5} {:>5}  {}",
                rec.pc,
                rec.t_rf,
                rec.t_op,
                rec.t_wb,
                disassemble(rec.instr)
            );
        }
    }
    println!("\n(times in 28 ps gate cycles; note HiPerRF's later operand arrivals)");
}
