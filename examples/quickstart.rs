//! Quickstart: the HiPerRF mechanism in thirty lines.
//!
//! Builds a pulse-level 4×4-bit HiPerRF, writes a value, and shows that
//! reads are restoring: the HC-DRO cells are *destructive* (each fluxon
//! can only be popped once), yet the LoopBuffer recycles every readout
//! back into the source register.
//!
//! Run with: `cargo run --example quickstart`

use hiperrf::config::RfGeometry;
use hiperrf::hiperrf_rf::HiPerRf;
use hiperrf::RegisterFile;

fn main() {
    let mut rf = HiPerRf::new(RfGeometry::paper_4x4());
    println!(
        "built a 4x4-bit HiPerRF: {} cells, {} JJs",
        rf.census().total_cells(),
        rf.census().jj_total()
    );

    rf.write(1, 0b1011);
    println!("wrote 0b1011 into r1; cells now hold {:#06b}", rf.peek(1));

    for i in 1..=3 {
        let v = rf.read(1);
        println!(
            "read #{i}: got {v:#06b}; after the loopback write the cells hold {:#06b}",
            rf.peek(1)
        );
        assert_eq!(v, 0b1011);
        assert_eq!(rf.peek(1), 0b1011, "the loopback must restore the register");
    }

    rf.write(1, 0b0100);
    println!("overwrote with 0b0100; read back {:#06b}", rf.read(1));

    assert!(
        rf.violations().is_empty(),
        "no timing violations in any operation"
    );
    println!("no setup/hold/re-arm violations recorded.");

    // Every registered design speaks the same `RegisterFile` trait:
    println!("\nthe whole design registry, driven generically:");
    for design in hiperrf::designs::registry() {
        let mut rf = design.build(RfGeometry::paper_4x4());
        rf.write(2, 0b0110);
        assert_eq!(rf.read(2), 0b0110);
        println!(
            "  {design:<15} {:>5} JJs — write/read round trip ok",
            rf.census().jj_total()
        );
    }
}
