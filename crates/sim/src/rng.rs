//! Small deterministic random-number generator for fault injection and
//! Monte Carlo margin analysis.
//!
//! The workspace builds offline, so instead of an external `rand` crate the
//! fault layer uses this self-contained SplitMix64 generator. SplitMix64
//! passes BigCrush, needs only one `u64` of state, and — crucially for
//! reproducibility — supports cheap *stream derivation*: [`Rng64::fork`]
//! deterministically derives an independent substream from a parent seed and
//! a stream index, so per-trial and per-component randomness never depends
//! on evaluation order.
//!
//! Seed discipline: every public API that consumes randomness takes an
//! explicit `u64` seed; the same seed always reproduces the same pulses,
//! violations, and yield numbers.

/// SplitMix64 pseudo-random generator (public-domain algorithm by
/// Sebastiano Vigna).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Derives an independent substream from `seed` and a stream index.
    ///
    /// Used for per-trial and per-component randomness: the substream for
    /// `(seed, index)` is a pure function of its arguments, so it does not
    /// depend on how many draws other streams made.
    pub fn fork(seed: u64, index: u64) -> Self {
        // Mix the index through one SplitMix64 round so adjacent indices
        // land far apart in the parent sequence.
        let mut r = Rng64::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        r.next_u64();
        r
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is negligible for the small bounds used here.
        (self.next_u64() % bound as u64) as usize
    }

    /// Standard-normal draw (Box–Muller).
    pub fn gaussian(&mut self) -> f64 {
        // u1 in (0, 1] to keep ln finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gaussian draw clamped to `±clamp_sigmas` standard deviations —
    /// process variation is bounded in practice, and the clamp keeps
    /// perturbed delays strictly positive for the σ ranges the margin
    /// engine sweeps.
    pub fn gaussian_clamped(&mut self, clamp_sigmas: f64) -> f64 {
        self.gaussian().clamp(-clamp_sigmas, clamp_sigmas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_order_independent() {
        let a = Rng64::fork(7, 3);
        let b = Rng64::fork(7, 3);
        assert_eq!(a, b);
        assert_ne!(Rng64::fork(7, 3).next_u64(), Rng64::fork(7, 4).next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng64::new(0xdead_beef);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = Rng64::new(99);
        let n = 20_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.gaussian();
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn clamp_bounds_the_tail() {
        let mut r = Rng64::new(5);
        for _ in 0..10_000 {
            assert!(r.gaussian_clamped(3.0).abs() <= 3.0);
        }
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = Rng64::new(11);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }
}
