//! Thread-pinned defaults for pluggable simulator components.
//!
//! Both [`EngineKind`](crate::compiled::EngineKind) and
//! [`SchedulerKind`](crate::queue::SchedulerKind) expose a
//! `with_thread_default` that runs a closure with the given kind as the
//! thread's `Default` — the mechanism a job request uses to pin an engine
//! or scheduler for code that builds simulators internally (Monte Carlo
//! trials, replay shards) without threading a parameter through every
//! layer. This module holds the one shared implementation; each kind owns
//! its own `thread_local!` slot and passes it in.

use std::cell::Cell;
use std::thread::LocalKey;

/// Runs `f` with `value` stored in `slot`, restoring the previous
/// contents afterwards — including on unwind, so a panicking trial can
/// never leak its pin into the next job on a pooled worker thread.
pub(crate) fn with_override<T: Copy + 'static, R>(
    slot: &'static LocalKey<Cell<Option<T>>>,
    value: T,
    f: impl FnOnce() -> R,
) -> R {
    struct Restore<T: Copy + 'static> {
        slot: &'static LocalKey<Cell<Option<T>>>,
        prev: Option<T>,
    }
    impl<T: Copy + 'static> Drop for Restore<T> {
        fn drop(&mut self) {
            self.slot.with(|c| c.set(self.prev));
        }
    }
    let _restore = Restore {
        prev: slot.with(|c| c.replace(Some(value))),
        slot,
    };
    f()
}
