//! Netlist graph: components, pins, and delayed wires.
//!
//! A [`Netlist`] owns a set of components (anything implementing
//! [`crate::component::Component`]) and the wiring between their
//! pins. Output pins fan out to any number of input pins, each connection
//! carrying its own propagation delay (a Josephson transmission line or a
//! passive transmission line segment). Note that *logical* fan-out in SFQ
//! requires explicit splitter cells; the netlist permits electrical fan-out
//! so that probes can observe a pin without perturbing the circuit, but the
//! cell builders in `sfq-cells` always insert proper splitters.

use std::collections::HashMap;
use std::fmt;

use crate::component::Component;
use crate::time::Duration;

/// Identifier of a component within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Returns the raw index of the component.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (for analyses that iterate
    /// components by position; the caller is responsible for the index
    /// belonging to the netlist it came from).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        ComponentId(u32::try_from(index).expect("component index fits u32"))
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A specific pin on a specific component.
///
/// Pins are plain indices; each component documents its own pin map
/// (e.g. an NDRO cell uses `IN = 0`, `RESET = 1`, `CLK = 2` inputs and
/// `OUT = 0` output). Input and output pins are separate namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pin {
    /// The component the pin belongs to.
    pub component: ComponentId,
    /// The pin index within the component (input or output namespace
    /// depending on context).
    pub index: u8,
}

impl Pin {
    /// Creates a pin reference.
    pub fn new(component: ComponentId, index: u8) -> Self {
        Pin { component, index }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.component, self.index)
    }
}

/// A directed, delayed connection from an output pin to an input pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    /// Source output pin.
    pub from: Pin,
    /// Destination input pin.
    pub to: Pin,
    /// Propagation delay along the wire.
    pub delay: Duration,
}

/// The circuit graph: components plus wiring.
///
/// # Examples
///
/// Building a trivial two-component chain is done through the component
/// constructors of `sfq-cells`; at this layer the netlist only knows opaque
/// boxed components:
///
/// ```
/// use sfq_sim::netlist::Netlist;
///
/// let netlist = Netlist::new();
/// assert_eq!(netlist.component_count(), 0);
/// ```
#[derive(Default)]
pub struct Netlist {
    components: Vec<Box<dyn Component>>,
    labels: Vec<String>,
    /// Fan-out adjacency: (component, output pin) -> destinations.
    wires: HashMap<Pin, Vec<(Pin, Duration)>>,
    wire_count: usize,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a component with a human-readable instance label, returning its id.
    pub fn add(&mut self, label: impl Into<String>, component: Box<dyn Component>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(component);
        self.labels.push(label.into());
        id
    }

    /// Connects `from` (an output pin) to `to` (an input pin) with `delay`.
    pub fn connect(&mut self, from: Pin, to: Pin, delay: Duration) {
        self.wires.entry(from).or_default().push((to, delay));
        self.wire_count += 1;
    }

    /// Returns the destinations of an output pin.
    pub fn fanout(&self, from: Pin) -> &[(Pin, Duration)] {
        self.wires.get(&from).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of components in the netlist.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of wires in the netlist.
    pub fn wire_count(&self) -> usize {
        self.wire_count
    }

    /// Returns the label of a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn label(&self, id: ComponentId) -> &str {
        &self.labels[id.index()]
    }

    /// Returns a shared reference to a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn component(&self, id: ComponentId) -> &dyn Component {
        self.components[id.index()].as_ref()
    }

    /// Returns an exclusive reference to a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut dyn Component {
        self.components[id.index()].as_mut()
    }

    /// Iterates over `(id, label, component)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &str, &dyn Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId(i as u32), self.labels[i].as_str(), c.as_ref()))
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Netlist")
            .field("components", &self.components.len())
            .field("wires", &self.wire_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, PulseContext};
    use crate::time::Time;

    #[derive(Debug)]
    struct Dummy;
    impl Component for Dummy {
        fn kind(&self) -> &'static str {
            "dummy"
        }
        fn pulse(&mut self, _pin: u8, _now: Time, _ctx: &mut PulseContext<'_>) {}
    }

    #[test]
    fn add_and_lookup() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        assert_eq!(n.component_count(), 2);
        assert_eq!(n.label(a), "a");
        assert_eq!(n.label(b), "b");
        assert_eq!(n.component(a).kind(), "dummy");
    }

    #[test]
    fn connect_and_fanout() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        let from = Pin::new(a, 0);
        n.connect(from, Pin::new(b, 0), Duration::from_ps(1.0));
        n.connect(from, Pin::new(b, 1), Duration::from_ps(2.0));
        assert_eq!(n.fanout(from).len(), 2);
        assert_eq!(n.wire_count(), 2);
        assert!(n.fanout(Pin::new(b, 0)).is_empty());
    }

    #[test]
    fn pin_display() {
        let p = Pin::new(ComponentId(3), 1);
        assert_eq!(p.to_string(), "c3.1");
    }
}
