//! Netlist graph: components, pins, and delayed wires.
//!
//! A [`Netlist`] owns a set of components (anything implementing
//! [`crate::component::Component`]) and the wiring between their
//! pins. Output pins fan out to any number of input pins, each connection
//! carrying its own propagation delay (a Josephson transmission line or a
//! passive transmission line segment). Note that *logical* fan-out in SFQ
//! requires explicit splitter cells; the netlist permits electrical fan-out
//! so that probes can observe a pin without perturbing the circuit, but the
//! cell builders in `sfq-cells` always insert proper splitters.

use std::collections::HashMap;
use std::fmt;

use crate::component::Component;
use crate::time::Duration;

/// Identifier of a component within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Returns the raw index of the component.
    ///
    /// Indices are dense (`0..component_count()`), which makes them usable
    /// as keys into side tables; ids themselves can only be obtained from
    /// the netlist that owns the component ([`Netlist::add`],
    /// [`Netlist::iter`], [`Netlist::iter_scope`]), so analyses cannot
    /// forge an id for a netlist it never came from.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A specific pin on a specific component.
///
/// Pins are plain indices; each component documents its own pin map
/// (e.g. an NDRO cell uses `IN = 0`, `RESET = 1`, `CLK = 2` inputs and
/// `OUT = 0` output). Input and output pins are separate namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pin {
    /// The component the pin belongs to.
    pub component: ComponentId,
    /// The pin index within the component (input or output namespace
    /// depending on context).
    pub index: u8,
}

impl Pin {
    /// Creates a pin reference.
    pub fn new(component: ComponentId, index: u8) -> Self {
        Pin { component, index }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.component, self.index)
    }
}

/// A directed, delayed connection from an output pin to an input pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    /// Source output pin.
    pub from: Pin,
    /// Destination input pin.
    pub to: Pin,
    /// Propagation delay along the wire.
    pub delay: Duration,
}

/// A wire rejected by [`Netlist::try_connect`].
///
/// Construction code reaching for the ergonomic path uses
/// [`Netlist::connect`], which panics on these — both are always bugs in
/// hand-written elaborations. Code that *lints* netlists it did not build
/// (e.g. job-server analyses over hostile or generated inputs) uses
/// [`Netlist::try_connect`] and converts the error into a finding instead
/// of tripping a panic path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConnectError {
    /// A wire identical to one already present (same `from`, `to`, and
    /// delay) — the duplicate would silently double every pulse.
    DuplicateWire {
        /// Source output pin of the rejected wire.
        from: Pin,
        /// Destination input pin of the rejected wire.
        to: Pin,
        /// Delay of the rejected wire.
        delay: Duration,
    },
    /// A zero-delay wire from a component back to itself — an event at the
    /// same component and the same instant, which the event queue could
    /// never drain.
    ZeroDelaySelfLoop {
        /// Source output pin of the rejected wire.
        from: Pin,
        /// Destination input pin of the rejected wire.
        to: Pin,
    },
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::DuplicateWire { from, to, delay } => {
                write!(f, "duplicate wire {from} -> {to} ({} ps)", delay.as_ps())
            }
            ConnectError::ZeroDelaySelfLoop { from, to } => {
                write!(f, "zero-delay self-loop at {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for ConnectError {}

/// The circuit graph: components plus wiring, organised into hierarchical
/// instance scopes.
///
/// Scopes are `/`-separated instance paths (`bank1/reg3/loopbuf`). During
/// construction, [`Netlist::push_scope`]/[`Netlist::pop_scope`] maintain a
/// scope stack; every component added lands in the current scope, and its
/// stored label is the full path (`scope/name`). Analyses can then walk a
/// subsystem with [`Netlist::iter_scope`] or attribute any component via
/// [`Netlist::scope_of`] — the basis for deriving JJ budgets, static power,
/// and P&R hop counts from the elaborated structure itself.
///
/// # Examples
///
/// Building a trivial two-component chain is done through the component
/// constructors of `sfq-cells`; at this layer the netlist only knows opaque
/// boxed components:
///
/// ```
/// use sfq_sim::netlist::Netlist;
///
/// let netlist = Netlist::new();
/// assert_eq!(netlist.component_count(), 0);
/// ```
#[derive(Default)]
pub struct Netlist {
    components: Vec<Box<dyn Component>>,
    /// Full hierarchical labels, `scope/name`.
    labels: Vec<String>,
    /// Scope path of each component (empty string at the root). Index i
    /// describes component i; `labels[i]` always starts with `scopes[i]`.
    scopes: Vec<String>,
    /// Scope stack during construction.
    scope_stack: Vec<String>,
    /// Fan-out adjacency: (component, output pin) -> destinations.
    wires: HashMap<Pin, Vec<(Pin, Duration)>>,
    wire_count: usize,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Opens an instance scope; components added until the matching
    /// [`Netlist::pop_scope`] belong to it. Scopes nest: pushing `"reg3"`
    /// inside `"bank1"` places subsequent components in `bank1/reg3`.
    ///
    /// # Panics
    ///
    /// Panics if `scope` is empty or contains `/` (paths are built from
    /// single segments so that scope filtering stays unambiguous).
    pub fn push_scope(&mut self, scope: impl Into<String>) {
        let scope = scope.into();
        assert!(!scope.is_empty(), "scope segment must be non-empty");
        assert!(
            !scope.contains('/'),
            "scope segment must not contain '/': {scope}"
        );
        self.scope_stack.push(scope);
    }

    /// Closes the innermost instance scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        self.scope_stack
            .pop()
            .expect("pop_scope without matching push_scope");
    }

    /// The current scope path (`""` at the root).
    pub fn current_scope(&self) -> String {
        self.scope_stack.join("/")
    }

    /// Adds a component with a human-readable instance name, returning its
    /// id. The stored label is the name prefixed with the current scope
    /// path.
    pub fn add(&mut self, name: impl Into<String>, component: Box<dyn Component>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        let scope = self.current_scope();
        let name = name.into();
        let label = if scope.is_empty() {
            name
        } else {
            format!("{scope}/{name}")
        };
        self.components.push(component);
        self.labels.push(label);
        self.scopes.push(scope);
        id
    }

    /// Connects `from` (an output pin) to `to` (an input pin) with `delay`.
    ///
    /// # Panics
    ///
    /// Panics on a wire identical to one already present (same `from`,
    /// `to`, and `delay` — always a construction bug: the duplicate would
    /// silently double every pulse) and on a zero-delay self-loop (an
    /// event at the same component and the same instant, which the event
    /// queue could never drain). Self-loops with positive delay stay
    /// legal — deliberate feedback uses them. Analyses over netlists they
    /// did not build use [`Netlist::try_connect`] instead.
    pub fn connect(&mut self, from: Pin, to: Pin, delay: Duration) {
        if let Err(e) = self.try_connect(from, to, delay) {
            panic!("{e}");
        }
    }

    /// Connects `from` to `to` with `delay`, rejecting the degenerate
    /// wires [`Netlist::connect`] panics on. On `Err` the netlist is
    /// unchanged, so lint-style pipelines over hostile or generated
    /// netlists can record the defect as a finding and keep going.
    pub fn try_connect(&mut self, from: Pin, to: Pin, delay: Duration) -> Result<(), ConnectError> {
        if from.component == to.component && delay == Duration::ZERO {
            return Err(ConnectError::ZeroDelaySelfLoop { from, to });
        }
        let sinks = self.wires.entry(from).or_default();
        if sinks.iter().any(|&(t, d)| t == to && d == delay) {
            return Err(ConnectError::DuplicateWire { from, to, delay });
        }
        sinks.push((to, delay));
        self.wire_count += 1;
        Ok(())
    }

    /// Returns the destinations of an output pin.
    pub fn fanout(&self, from: Pin) -> &[(Pin, Duration)] {
        self.wires.get(&from).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every wire in the netlist, in unspecified order —
    /// the raw material for static analyses (DRC walks the full wire set,
    /// not just the fanout of known pins).
    pub fn wires(&self) -> impl Iterator<Item = Wire> + '_ {
        self.wires.iter().flat_map(|(&from, sinks)| {
            sinks
                .iter()
                .map(move |&(to, delay)| Wire { from, to, delay })
        })
    }

    /// Number of components in the netlist.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of wires in the netlist.
    pub fn wire_count(&self) -> usize {
        self.wire_count
    }

    /// Returns the full hierarchical label of a component
    /// (`scope/.../name`).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn label(&self, id: ComponentId) -> &str {
        &self.labels[id.index()]
    }

    /// The whole label table, indexed by component id — the compiled
    /// engine borrows it once per delivery for lazy violation labels.
    pub(crate) fn labels_raw(&self) -> &[String] {
        &self.labels
    }

    /// Returns the scope path of a component (`""` for root components).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn scope_of(&self, id: ComponentId) -> &str {
        &self.scopes[id.index()]
    }

    /// Returns the local instance name of a component (its label with the
    /// scope path stripped).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn name_of(&self, id: ComponentId) -> &str {
        let label = self.label(id);
        let scope = self.scope_of(id);
        if scope.is_empty() {
            label
        } else {
            &label[scope.len() + 1..]
        }
    }

    /// Returns a shared reference to a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn component(&self, id: ComponentId) -> &dyn Component {
        self.components[id.index()].as_ref()
    }

    /// Returns an exclusive reference to a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut dyn Component {
        self.components[id.index()].as_mut()
    }

    /// Returns an exclusive component reference together with its label.
    ///
    /// Components and labels live in separate arrays, so the split borrow
    /// lets the simulator hand a cell its own label (for violation
    /// records) without cloning the string on every delivery.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn component_and_label_mut(&mut self, id: ComponentId) -> (&mut dyn Component, &str) {
        (
            self.components[id.index()].as_mut(),
            self.labels[id.index()].as_str(),
        )
    }

    /// Iterates over `(id, label, component)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &str, &dyn Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId(i as u32), self.labels[i].as_str(), c.as_ref()))
    }

    /// Iterates over the components inside a scope subtree. `path` selects
    /// the scope itself and everything nested beneath it, segment-wise:
    /// `"bank1"` matches `bank1` and `bank1/reg3` but not `bank10`. The
    /// empty path selects every component. Yielded ids are real ids of this
    /// netlist — callers never reconstruct indices.
    pub fn iter_scope<'a>(
        &'a self,
        path: &'a str,
    ) -> impl Iterator<Item = (ComponentId, &'a str, &'a dyn Component)> {
        self.iter()
            .filter(|(id, _, _)| scope_matches(self.scope_of(*id), path))
    }

    /// Iterates over components whose scope satisfies a predicate — the
    /// general form of [`Netlist::iter_scope`] for analyses that group
    /// scopes by pattern (e.g. every `reg*` region of a register file).
    pub fn iter_scoped_by<'a, F>(
        &'a self,
        mut pred: F,
    ) -> impl Iterator<Item = (ComponentId, &'a str, &'a dyn Component)>
    where
        F: FnMut(&str) -> bool + 'a,
    {
        self.iter()
            .filter(move |(id, _, _)| pred(self.scope_of(*id)))
    }

    /// The distinct top-level scope segments, in first-appearance order.
    /// Root components (empty scope) are not represented.
    pub fn top_scopes(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for scope in &self.scopes {
            if scope.is_empty() {
                continue;
            }
            let top = scope
                .split('/')
                .next()
                .expect("split yields at least one segment");
            if !seen.contains(&top) {
                seen.push(top);
            }
        }
        seen
    }
}

/// Returns `true` if `scope` lies in the subtree rooted at `path`
/// (segment-aware prefix match; the empty path matches everything).
fn scope_matches(scope: &str, path: &str) -> bool {
    if path.is_empty() {
        return true;
    }
    match scope.strip_prefix(path) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Netlist")
            .field("components", &self.components.len())
            .field("wires", &self.wire_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, PulseContext};
    use crate::time::Time;

    #[derive(Debug)]
    struct Dummy;
    impl Component for Dummy {
        fn kind(&self) -> &'static str {
            "dummy"
        }
        fn pulse(&mut self, _pin: u8, _now: Time, _ctx: &mut PulseContext<'_>) {}
    }

    #[test]
    fn add_and_lookup() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        assert_eq!(n.component_count(), 2);
        assert_eq!(n.label(a), "a");
        assert_eq!(n.label(b), "b");
        assert_eq!(n.component(a).kind(), "dummy");
    }

    #[test]
    fn connect_and_fanout() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        let from = Pin::new(a, 0);
        n.connect(from, Pin::new(b, 0), Duration::from_ps(1.0));
        n.connect(from, Pin::new(b, 1), Duration::from_ps(2.0));
        assert_eq!(n.fanout(from).len(), 2);
        assert_eq!(n.wire_count(), 2);
        assert!(n.fanout(Pin::new(b, 0)).is_empty());
        assert_eq!(n.wires().count(), 2);
        assert!(n.wires().all(|w| w.from == from));
    }

    #[test]
    #[should_panic(expected = "duplicate wire")]
    fn duplicate_identical_wire_panics() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        n.connect(Pin::new(a, 0), Pin::new(b, 0), Duration::from_ps(1.0));
        n.connect(Pin::new(a, 0), Pin::new(b, 0), Duration::from_ps(1.0));
    }

    #[test]
    fn parallel_wires_with_distinct_delays_are_accepted() {
        // Not identical, so construction lets them through — sfq-lint's
        // dup-wire rule flags the double driving instead.
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        n.connect(Pin::new(a, 0), Pin::new(b, 0), Duration::from_ps(1.0));
        n.connect(Pin::new(a, 0), Pin::new(b, 0), Duration::from_ps(2.0));
        assert_eq!(n.fanout(Pin::new(a, 0)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-delay self-loop")]
    fn zero_delay_self_loop_panics() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        n.connect(Pin::new(a, 0), Pin::new(a, 0), Duration::ZERO);
    }

    #[test]
    fn try_connect_reports_degenerate_wires_without_mutating() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        let b = n.add("b", Box::new(Dummy));
        let d = Duration::from_ps(1.0);
        assert_eq!(n.try_connect(Pin::new(a, 0), Pin::new(b, 0), d), Ok(()));
        assert_eq!(
            n.try_connect(Pin::new(a, 0), Pin::new(b, 0), d),
            Err(ConnectError::DuplicateWire {
                from: Pin::new(a, 0),
                to: Pin::new(b, 0),
                delay: d,
            })
        );
        assert_eq!(
            n.try_connect(Pin::new(a, 0), Pin::new(a, 1), Duration::ZERO),
            Err(ConnectError::ZeroDelaySelfLoop {
                from: Pin::new(a, 0),
                to: Pin::new(a, 1),
            })
        );
        // Rejected wires leave the netlist untouched.
        assert_eq!(n.wire_count(), 1);
        assert_eq!(n.fanout(Pin::new(a, 0)).len(), 1);
    }

    #[test]
    fn connect_error_displays_like_the_old_panics() {
        let a = Pin::new(ComponentId(0), 0);
        let b = Pin::new(ComponentId(1), 2);
        let dup = ConnectError::DuplicateWire {
            from: a,
            to: b,
            delay: Duration::from_ps(3.0),
        };
        assert_eq!(dup.to_string(), "duplicate wire c0.0 -> c1.2 (3 ps)");
        let loopback = ConnectError::ZeroDelaySelfLoop { from: a, to: a };
        assert_eq!(loopback.to_string(), "zero-delay self-loop at c0.0 -> c0.0");
    }

    #[test]
    fn delayed_self_loop_is_legal() {
        let mut n = Netlist::new();
        let a = n.add("a", Box::new(Dummy));
        n.connect(Pin::new(a, 0), Pin::new(a, 0), Duration::from_ps(1.0));
        assert_eq!(n.wire_count(), 1);
    }

    #[test]
    fn pin_display() {
        let p = Pin::new(ComponentId(3), 1);
        assert_eq!(p.to_string(), "c3.1");
    }

    #[test]
    fn scopes_prefix_labels() {
        let mut n = Netlist::new();
        let root = n.add("jtl0", Box::new(Dummy));
        n.push_scope("bank1");
        n.push_scope("reg3");
        let cell = n.add("loopbuf", Box::new(Dummy));
        n.pop_scope();
        let demux = n.add("ndroc0", Box::new(Dummy));
        n.pop_scope();
        assert_eq!(n.label(root), "jtl0");
        assert_eq!(n.scope_of(root), "");
        assert_eq!(n.label(cell), "bank1/reg3/loopbuf");
        assert_eq!(n.scope_of(cell), "bank1/reg3");
        assert_eq!(n.name_of(cell), "loopbuf");
        assert_eq!(n.scope_of(demux), "bank1");
        assert_eq!(n.current_scope(), "");
    }

    #[test]
    fn iter_scope_is_segment_aware() {
        let mut n = Netlist::new();
        n.push_scope("bank1");
        let a = n.add("a", Box::new(Dummy));
        n.push_scope("reg3");
        let b = n.add("b", Box::new(Dummy));
        n.pop_scope();
        n.pop_scope();
        n.push_scope("bank10");
        let c = n.add("c", Box::new(Dummy));
        n.pop_scope();

        let in_bank1: Vec<ComponentId> = n.iter_scope("bank1").map(|(id, _, _)| id).collect();
        assert_eq!(in_bank1, vec![a, b], "bank10 must not leak into bank1");
        let all: Vec<ComponentId> = n.iter_scope("").map(|(id, _, _)| id).collect();
        assert_eq!(all, vec![a, b, c]);
        let nested: Vec<ComponentId> = n.iter_scope("bank1/reg3").map(|(id, _, _)| id).collect();
        assert_eq!(nested, vec![b]);
    }

    #[test]
    fn iter_scoped_by_groups_regions() {
        let mut n = Netlist::new();
        for r in 0..3 {
            n.push_scope(format!("reg{r}"));
            n.add("cell", Box::new(Dummy));
            n.pop_scope();
        }
        n.push_scope("readport");
        n.add("demux", Box::new(Dummy));
        n.pop_scope();
        let regs = n.iter_scoped_by(|s| s.starts_with("reg")).count();
        assert_eq!(regs, 3);
        assert_eq!(n.top_scopes(), vec!["reg0", "reg1", "reg2", "readport"]);
    }

    #[test]
    #[should_panic(expected = "pop_scope")]
    fn unbalanced_pop_panics() {
        let mut n = Netlist::new();
        n.pop_scope();
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn slash_in_scope_segment_panics() {
        let mut n = Netlist::new();
        n.push_scope("a/b");
    }
}
