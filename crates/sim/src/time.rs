//! Simulation time.
//!
//! SFQ circuit delays are specified in picoseconds with sub-picosecond
//! precision (for example the 2.62 ps mean PTL hop delay of the paper's
//! place-and-route model). To keep event ordering exact and deterministic
//! the simulator stores time as an integer number of **femtoseconds**.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of femtoseconds in a picosecond.
pub const FS_PER_PS: u64 = 1_000;

/// An absolute simulation time (femtosecond resolution).
///
/// `Time` is an absolute instant; [`Duration`] is a difference between two
/// instants. Both are thin integer newtypes, cheap to copy and exactly
/// ordered.
///
/// # Examples
///
/// ```
/// use sfq_sim::time::{Duration, Time};
///
/// let t = Time::ZERO + Duration::from_ps(53.0);
/// assert_eq!(t.as_ps(), 53.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulation time (femtosecond resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The origin of simulation time.
    pub const ZERO: Time = Time(0);

    /// Creates a time from a femtosecond count.
    pub const fn from_fs(fs: u64) -> Self {
        Time(fs)
    }

    /// Creates a time from a picosecond value.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is negative or not finite.
    pub fn from_ps(ps: f64) -> Self {
        assert!(
            ps.is_finite() && ps >= 0.0,
            "time must be finite and non-negative: {ps}"
        );
        Time((ps * FS_PER_PS as f64).round() as u64)
    }

    /// Returns the raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Returns the time in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 as f64 / FS_PER_PS as f64
    }

    /// Returns the duration elapsed since `earlier`, or `None` if `earlier`
    /// is in the future.
    pub fn checked_since(self, earlier: Time) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }

    /// Returns the absolute difference between two instants.
    pub fn abs_diff(self, other: Time) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from a femtosecond count.
    pub const fn from_fs(fs: u64) -> Self {
        Duration(fs)
    }

    /// Creates a duration from a picosecond value.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is negative or not finite.
    pub fn from_ps(ps: f64) -> Self {
        assert!(
            ps.is_finite() && ps >= 0.0,
            "duration must be finite and non-negative: {ps}"
        );
        Duration((ps * FS_PER_PS as f64).round() as u64)
    }

    /// Returns the raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Returns the duration in picoseconds.
    pub fn as_ps(self) -> f64 {
        self.0 as f64 / FS_PER_PS as f64
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ps", self.as_ps())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ps", self.as_ps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_round_trip() {
        let d = Duration::from_ps(53.0);
        assert_eq!(d.as_fs(), 53_000);
        assert_eq!(d.as_ps(), 53.0);
    }

    #[test]
    fn sub_ps_precision() {
        let d = Duration::from_ps(2.62);
        assert_eq!(d.as_fs(), 2_620);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_ps(10.0) + Duration::from_ps(5.5);
        assert_eq!(t.as_ps(), 15.5);
        assert_eq!((t - Time::from_ps(10.0)).as_ps(), 5.5);
    }

    #[test]
    fn checked_since_ordering() {
        let a = Time::from_ps(5.0);
        let b = Time::from_ps(7.0);
        assert_eq!(b.checked_since(a), Some(Duration::from_ps(2.0)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1.0, 2.0, 3.5].iter().map(|&p| Duration::from_ps(p)).sum();
        assert_eq!(total, Duration::from_ps(6.5));
    }

    #[test]
    fn times_scales() {
        assert_eq!(Duration::from_ps(10.0).times(3), Duration::from_ps(30.0));
    }

    #[test]
    #[should_panic]
    fn negative_ps_panics() {
        let _ = Duration::from_ps(-1.0);
    }

    #[test]
    fn display_formats_ps() {
        assert_eq!(Time::from_ps(53.0).to_string(), "53.000ps");
        assert_eq!(Duration::from_ps(2.62).to_string(), "2.620ps");
    }
}
