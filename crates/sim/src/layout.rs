//! Cell placement: the delivery-path memory layout.
//!
//! The compiled engine stores per-cell state in a flat `CellSlot` array
//! and fan-out in a fused CSR, both indexed by *slot*. By default slots
//! follow construction order (`ComponentId` order), which for the
//! register-file netlists means a read burst hops between decoder,
//! storage-loop, and merge-tree cells that sit hundreds of cache lines
//! apart. A [`CellLayout`] is a permutation of cells onto slots chosen so
//! that cells which fire together sit together: [`Netlist::layout`]
//! computes a BFS/affinity order over the netlist graph — seeded at
//! source cells, visiting each cell's fan-out shortest-delay-first — so
//! a pulse front walks mostly-forward through the slot array instead of
//! striding across it.
//!
//! # The layout is invisible, by construction
//!
//! The permutation is strictly internal to placement. Events carry
//! external `ComponentId`s, so the total event order
//! `(time, component, seq)` — and with it traces, VCD dumps, violation
//! labels, and every `SimStats` counter — is untouched by *any*
//! permutation, not just the affinity one. The differential suites run
//! seeded arbitrary permutations against the identity layout to pin that
//! down, and the `reference-layout` cargo feature keeps the identity
//! placement (plus no prefetch: the exact part-2 delivery path) as the
//! escape hatch and perf baseline.

use crate::netlist::{ComponentId, Netlist};

/// Which cell placement a [`Simulator`](crate::simulator::Simulator)
/// compiles its slot tables with. Both produce byte-identical
/// observables (see the module docs); they differ only in locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// BFS/affinity order from [`Netlist::layout`] — the default fast
    /// path, with next-event software prefetch enabled in the serve loop.
    Affinity,
    /// Identity placement (slot == component id) with prefetch disabled:
    /// the part-2 delivery path, kept as the differential baseline.
    Identity,
}

impl LayoutKind {
    /// Every layout, reference first — the order differential tests and
    /// perf baselines iterate.
    pub const ALL: [LayoutKind; 2] = [LayoutKind::Identity, LayoutKind::Affinity];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LayoutKind::Affinity => "affinity",
            LayoutKind::Identity => "identity",
        }
    }

    /// Parses a [`label`](LayoutKind::label) back into a kind.
    pub fn parse(s: &str) -> Option<LayoutKind> {
        LayoutKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl Default for LayoutKind {
    /// The compiled-in default: the affinity layout, unless the
    /// `reference-layout` feature pins the identity placement.
    fn default() -> Self {
        if cfg!(feature = "reference-layout") {
            LayoutKind::Identity
        } else {
            LayoutKind::Affinity
        }
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// A bijection between cells (external `ComponentId`s) and slots
/// (positions in the compiled engine's state tables), stored in both
/// directions so delivery pays one dense lookup per event and
/// `sync_back` one per touched slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellLayout {
    /// `slot_of[cell] = slot`.
    slot_of: Vec<u32>,
    /// `cell_of[slot] = cell` (the inverse).
    cell_of: Vec<u32>,
}

impl CellLayout {
    /// The identity placement: slot `i` holds cell `i`.
    pub fn identity(cells: usize) -> CellLayout {
        let slot_of: Vec<u32> = (0..cells as u32).collect();
        CellLayout {
            cell_of: slot_of.clone(),
            slot_of,
        }
    }

    /// Builds a layout from an explicit cell→slot map.
    ///
    /// # Panics
    ///
    /// Panics unless `slot_of` is a permutation of `0..slot_of.len()` —
    /// a slot assigned twice (or out of range) would silently alias two
    /// cells' state.
    pub fn from_permutation(slot_of: Vec<u32>) -> CellLayout {
        let n = slot_of.len();
        let mut cell_of = vec![u32::MAX; n];
        for (cell, &slot) in slot_of.iter().enumerate() {
            assert!(
                (slot as usize) < n,
                "slot {slot} out of range for {n} cells"
            );
            assert!(
                cell_of[slot as usize] == u32::MAX,
                "slot {slot} assigned to two cells — not a permutation"
            );
            cell_of[slot as usize] = cell as u32;
        }
        CellLayout { slot_of, cell_of }
    }

    /// A seeded uniformly-random permutation (Fisher–Yates over
    /// [`Rng64`](crate::rng::Rng64)) — the differential suites' adversarial
    /// layout: if observables survive arbitrary placements, they survive
    /// any placement the affinity pass could produce.
    pub fn shuffled(cells: usize, seed: u64) -> CellLayout {
        let mut rng = crate::rng::Rng64::new(seed);
        let mut slot_of: Vec<u32> = (0..cells as u32).collect();
        for i in (1..cells).rev() {
            slot_of.swap(i, rng.next_below(i + 1));
        }
        CellLayout::from_permutation(slot_of)
    }

    /// Number of cells (== number of slots).
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True iff the layout covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// True iff this is the identity placement.
    pub fn is_identity(&self) -> bool {
        self.slot_of
            .iter()
            .enumerate()
            .all(|(i, &s)| s as usize == i)
    }

    /// The slot holding `id`'s state.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the laid-out netlist.
    pub fn slot_of(&self, id: ComponentId) -> usize {
        self.slot_of[id.index()] as usize
    }

    /// The cell whose state lives in `slot` (the inverse map).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn cell_of(&self, slot: usize) -> ComponentId {
        ComponentId(self.cell_of[slot])
    }

    /// The raw cell→slot table, for the compiled engine's per-event
    /// remap load.
    pub(crate) fn slot_table(&self) -> &[u32] {
        &self.slot_of
    }

    /// The raw slot→cell table, for table building and `sync_back`.
    pub(crate) fn cell_table(&self) -> &[u32] {
        &self.cell_of
    }
}

impl Netlist {
    /// Computes the BFS/affinity cell layout of this netlist: a pure
    /// function of the graph (components + wires), independent of labels,
    /// scopes, or cell internals.
    ///
    /// Seeds are the source cells — no incoming wire from another cell —
    /// in id order (stimulus enters the circuit there, so the pulse front
    /// starts there too). From each frontier cell the BFS visits fan-out
    /// destinations shortest-delay-first: a short wire means the
    /// downstream cell fires within the same burst, so it is pulled into
    /// an adjacent slot, while long (operation-gap) wires only order what
    /// is left over. Cells reachable only through cycles are seeded from
    /// the lowest unvisited id once the frontier drains, so the result is
    /// always a total permutation.
    pub fn layout(&self) -> CellLayout {
        let n = self.component_count();
        let mut adj: Vec<Vec<(u64, u32)>> = vec![Vec::new(); n];
        let mut has_input = vec![false; n];
        for w in self.wires() {
            let from = w.from.component.index();
            let to = w.to.component.index();
            adj[from].push((w.delay.as_fs(), to as u32));
            if from != to {
                has_input[to] = true;
            }
        }
        // The wires() iteration order is unspecified (hash map), so sort
        // each adjacency list into the (delay, destination) visit order —
        // the layout must be deterministic for a given graph.
        for out in &mut adj {
            out.sort_unstable();
        }
        let mut cell_of = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let mut frontier = std::collections::VecDeque::new();
        for cell in 0..n {
            if !has_input[cell] {
                placed[cell] = true;
                frontier.push_back(cell as u32);
            }
        }
        let mut fallback = 0usize;
        while cell_of.len() < n {
            let Some(cell) = frontier.pop_front() else {
                // Only cycles remain: seed the lowest unplaced id.
                while placed[fallback] {
                    fallback += 1;
                }
                placed[fallback] = true;
                frontier.push_back(fallback as u32);
                continue;
            };
            cell_of.push(cell);
            for &(_, to) in &adj[cell as usize] {
                if !placed[to as usize] {
                    placed[to as usize] = true;
                    frontier.push_back(to);
                }
            }
        }
        let mut slot_of = vec![0u32; n];
        for (slot, &cell) in cell_of.iter().enumerate() {
            slot_of[cell as usize] = slot as u32;
        }
        CellLayout { slot_of, cell_of }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, PulseContext};
    use crate::netlist::Pin;
    use crate::time::{Duration, Time};

    #[derive(Debug)]
    struct Dummy;
    impl Component for Dummy {
        fn kind(&self) -> &'static str {
            "dummy"
        }
        fn pulse(&mut self, _pin: u8, _now: Time, _ctx: &mut PulseContext<'_>) {}
    }

    fn chain(n: usize) -> Netlist {
        let mut netlist = Netlist::new();
        let ids: Vec<ComponentId> = (0..n)
            .map(|i| netlist.add(format!("c{i}"), Box::new(Dummy)))
            .collect();
        for w in ids.windows(2) {
            netlist.connect(Pin::new(w[0], 0), Pin::new(w[1], 0), Duration::from_ps(3.0));
        }
        netlist
    }

    #[test]
    fn identity_round_trips() {
        let l = CellLayout::identity(5);
        assert_eq!(l.len(), 5);
        assert!(l.is_identity());
        for i in 0..5 {
            assert_eq!(l.slot_of(ComponentId(i as u32)), i);
            assert_eq!(l.cell_of(i), ComponentId(i as u32));
        }
    }

    #[test]
    fn shuffled_is_a_seeded_bijection() {
        let a = CellLayout::shuffled(64, 7);
        let b = CellLayout::shuffled(64, 7);
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, CellLayout::shuffled(64, 8));
        let mut seen = [false; 64];
        for slot in 0..64 {
            let cell = a.cell_of(slot);
            assert!(!seen[cell.index()]);
            seen[cell.index()] = true;
            assert_eq!(a.slot_of(cell), slot);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_slot_panics() {
        let _ = CellLayout::from_permutation(vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        let _ = CellLayout::from_permutation(vec![0, 3]);
    }

    #[test]
    fn chain_layout_is_the_identity() {
        // A forward chain is already in firing order.
        let l = chain(6).layout();
        assert!(l.is_identity());
    }

    #[test]
    fn layout_follows_firing_order_not_construction_order() {
        // The chain is constructed backwards (cell 7 feeds 6 feeds … 0),
        // so construction order is the exact reverse of firing order. The
        // affinity layout must place the source at slot 0 and walk the
        // chain forward — and it must be a deterministic bijection.
        let mut netlist = Netlist::new();
        let ids: Vec<ComponentId> = (0..8)
            .map(|i| netlist.add(format!("c{i}"), Box::new(Dummy)))
            .collect();
        for i in (1..8).rev() {
            netlist.connect(
                Pin::new(ids[i], 0),
                Pin::new(ids[i - 1], 0),
                Duration::from_ps(3.0),
            );
        }
        let l = netlist.layout();
        for (slot, i) in (0..8).rev().enumerate() {
            assert_eq!(l.slot_of(ids[i]), slot);
        }
        assert_eq!(l, netlist.layout(), "layout is deterministic");
    }

    #[test]
    fn short_wires_order_the_frontier_first() {
        // One source fans out over a slow wire to cell 1 and a fast wire
        // to cell 2: the fast destination must take the earlier slot.
        let mut netlist = Netlist::new();
        let s = netlist.add("s", Box::new(Dummy));
        let slow = netlist.add("slow", Box::new(Dummy));
        let fast = netlist.add("fast", Box::new(Dummy));
        netlist.connect(Pin::new(s, 0), Pin::new(slow, 0), Duration::from_ps(9.0));
        netlist.connect(Pin::new(s, 1), Pin::new(fast, 0), Duration::from_ps(2.0));
        let l = netlist.layout();
        assert_eq!(l.slot_of(s), 0);
        assert_eq!(l.slot_of(fast), 1);
        assert_eq!(l.slot_of(slow), 2);
    }

    #[test]
    fn cycle_only_netlists_still_get_total_layouts() {
        // Two cells feeding each other: no source cell exists, so the
        // fallback seeds the lowest id.
        let mut netlist = Netlist::new();
        let a = netlist.add("a", Box::new(Dummy));
        let b = netlist.add("b", Box::new(Dummy));
        netlist.connect(Pin::new(a, 0), Pin::new(b, 0), Duration::from_ps(3.0));
        netlist.connect(Pin::new(b, 0), Pin::new(a, 0), Duration::from_ps(3.0));
        let l = netlist.layout();
        assert_eq!(l.len(), 2);
        assert_eq!(l.slot_of(a), 0);
        assert_eq!(l.slot_of(b), 1);
    }

    #[test]
    fn default_kind_tracks_the_feature() {
        let expect = if cfg!(feature = "reference-layout") {
            LayoutKind::Identity
        } else {
            LayoutKind::Affinity
        };
        assert_eq!(LayoutKind::default(), expect);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in LayoutKind::ALL {
            assert_eq!(LayoutKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(LayoutKind::parse("no-such-layout"), None);
    }
}
