//! # sfq-sim — event-driven pulse-level SFQ circuit simulator
//!
//! Single-flux-quantum (SFQ) logic computes with picosecond-scale fluxon
//! pulses rather than voltage levels. This crate provides the simulation
//! substrate used by the HiPerRF reproduction: a deterministic event-driven
//! simulator in which components exchange timestamped pulses over delayed
//! wires.
//!
//! The abstraction level matches the one the paper's own evaluation uses:
//! devices are behavioral cells with calibrated propagation delays and
//! setup/hold/critical-time windows (extracted in the paper from JoSim and
//! the RSFQ cell library), not SPICE-level Josephson-junction dynamics.
//!
//! ## Layers
//!
//! - [`time`]: femtosecond-resolution [`Time`](time::Time) and
//!   [`Duration`](time::Duration).
//! - [`netlist`]: the circuit graph of components and delayed wires.
//! - [`component`]: the [`Component`](component::Component) trait every cell
//!   implements.
//! - [`simulator`]: the event loop, stimulus injection, probes, and the
//!   [`SimStats`](simulator::SimStats) run counters.
//! - [`queue`]: the pending-event schedulers — the default bucketed
//!   calendar queue, the lane-batched horizon scheduler, and the seed
//!   `BinaryHeap` reference
//!   ([`SchedulerKind`](queue::SchedulerKind); the `reference-queue`
//!   feature flips the default to the heap, `lane-scheduler` to the
//!   lane-batched queue).
//! - [`compiled`]: the compiled execution engine — a lowering pass that
//!   flattens the netlist into SoA state with enum-dispatched cell ops
//!   ([`EngineKind`](compiled::EngineKind); the `reference-engine`
//!   feature flips the default back to the dyn interpreter).
//! - [`layout`]: the delivery-path cell placement — a BFS/affinity
//!   permutation of cells onto compiled-engine slots
//!   ([`CellLayout`](layout::CellLayout) /
//!   [`LayoutKind`](layout::LayoutKind); the `reference-layout` feature
//!   pins the identity placement as the differential baseline).
//! - [`trace`]: pulse traces and ASCII waveform rendering.
//! - [`violation`]: timing-violation records and the
//!   [`ViolationPolicy`](violation::ViolationPolicy) that gives them
//!   consequences (`Record` / `FailFast` / `Degrade`).
//! - [`fault`]: seeded deterministic fault injection
//!   ([`FaultPlan`](fault::FaultPlan): pin drops/duplicates, spurious
//!   pulses, per-instance Gaussian delay variation).
//! - [`rng`]: the self-contained SplitMix64 generator behind all
//!   randomness (explicit seeds only).
//!
//! ## Example
//!
//! ```
//! use sfq_sim::prelude::*;
//!
//! // A netlist with no cells still runs (vacuously).
//! let mut sim = Simulator::new(Netlist::new());
//! assert_eq!(sim.run().delivered, 0);
//! ```
//!
//! Concrete SFQ cells (DRO, HC-DRO, NDRO, NDROC, splitters, mergers, …)
//! live in the `sfq-cells` crate, which builds on this one.

pub mod compiled;
pub mod component;
pub mod fault;
pub mod layout;
pub mod netlist;
mod pinning;
pub mod queue;
pub mod rng;
pub mod simulator;
pub mod time;
pub mod trace;
pub mod vcd;
pub mod violation;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::compiled::{CellOp, EngineKind, GateFunc, Lowered};
    pub use crate::component::{Component, PulseContext};
    pub use crate::fault::FaultPlan;
    pub use crate::layout::{CellLayout, LayoutKind};
    pub use crate::netlist::{ComponentId, Netlist, Pin, Wire};
    pub use crate::queue::SchedulerKind;
    pub use crate::rng::Rng64;
    pub use crate::simulator::{ProbeId, RunStats, SimStats, Simulator};
    pub use crate::time::{Duration, Time};
    pub use crate::trace::PulseTrace;
    pub use crate::violation::{SimError, Violation, ViolationPolicy};
}
