//! The event-driven pulse simulator.
//!
//! [`Simulator`] owns a [`Netlist`] and an event queue of in-flight pulses.
//! External stimuli are injected with [`Simulator::inject`]; [`Simulator::run`]
//! drains the queue in strict time order, delivering each pulse to its target
//! component, which may emit further pulses. Probes attached to output pins
//! record every pulse that passes them.
//!
//! The queue itself is pluggable (see [`crate::queue`]): the default is a
//! bucketed calendar queue, with the seed `BinaryHeap` kept as a
//! byte-identical reference scheduler. [`Simulator::stats`] exposes cheap
//! lifetime counters ([`SimStats`]) so harnesses can report how much work a
//! run actually did.

use std::collections::HashMap;

use crate::compiled::{CompiledNetlist, EngineKind, SLOT_BYTES};
use crate::component::{CellLabel, PulseContext};
use crate::fault::{FaultPlan, FaultState};
use crate::layout::{CellLayout, LayoutKind};
use crate::netlist::{Netlist, Pin};
use crate::queue::{Event, Queue, SchedulerKind};
use crate::time::{Duration, Time};
use crate::trace::PulseTrace;
use crate::violation::{SimError, Violation, ViolationPolicy};

/// Identifier of a probe attached to an output pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeId(u32);

/// Outcome summary of a [`Simulator::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Pulses delivered to component input pins.
    pub delivered: u64,
    /// Pulses emitted by components on output pins.
    pub emitted: u64,
    /// Time of the last processed event, if any event was processed.
    pub last_event: Option<Time>,
}

/// Cheap lifetime counters of a [`Simulator`], cumulative over every run.
///
/// Unlike [`RunStats`] (one `run` call) these survive across calls, so a
/// driver that issues many operations can report the total simulation work
/// behind them. Both schedulers produce identical counter values for the
/// same stimuli — the equivalence suite asserts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Events popped from the queue (including deliveries a fault plan
    /// subsequently dropped).
    pub events_processed: u64,
    /// Largest number of simultaneously pending events observed.
    ///
    /// Definition: the maximum, over every queue insertion (external
    /// injections and fan-out pushes alike), of the pending-event count
    /// *after* that insertion. Both engines push the identical event
    /// sequence and both schedulers count undrained events identically,
    /// so this figure is comparable across every engine × scheduler
    /// combination — the equivalence suites assert it.
    pub peak_queue_depth: usize,
    /// Total simulation time advanced (the time of the latest processed
    /// event).
    pub sim_time_advanced: Duration,
    /// Bytes of compiled cell state the delivery path touched: one
    /// 64-byte `CellSlot` line per delivered pulse. Counted identically
    /// by both engines (the dyn interpreter charges the slot-model cost
    /// its boxed cells correspond to), so locality work shows up as the
    /// same byte count moving faster — the equivalence suites assert the
    /// counter matches across engines, schedulers, and layouts.
    pub slot_bytes_touched: u64,
    /// Fan-out CSR rows consulted: one per emission (every emission
    /// resolves exactly one source pin's fan-out row, hit or miss).
    /// Engine-independent by the same construction.
    pub fanout_rows_visited: u64,
}

impl SimStats {
    /// Folds another simulator's counters into this one: event counts and
    /// simulated time add, peak queue depth takes the maximum (the
    /// simulators never share a queue, so their peaks are independent).
    /// Batch harnesses that build one `Simulator` per trial use this to
    /// report the aggregate work behind a whole job.
    pub fn absorb(&mut self, other: SimStats) {
        self.events_processed += other.events_processed;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.sim_time_advanced += other.sim_time_advanced;
        self.slot_bytes_touched += other.slot_bytes_touched;
        self.fanout_rows_visited += other.fanout_rows_visited;
    }
}

/// Event-driven simulator over a [`Netlist`].
///
/// # Examples
///
/// ```
/// use sfq_sim::netlist::Netlist;
/// use sfq_sim::simulator::Simulator;
///
/// let mut sim = Simulator::new(Netlist::new());
/// let stats = sim.run();
/// assert_eq!(stats.delivered, 0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    netlist: Netlist,
    queue: Queue,
    seq: u64,
    now: Time,
    stats: SimStats,
    probes: HashMap<Pin, Vec<ProbeId>>,
    probe_records: Vec<PulseTrace>,
    violations: Vec<Violation>,
    /// Hard cap on processed events per `run` to catch runaway feedback.
    event_budget: u64,
    policy: ViolationPolicy,
    /// Pulses dropped by cells under [`ViolationPolicy::Degrade`].
    degraded_drops: u64,
    fault: Option<FaultState>,
    engine: EngineKind,
    /// Cell-placement policy for the compiled engine's slot array
    /// (affinity BFS order by default, identity under `reference-layout`).
    /// Purely internal to the lowering: every observable is keyed on
    /// external [`ComponentId`](crate::netlist::ComponentId)s, so the
    /// layout can change without changing a single trace byte.
    layout_kind: LayoutKind,
    /// Explicit placement override (differential tests drive arbitrary
    /// seeded permutations through this); wins over `layout_kind`.
    layout_override: Option<CellLayout>,
    /// Lazily compiled execution cache (compiled engine only). Dropped —
    /// after syncing its state back into the boxed components — whenever
    /// the netlist or the probe set could change under it.
    compiled: Option<CompiledNetlist>,
    /// Reusable per-delivery emission buffer; keeps the hot loop
    /// allocation-free across runs.
    emit_scratch: Vec<(u8, Time)>,
}

impl Simulator {
    /// Default maximum number of events processed by a single `run` call.
    pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

    /// Creates a simulator over a finished netlist, using the default
    /// scheduler (the calendar queue, or the reference heap when the
    /// `reference-queue` feature is enabled) and the default engine (the
    /// compiled engine, or the dyn interpreter when the
    /// `reference-engine` feature is enabled).
    pub fn new(netlist: Netlist) -> Self {
        Self::with_scheduler(netlist, SchedulerKind::default())
    }

    /// Creates a simulator on an explicit scheduler and the default engine.
    pub fn with_scheduler(netlist: Netlist, scheduler: SchedulerKind) -> Self {
        Self::with_engine(netlist, scheduler, EngineKind::default())
    }

    /// Creates a simulator on an explicit scheduler and engine.
    pub fn with_engine(netlist: Netlist, scheduler: SchedulerKind, engine: EngineKind) -> Self {
        Simulator {
            netlist,
            queue: Queue::new(scheduler),
            seq: 0,
            now: Time::ZERO,
            stats: SimStats::default(),
            probes: HashMap::new(),
            probe_records: Vec::new(),
            violations: Vec::new(),
            event_budget: Self::DEFAULT_EVENT_BUDGET,
            policy: ViolationPolicy::Record,
            degraded_drops: 0,
            fault: None,
            engine,
            layout_kind: LayoutKind::default(),
            layout_override: None,
            compiled: None,
            emit_scratch: Vec::new(),
        }
    }

    /// The scheduler this simulator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Swaps the scheduler implementation. Only legal while no events are
    /// pending, i.e. before the first injection or between fully drained
    /// runs — which is when harnesses (and the differential test suite)
    /// want to flip it.
    ///
    /// # Panics
    ///
    /// Panics if events are still pending.
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) {
        assert!(
            self.queue.is_empty(),
            "cannot switch schedulers with {} event(s) in flight",
            self.queue.len()
        );
        self.queue = Queue::new(scheduler);
    }

    /// The execution engine this simulator delivers pulses with.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// Swaps the execution engine. Like [`Simulator::set_scheduler`], only
    /// legal while no events are pending; all accumulated state (cell
    /// contents, probes, violations, statistics) carries over — both
    /// engines produce byte-identical observables either way.
    ///
    /// # Panics
    ///
    /// Panics if events are still pending.
    pub fn set_engine(&mut self, engine: EngineKind) {
        assert!(
            self.queue.is_empty(),
            "cannot switch engines with {} event(s) in flight",
            self.queue.len()
        );
        self.drop_compiled();
        self.engine = engine;
    }

    /// The cell-placement policy the compiled engine lowers with.
    pub fn layout_kind(&self) -> LayoutKind {
        self.layout_kind
    }

    /// Swaps the cell-placement policy. Unlike scheduler/engine swaps this
    /// is legal at any point: placement is internal to the compiled
    /// lowering (events carry external component ids), so the cache is
    /// simply synced back and relowered at the next run with identical
    /// observables. Clears any [`Simulator::set_cell_layout`] override.
    pub fn set_layout_kind(&mut self, kind: LayoutKind) {
        self.drop_compiled();
        self.layout_kind = kind;
        self.layout_override = None;
    }

    /// Pins an explicit cell placement for the compiled lowering,
    /// overriding [`Simulator::layout_kind`]. The differential suites use
    /// this to drive seeded arbitrary permutations and assert that every
    /// observable is byte-identical to the identity placement.
    ///
    /// # Panics
    ///
    /// The next compiled run panics if the permutation's length does not
    /// match the netlist's component count.
    pub fn set_cell_layout(&mut self, layout: CellLayout) {
        self.drop_compiled();
        self.layout_override = Some(layout);
    }

    /// Drops the compiled cache (if any), first restoring every touched
    /// cell's boxed state so nothing is lost. Called before any operation
    /// that could invalidate the lowering: netlist mutation, probe
    /// registration, engine swaps.
    fn drop_compiled(&mut self) {
        if let Some(mut compiled) = self.compiled.take() {
            compiled.sync_back(&mut self.netlist);
        }
    }

    /// Lifetime counters, cumulative over every run so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Sets the violation policy for subsequent runs.
    pub fn set_violation_policy(&mut self, policy: ViolationPolicy) {
        self.policy = policy;
    }

    /// The active violation policy.
    pub fn violation_policy(&self) -> ViolationPolicy {
        self.policy
    }

    /// Pulses dropped so far by cells degrading under
    /// [`ViolationPolicy::Degrade`].
    pub fn degraded_drops(&self) -> u64 {
        self.degraded_drops
    }

    /// Installs a fault plan: schedules its spurious pulses now and applies
    /// its pin faults and delay variation to all subsequent deliveries.
    /// Replaces any previously installed plan (counters reset).
    ///
    /// # Panics
    ///
    /// Panics if a spurious pulse is planned before the current time.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for &(pin, at) in plan.spurious_pulses() {
            self.inject(pin, at);
        }
        self.fault = Some(FaultState::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// `(dropped, duplicated)` pulse counts applied by the fault plan.
    pub fn fault_counts(&self) -> (u64, u64) {
        self.fault
            .as_ref()
            .map_or((0, 0), |f| (f.dropped, f.duplicated))
    }

    /// Sets the per-run event budget (runaway-feedback guard).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Returns the netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Returns an exclusive reference to the netlist (for state pokes in
    /// tests). Invalidates the compiled execution cache — state is synced
    /// back into the boxed components first and the lowering is redone
    /// lazily at the next run, so pokes through this reference are always
    /// observed by either engine.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        self.drop_compiled();
        &mut self.netlist
    }

    /// The current simulation time (time of the last processed event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Attaches a probe to an *output* pin; every pulse emitted on that pin
    /// is recorded with its timestamp.
    pub fn probe(&mut self, pin: Pin, label: impl Into<String>) -> ProbeId {
        // The compiled cache's flat probe table is now stale; rebuild
        // lazily at the next run.
        self.drop_compiled();
        let id = ProbeId(self.probe_records.len() as u32);
        self.probes.entry(pin).or_default().push(id);
        self.probe_records.push(PulseTrace::new(label));
        id
    }

    /// Returns the pulses recorded by a probe so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this simulator's [`Simulator::probe`].
    pub fn probe_trace(&self, id: ProbeId) -> &PulseTrace {
        &self.probe_records[id.0 as usize]
    }

    /// Clears a probe's recorded pulses (between driver operations).
    pub fn clear_probe(&mut self, id: ProbeId) {
        self.probe_records[id.0 as usize].clear();
    }

    /// Clears every probe's recorded pulses.
    pub fn clear_all_probes(&mut self) {
        for p in &mut self.probe_records {
            p.clear();
        }
    }

    /// Every probe's trace paired with the instance scope of the component
    /// it observes — ready for
    /// [`to_vcd_hierarchical`](crate::vcd::to_vcd_hierarchical), which
    /// renders the scopes as nested `$scope module` blocks.
    pub fn scoped_traces(&self) -> Vec<(String, PulseTrace)> {
        let mut scopes = vec![String::new(); self.probe_records.len()];
        for (pin, ids) in &self.probes {
            for id in ids {
                scopes[id.0 as usize] = self.netlist.scope_of(pin.component).to_string();
            }
        }
        scopes
            .into_iter()
            .zip(self.probe_records.iter().cloned())
            .collect()
    }

    /// Renders every probe as a VCD document whose `$scope module` blocks
    /// mirror the netlist's instance hierarchy.
    pub fn to_vcd(&self, top: &str) -> String {
        crate::vcd::to_vcd_hierarchical(&self.scoped_traces(), top)
    }

    /// Injects an external stimulus pulse into an *input* pin at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn inject(&mut self, pin: Pin, at: Time) {
        assert!(
            at >= self.now,
            "cannot inject into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq();
        self.push(Event::new(at, seq, pin));
    }

    /// Timing violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Drains recorded violations, returning them.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Runs until the event queue is empty. Returns run statistics.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (an oscillating feedback
    /// loop in the netlist), or if the [`ViolationPolicy::FailFast`] policy
    /// stops the run — use [`Simulator::try_run`] to handle that case.
    pub fn run(&mut self) -> RunStats {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs until the queue is empty or the next event is later than `deadline`.
    ///
    /// # Panics
    ///
    /// As for [`Simulator::run`].
    pub fn run_for(&mut self, deadline: Time) -> RunStats {
        self.try_run_for(deadline).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs until the event queue is empty. Under
    /// [`ViolationPolicy::FailFast`], stops at the first violation and
    /// returns it as [`SimError::FailFast`].
    pub fn try_run(&mut self) -> Result<RunStats, SimError> {
        self.run_until(None)
    }

    /// [`Simulator::try_run`] with a deadline.
    pub fn try_run_for(&mut self, deadline: Time) -> Result<RunStats, SimError> {
        self.run_until(Some(deadline))
    }

    fn run_until(&mut self, deadline: Option<Time>) -> Result<RunStats, SimError> {
        let result = match self.engine {
            EngineKind::Compiled => self.run_until_compiled(deadline),
            EngineKind::DynInterpreter => self.run_until_dyn(deadline),
        };
        // Re-base the tie-break sequence whenever the queue fully drains:
        // the packed event's 40-bit seq field then only has to bound
        // events in flight at once, not the lifetime total. (Order among
        // co-pending events is unaffected — none survive the drain.)
        if self.queue.is_empty() {
            self.seq = 0;
        }
        result
    }

    /// Builds the compiled engine's slot tables (resolving the active
    /// [`CellLayout`]) if they are not already built. A no-op under the
    /// dyn interpreter or once compiled.
    fn ensure_compiled(&mut self) {
        if self.compiled.is_none() {
            let layout = match &self.layout_override {
                Some(layout) => layout.clone(),
                None => match self.layout_kind {
                    LayoutKind::Affinity => self.netlist.layout(),
                    LayoutKind::Identity => CellLayout::identity(self.netlist.component_count()),
                },
            };
            self.compiled = Some(CompiledNetlist::compile(
                &self.netlist,
                &self.probes,
                &layout,
            ));
        }
    }

    /// Pays the lazy one-time setup for the active engine now instead of
    /// inside the first [`run`](Simulator::run): under the compiled
    /// engine this computes the cell layout and builds the slot tables.
    /// Useful to warm a simulator before a latency-sensitive or measured
    /// run; a no-op under the dyn interpreter or when already prepared.
    pub fn prepare(&mut self) {
        if self.engine == EngineKind::Compiled {
            self.ensure_compiled();
        }
    }

    /// The dyn-interpreter hot loop: every delivery goes through the boxed
    /// [`Component::pulse`](crate::component::Component::pulse) virtual
    /// call and the netlist's hash-map fan-out. Allocation-free in steady
    /// state: the emission buffer is reused across runs, fan-out slices
    /// are borrowed (never cloned), and the cell label is handed to the
    /// pulse context by reference.
    fn run_until_dyn(&mut self, deadline: Option<Time>) -> Result<RunStats, SimError> {
        let mut stats = RunStats::default();
        let mut emitted_buf = std::mem::take(&mut self.emit_scratch);
        let mut processed: u64 = 0;
        let result = loop {
            let Some(ev) = self.queue.pop() else {
                break Ok(stats);
            };
            let time = ev.time();
            let target = ev.target();
            if let Some(d) = deadline {
                if time > d {
                    // Re-seat the event; its key (time, component, seq) is
                    // unchanged, so the schedule is unaffected.
                    self.queue.push(ev);
                    break Ok(stats);
                }
            }
            processed += 1;
            assert!(
                processed <= self.event_budget,
                "event budget exhausted ({processed} events): runaway feedback loop?"
            );
            self.now = time;
            self.stats.events_processed += 1;
            self.stats.sim_time_advanced = time - Time::ZERO;
            stats.last_event = Some(time);

            // Planned pin faults act on the delivery, before the cell sees
            // the pulse.
            if let Some(fault) = self.fault.as_mut() {
                let f = fault.on_delivery(target);
                if let Some(offset) = f.echo_after {
                    let seq = self.seq;
                    self.seq += 1;
                    Self::push_raw(
                        &mut self.queue,
                        &mut self.stats,
                        Event::new(time + offset, seq, target),
                    );
                }
                if f.drop {
                    continue;
                }
            }
            stats.delivered += 1;
            self.stats.slot_bytes_touched += SLOT_BYTES;

            let violations_before = self.violations.len();
            emitted_buf.clear();
            {
                let (component, label) = self.netlist.component_and_label_mut(target.component);
                let mut ctx = PulseContext {
                    emitted: &mut emitted_buf,
                    violations: &mut self.violations,
                    component_label: CellLabel::Resolved(label),
                    policy: self.policy,
                    degraded_drops: &mut self.degraded_drops,
                };
                component.pulse(target.index, time, &mut ctx);
            }

            // Per-instance delay variation scales the emitting cell's
            // internal delay (the lag between the delivery and each
            // emission); wire delays stay nominal.
            let factor = self
                .fault
                .as_mut()
                .map_or(1.0, |f| f.delay_factor(target.component));

            for &(out_pin, at) in emitted_buf.iter() {
                let at = scale_emission(at, time, factor);
                stats.emitted += 1;
                self.stats.fanout_rows_visited += 1;
                let source = Pin::new(target.component, out_pin);
                if let Some(ids) = self.probes.get(&source) {
                    for &id in ids {
                        self.probe_records[id.0 as usize].record(at);
                    }
                }
                // Fan the pulse out along wires (a borrowed slice — the
                // queue and netlist are disjoint fields).
                for &(to, delay) in self.netlist.fanout(source) {
                    let seq = self.seq;
                    self.seq += 1;
                    Self::push_raw(
                        &mut self.queue,
                        &mut self.stats,
                        Event::new(at + delay, seq, to),
                    );
                }
            }

            if self.policy == ViolationPolicy::FailFast && self.violations.len() > violations_before
            {
                break Err(SimError::FailFast(
                    self.violations[violations_before].clone(),
                ));
            }
        };
        self.emit_scratch = emitted_buf;
        result
    }

    /// The compiled hot loop: deliveries dispatch through the lowered
    /// [`CellOp`](crate::compiled::CellOp) enum over dense SoA state, and
    /// fan-out/probe lookups index the precomputed flat tables. On every
    /// exit path the touched cells' state is synced back into the boxed
    /// components, so between runs both representations agree.
    fn run_until_compiled(&mut self, deadline: Option<Time>) -> Result<RunStats, SimError> {
        self.ensure_compiled();
        let mut compiled = self.compiled.take().expect("compiled just above");
        // Prefetching only pays when the slot array is actually
        // locality-ordered; with the identity placement (the
        // `reference-layout` differential baseline) the serve loop stays
        // byte-for-byte the pre-layout delivery path.
        let want_prefetch =
            self.layout_override.is_some() || self.layout_kind == LayoutKind::Affinity;
        let mut emitted_buf = std::mem::take(&mut self.emit_scratch);
        let mut stats = RunStats::default();
        let mut processed: u64 = 0;
        // Loop-carried counters hoisted out of `self` so they live in
        // registers across the hot loop; merged back after every exit
        // path below. The merged values are identical to the dyn
        // interpreter's per-event updates (the differential suite holds
        // both engines to the same `SimStats`).
        let mut seq = self.seq;
        let mut peak = self.stats.peak_queue_depth;
        let mut slot_bytes: u64 = 0;
        let mut fan_rows: u64 = 0;
        let result = loop {
            let Some(ev) = self.queue.pop() else {
                break Ok(stats);
            };
            // Warm the next delivery's cache lines (its cell slot and its
            // flat-table row) while this one is being served. The hint
            // targets whatever the scheduler will pop next — exact for the
            // lane batch and the heap, best-effort for the calendar drain.
            if want_prefetch {
                if let Some(next) = self.queue.peek_hint() {
                    compiled.prefetch_cell(next.component_index());
                }
            }
            let time = ev.time();
            let cell = ev.component_index();
            if let Some(d) = deadline {
                if time > d {
                    self.queue.push(ev);
                    break Ok(stats);
                }
            }
            processed += 1;
            assert!(
                processed <= self.event_budget,
                "event budget exhausted ({processed} events): runaway feedback loop?"
            );
            self.now = time;
            stats.last_event = Some(time);

            if let Some(fault) = self.fault.as_mut() {
                let f = fault.on_delivery(ev.target());
                if let Some(offset) = f.echo_after {
                    self.queue.push(Event::new(time + offset, seq, ev.target()));
                    seq += 1;
                    peak = peak.max(self.queue.len());
                }
                if f.drop {
                    continue;
                }
            }
            stats.delivered += 1;
            slot_bytes += SLOT_BYTES;

            // One dense table load translates the event's external cell id
            // into its layout slot; everything after this line — state,
            // fan-out, probes — is slot-indexed and pre-packed.
            let slot = compiled.slot_index(cell);
            let violations_before = self.violations.len();
            emitted_buf.clear();
            compiled.deliver(
                &mut self.netlist,
                cell as u32,
                slot,
                ev.pin(),
                time,
                &mut emitted_buf,
                &mut self.violations,
                self.policy,
                &mut self.degraded_drops,
            );

            let factor = self.fault.as_mut().map_or(1.0, |f| {
                f.delay_factor(crate::netlist::ComponentId(cell as u32))
            });

            for &(out_pin, at) in emitted_buf.iter() {
                let at = scale_emission(at, time, factor);
                stats.emitted += 1;
                fan_rows += 1;
                // Pins beyond the table stride have no wires and no
                // probes — nothing to do, exactly like the hash-map miss.
                let Some(flat) = compiled.flat_at(slot, out_pin) else {
                    continue;
                };
                for &id in compiled.probes(flat) {
                    self.probe_records[id.0 as usize].record(at);
                }
                let at_fs = at.as_fs();
                for &fo in compiled.fanout(flat) {
                    self.queue.push(fo.event_at(at_fs, seq));
                    seq += 1;
                }
                peak = peak.max(self.queue.len());
            }

            if self.policy == ViolationPolicy::FailFast && self.violations.len() > violations_before
            {
                break Err(SimError::FailFast(
                    self.violations[violations_before].clone(),
                ));
            }
        };
        self.seq = seq;
        self.stats.peak_queue_depth = peak;
        self.stats.events_processed += processed;
        self.stats.slot_bytes_touched += slot_bytes;
        self.stats.fanout_rows_visited += fan_rows;
        if processed > 0 {
            self.stats.sim_time_advanced = self.now - Time::ZERO;
        }
        compiled.sync_back(&mut self.netlist);
        self.compiled = Some(compiled);
        self.emit_scratch = emitted_buf;
        result
    }

    fn push(&mut self, ev: Event) {
        Self::push_raw(&mut self.queue, &mut self.stats, ev);
    }

    /// Queue insertion + peak-depth update over split borrows, so the hot
    /// loops can push while the netlist (or compiled table) is borrowed.
    #[inline]
    fn push_raw(queue: &mut Queue, stats: &mut SimStats, ev: Event) {
        queue.push(ev);
        stats.peak_queue_depth = stats.peak_queue_depth.max(queue.len());
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// Applies a fault plan's per-instance delay factor to one emission: the
/// lag between the delivery and the emission scales, the delivery time
/// itself does not (wire delays stay nominal).
#[inline]
fn scale_emission(at: Time, delivered: Time, factor: f64) -> Time {
    if factor == 1.0 {
        return at;
    }
    let lag_fs = at.as_fs().saturating_sub(delivered.as_fs());
    let scaled = (lag_fs as f64 * factor).round().max(0.0) as u64;
    Time::from_fs(delivered.as_fs() + scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, PulseContext};
    use crate::netlist::Netlist;

    /// Repeats every input pulse on output pin 0 after 1 ps.
    #[derive(Debug)]
    struct Repeater;
    impl Component for Repeater {
        fn kind(&self) -> &'static str {
            "repeater"
        }
        fn pulse(&mut self, _pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
            ctx.emit_after(0, now, Duration::from_ps(1.0));
        }
    }

    /// Swallows pulses.
    #[derive(Debug)]
    struct Sink;
    impl Component for Sink {
        fn kind(&self) -> &'static str {
            "sink"
        }
        fn pulse(&mut self, _pin: u8, _now: Time, _ctx: &mut PulseContext<'_>) {}
    }

    fn chain(len: usize) -> (Simulator, Pin, Pin) {
        let mut n = Netlist::new();
        let ids: Vec<_> = (0..len)
            .map(|i| n.add(format!("r{i}"), Box::new(Repeater) as _))
            .collect();
        for w in ids.windows(2) {
            n.connect(Pin::new(w[0], 0), Pin::new(w[1], 0), Duration::from_ps(0.5));
        }
        let first = Pin::new(ids[0], 0);
        let last = Pin::new(*ids.last().unwrap(), 0);
        (Simulator::new(n), first, last)
    }

    #[test]
    fn pulse_propagates_through_chain() {
        let (mut sim, first, last) = chain(4);
        let probe = sim.probe(last, "end");
        sim.inject(first, Time::from_ps(0.0));
        let stats = sim.run();
        // 4 deliveries (one per repeater), 4 emissions.
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.emitted, 4);
        let trace = sim.probe_trace(probe);
        assert_eq!(trace.len(), 1);
        // 4 internal 1ps delays + 3 wire 0.5ps delays.
        assert_eq!(trace.pulses()[0], Time::from_ps(5.5));
    }

    #[test]
    fn events_process_in_time_order() {
        let mut n = Netlist::new();
        let s = n.add("sink", Box::new(Sink) as _);
        let mut sim = Simulator::new(n);
        sim.inject(Pin::new(s, 0), Time::from_ps(5.0));
        sim.inject(Pin::new(s, 0), Time::from_ps(1.0));
        let stats = sim.run();
        assert_eq!(stats.delivered, 2);
        assert_eq!(sim.now(), Time::from_ps(5.0));
    }

    #[test]
    fn run_for_respects_deadline() {
        let (mut sim, first, _last) = chain(10);
        sim.inject(first, Time::from_ps(0.0));
        let stats = sim.run_for(Time::from_ps(3.0));
        assert!(stats.delivered < 10);
        let rest = sim.run();
        assert_eq!(stats.delivered + rest.delivered, 10);
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn injecting_into_past_panics() {
        let (mut sim, first, _last) = chain(2);
        sim.inject(first, Time::from_ps(10.0));
        sim.run();
        sim.inject(first, Time::from_ps(1.0));
    }

    #[test]
    fn probe_clear() {
        let (mut sim, first, last) = chain(2);
        let probe = sim.probe(last, "end");
        sim.inject(first, Time::from_ps(0.0));
        sim.run();
        assert_eq!(sim.probe_trace(probe).len(), 1);
        sim.clear_probe(probe);
        assert_eq!(sim.probe_trace(probe).len(), 0);
    }

    #[test]
    #[should_panic(expected = "event budget exhausted")]
    fn feedback_loop_trips_budget() {
        let mut n = Netlist::new();
        let r = n.add("r", Box::new(Repeater) as _);
        // Self-loop: output feeds back into input forever.
        n.connect(Pin::new(r, 0), Pin::new(r, 0), Duration::from_ps(1.0));
        let mut sim = Simulator::new(n);
        sim.set_event_budget(1000);
        sim.inject(Pin::new(r, 0), Time::ZERO);
        sim.run();
    }

    #[test]
    fn multiple_probes_on_same_pin() {
        let (mut sim, first, last) = chain(2);
        let p1 = sim.probe(last, "a");
        let p2 = sim.probe(last, "b");
        sim.inject(first, Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(p1).len(), 1);
        assert_eq!(sim.probe_trace(p2).len(), 1);
    }

    /// Repeater with a 10 ps minimum spacing; closer pulses violate and,
    /// under Degrade, are lost.
    #[derive(Debug, Default)]
    struct Spaced {
        last: Option<Time>,
    }
    impl Component for Spaced {
        fn kind(&self) -> &'static str {
            "spaced"
        }
        fn pulse(&mut self, _pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
            if let Some(prev) = self.last {
                if now.abs_diff(prev) < Duration::from_ps(10.0)
                    && ctx.violation_degrades(now, "hold", "too close".to_string())
                {
                    return;
                }
            }
            self.last = Some(now);
            ctx.emit_after(0, now, Duration::from_ps(1.0));
        }
    }

    fn spaced_sim() -> (Simulator, Pin, crate::simulator::ProbeId) {
        let mut n = Netlist::new();
        let id = n.add("s", Box::new(Spaced::default()) as _);
        let mut sim = Simulator::new(n);
        let probe = sim.probe(Pin::new(id, 0), "q");
        (sim, Pin::new(id, 0), probe)
    }

    #[test]
    fn record_policy_keeps_marginal_pulse() {
        let (mut sim, pin, probe) = spaced_sim();
        sim.inject(pin, Time::from_ps(0.0));
        sim.inject(pin, Time::from_ps(4.0));
        sim.run();
        assert_eq!(sim.violations().len(), 1);
        assert_eq!(sim.probe_trace(probe).len(), 2, "Record: pulse still acts");
        assert_eq!(sim.degraded_drops(), 0);
    }

    #[test]
    fn degrade_policy_drops_marginal_pulse() {
        let (mut sim, pin, probe) = spaced_sim();
        sim.set_violation_policy(ViolationPolicy::Degrade);
        sim.inject(pin, Time::from_ps(0.0));
        sim.inject(pin, Time::from_ps(4.0));
        sim.run();
        assert_eq!(sim.violations().len(), 1, "still recorded");
        assert_eq!(sim.probe_trace(probe).len(), 1, "Degrade: pulse lost");
        assert_eq!(sim.degraded_drops(), 1);
    }

    #[test]
    fn fail_fast_stops_with_first_violation() {
        let (mut sim, pin, probe) = spaced_sim();
        sim.set_violation_policy(ViolationPolicy::FailFast);
        sim.inject(pin, Time::from_ps(0.0));
        sim.inject(pin, Time::from_ps(4.0));
        sim.inject(pin, Time::from_ps(6.0));
        let err = sim.try_run().unwrap_err();
        let SimError::FailFast(v) = err;
        assert_eq!(v.kind, "hold");
        assert_eq!(v.at, Time::from_ps(4.0));
        // The run stopped before processing the third stimulus.
        assert_eq!(sim.probe_trace(probe).len(), 2);
        assert_eq!(sim.violations().len(), 1);
    }

    #[test]
    #[should_panic(expected = "fail-fast")]
    fn run_panics_on_fail_fast() {
        let (mut sim, pin, _probe) = spaced_sim();
        sim.set_violation_policy(ViolationPolicy::FailFast);
        sim.inject(pin, Time::from_ps(0.0));
        sim.inject(pin, Time::from_ps(4.0));
        sim.run();
    }

    #[test]
    fn scoped_traces_attribute_probes_to_scopes() {
        let mut n = Netlist::new();
        n.push_scope("bank0");
        let a = n.add("r0", Box::new(Repeater) as _);
        n.pop_scope();
        let b = n.add("r1", Box::new(Repeater) as _);
        let mut sim = Simulator::new(n);
        sim.probe(Pin::new(a, 0), "inner");
        sim.probe(Pin::new(b, 0), "outer");
        let scoped = sim.scoped_traces();
        assert_eq!(scoped[0].0, "bank0");
        assert_eq!(scoped[0].1.label(), "inner");
        assert_eq!(scoped[1].0, "");
        let doc = sim.to_vcd("top");
        assert!(doc.contains("$scope module bank0 $end"), "{doc}");
    }

    /// Logs every delivery as a pseudo-violation, making delivery order
    /// observable from outside the netlist.
    #[derive(Debug)]
    struct DeliveryLogger;
    impl Component for DeliveryLogger {
        fn kind(&self) -> &'static str {
            "logger"
        }
        fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
            ctx.violation(now, "delivered", format!("pin{pin}"));
        }
    }

    #[test]
    fn same_timestamp_pulses_deliver_in_insertion_order() {
        // Regression for the documented tie-break: at equal times on the
        // same component, insertion order decides — on both schedulers,
        // not as an accident of heap internals.
        use crate::queue::SchedulerKind;
        for kind in SchedulerKind::ALL {
            let mut n = Netlist::new();
            let c = n.add("log", Box::new(DeliveryLogger) as _);
            let mut sim = Simulator::with_scheduler(n, kind);
            for pin in [2u8, 0, 1] {
                sim.inject(Pin::new(c, pin), Time::from_ps(5.0));
            }
            sim.run();
            let order: Vec<&str> = sim.violations().iter().map(|v| v.detail.as_str()).collect();
            assert_eq!(order, vec!["pin2", "pin0", "pin1"], "{kind}");
        }
    }

    #[test]
    fn same_timestamp_ties_across_components_resolve_by_component_id() {
        use crate::queue::SchedulerKind;
        for kind in SchedulerKind::ALL {
            let mut n = Netlist::new();
            let first = n.add("log_a", Box::new(DeliveryLogger) as _);
            let second = n.add("log_b", Box::new(DeliveryLogger) as _);
            let mut sim = Simulator::with_scheduler(n, kind);
            // Inject into the later-added component first: at equal times
            // the lower component id still delivers first.
            sim.inject(Pin::new(second, 0), Time::from_ps(5.0));
            sim.inject(Pin::new(first, 0), Time::from_ps(5.0));
            sim.run();
            let order: Vec<&str> = sim.violations().iter().map(|v| v.cell.as_str()).collect();
            assert_eq!(order, vec!["log_a", "log_b"], "{kind}");
        }
    }

    #[test]
    fn schedulers_produce_identical_traces_and_stats() {
        use crate::queue::SchedulerKind;
        let run_on = |kind| {
            let mut n = Netlist::new();
            let ids: Vec<_> = (0..4)
                .map(|i| n.add(format!("r{i}"), Box::new(Repeater) as _))
                .collect();
            for w in ids.windows(2) {
                n.connect(Pin::new(w[0], 0), Pin::new(w[1], 0), Duration::from_ps(0.5));
            }
            let mut sim = Simulator::with_scheduler(n, kind);
            assert_eq!(sim.scheduler_kind(), kind);
            let probe = sim.probe(Pin::new(ids[3], 0), "end");
            sim.inject(Pin::new(ids[0], 0), Time::from_ps(0.0));
            sim.inject(Pin::new(ids[0], 0), Time::from_ps(700.0));
            sim.run();
            (sim.probe_trace(probe).clone(), sim.stats())
        };
        let (heap_trace, heap_stats) = run_on(SchedulerKind::ReferenceHeap);
        let (wheel_trace, wheel_stats) = run_on(SchedulerKind::CalendarQueue);
        assert_eq!(heap_trace, wheel_trace);
        assert_eq!(heap_stats, wheel_stats);
        assert_eq!(heap_stats.events_processed, 8);
        assert!(heap_stats.peak_queue_depth >= 1);
        // Last event: the delivery into r3 (3 internal ps + 3 wire hops
        // after the 700 ps injection); the final emission queues nothing.
        assert_eq!(
            heap_stats.sim_time_advanced,
            Duration::from_ps(700.0 + 3.0 + 1.5)
        );
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let (mut sim, first, _last) = chain(3);
        sim.inject(first, Time::from_ps(0.0));
        sim.run();
        let after_first = sim.stats();
        assert_eq!(after_first.events_processed, 3);
        sim.inject(first, Time::from_ps(500.0));
        sim.run();
        let after_second = sim.stats();
        assert_eq!(after_second.events_processed, 6);
        assert!(after_second.sim_time_advanced > after_first.sim_time_advanced);
    }

    #[test]
    fn set_scheduler_swaps_when_idle() {
        use crate::queue::SchedulerKind;
        let (mut sim, first, last) = chain(2);
        sim.set_scheduler(SchedulerKind::ReferenceHeap);
        assert_eq!(sim.scheduler_kind(), SchedulerKind::ReferenceHeap);
        let probe = sim.probe(last, "end");
        sim.inject(first, Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(probe).len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot switch schedulers")]
    fn set_scheduler_rejects_pending_events() {
        use crate::queue::SchedulerKind;
        let (mut sim, first, _last) = chain(2);
        sim.inject(first, Time::from_ps(1.0));
        sim.set_scheduler(SchedulerKind::ReferenceHeap);
    }

    #[test]
    fn default_engine_tracks_the_feature() {
        let expect = if cfg!(feature = "reference-engine") {
            EngineKind::DynInterpreter
        } else {
            EngineKind::Compiled
        };
        assert_eq!(EngineKind::default(), expect);
        let sim = Simulator::new(Netlist::new());
        assert_eq!(sim.engine_kind(), expect);
    }

    #[test]
    fn thread_default_pins_plain_constructors_and_restores() {
        let pinned = EngineKind::with_thread_default(EngineKind::DynInterpreter, || {
            Simulator::new(Netlist::new()).engine_kind()
        });
        assert_eq!(pinned, EngineKind::DynInterpreter);
        assert_eq!(EngineKind::default(), {
            if cfg!(feature = "reference-engine") {
                EngineKind::DynInterpreter
            } else {
                EngineKind::Compiled
            }
        });
        // Restores on unwind too (the job server's chaos hook panics).
        let _ = std::panic::catch_unwind(|| {
            EngineKind::with_thread_default(EngineKind::DynInterpreter, || panic!("chaos"))
        });
        let expected: EngineKind = Default::default();
        assert_eq!(Simulator::new(Netlist::new()).engine_kind(), expected);
    }

    #[test]
    fn engines_produce_identical_traces_and_stats() {
        // The chain components have no lowering, so this exercises the
        // compiled engine's Dyn fallback and flat fan-out tables against
        // the plain interpreter.
        let run_on = |engine| {
            let mut n = Netlist::new();
            let ids: Vec<_> = (0..4)
                .map(|i| n.add(format!("r{i}"), Box::new(Repeater) as _))
                .collect();
            for w in ids.windows(2) {
                n.connect(Pin::new(w[0], 0), Pin::new(w[1], 0), Duration::from_ps(0.5));
            }
            let mut sim = Simulator::with_engine(n, SchedulerKind::default(), engine);
            assert_eq!(sim.engine_kind(), engine);
            let probe = sim.probe(Pin::new(ids[3], 0), "end");
            sim.inject(Pin::new(ids[0], 0), Time::from_ps(0.0));
            sim.inject(Pin::new(ids[0], 0), Time::from_ps(700.0));
            sim.run();
            (sim.probe_trace(probe).clone(), sim.stats())
        };
        let (dyn_trace, dyn_stats) = run_on(EngineKind::DynInterpreter);
        let (compiled_trace, compiled_stats) = run_on(EngineKind::Compiled);
        assert_eq!(dyn_trace, compiled_trace);
        assert_eq!(dyn_stats, compiled_stats);
    }

    #[test]
    fn set_engine_swaps_when_idle() {
        let (mut sim, first, last) = chain(2);
        for engine in [EngineKind::Compiled, EngineKind::DynInterpreter] {
            sim.set_engine(engine);
            assert_eq!(sim.engine_kind(), engine);
        }
        let probe = sim.probe(last, "end");
        sim.inject(first, Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(probe).len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot switch engines")]
    fn set_engine_rejects_pending_events() {
        let (mut sim, first, _last) = chain(2);
        sim.inject(first, Time::from_ps(1.0));
        sim.set_engine(EngineKind::Compiled);
    }

    #[test]
    fn probe_added_between_runs_reaches_compiled_engine() {
        // Probe registration invalidates the compiled cache; the rebuilt
        // flat table must carry the new probe.
        let (mut sim, first, last) = chain(3);
        sim.set_engine(EngineKind::Compiled);
        sim.inject(first, Time::ZERO);
        sim.run();
        let probe = sim.probe(last, "late");
        sim.inject(first, Time::from_ps(500.0));
        sim.run();
        assert_eq!(sim.probe_trace(probe).len(), 1);
    }

    #[test]
    fn fault_plan_drops_and_duplicates() {
        use crate::fault::FaultPlan;
        let (mut sim, first, last) = chain(2);
        let probe = sim.probe(last, "end");
        // Drop the 1st delivery on the first repeater's input, duplicate
        // the 2nd.
        let plan =
            FaultPlan::new(0)
                .drop_nth(first, 1)
                .duplicate_nth(first, 2, Duration::from_ps(20.0));
        sim.set_fault_plan(plan);
        sim.inject(first, Time::from_ps(0.0));
        sim.inject(first, Time::from_ps(100.0));
        sim.run();
        // Stimulus 1 dropped; stimulus 2 delivered plus an echo.
        assert_eq!(sim.probe_trace(probe).len(), 2);
        assert_eq!(sim.fault_counts(), (1, 1));
    }

    #[test]
    fn spurious_pulses_inject_at_plan_install() {
        use crate::fault::FaultPlan;
        let (mut sim, first, last) = chain(2);
        let probe = sim.probe(last, "end");
        sim.set_fault_plan(FaultPlan::new(0).spurious(first, Time::from_ps(7.0)));
        sim.run();
        assert_eq!(sim.probe_trace(probe).len(), 1);
    }

    #[test]
    fn default_layout_tracks_the_feature() {
        let expect = if cfg!(feature = "reference-layout") {
            LayoutKind::Identity
        } else {
            LayoutKind::Affinity
        };
        assert_eq!(LayoutKind::default(), expect);
        assert_eq!(Simulator::new(Netlist::new()).layout_kind(), expect);
    }

    #[test]
    fn layout_choices_produce_identical_observables() {
        // Placement is internal to the compiled lowering: the BFS affinity
        // order, the identity order, and an adversarial shuffled override
        // must all yield byte-identical traces and counters. This is the
        // unit-sized version of the permutation differential suite.
        let run_with = |setup: &dyn Fn(&mut Simulator)| {
            let mut n = Netlist::new();
            let ids: Vec<_> = (0..6)
                .map(|i| n.add(format!("r{i}"), Box::new(Repeater) as _))
                .collect();
            for w in ids.windows(2) {
                n.connect(Pin::new(w[0], 0), Pin::new(w[1], 0), Duration::from_ps(0.5));
            }
            let mut sim = Simulator::with_engine(n, SchedulerKind::default(), EngineKind::Compiled);
            setup(&mut sim);
            let probe = sim.probe(Pin::new(ids[5], 0), "end");
            sim.inject(Pin::new(ids[0], 0), Time::ZERO);
            sim.run();
            (sim.probe_trace(probe).clone(), sim.stats())
        };
        let affinity = run_with(&|sim| sim.set_layout_kind(LayoutKind::Affinity));
        let identity = run_with(&|sim| sim.set_layout_kind(LayoutKind::Identity));
        let shuffled = run_with(&|sim| sim.set_cell_layout(CellLayout::shuffled(6, 0xBADC0DE)));
        assert_eq!(affinity, identity);
        assert_eq!(affinity, shuffled);
    }

    #[test]
    fn set_layout_kind_is_legal_between_runs_and_mid_stream() {
        let (mut sim, first, last) = chain(4);
        sim.set_engine(EngineKind::Compiled);
        let probe = sim.probe(last, "end");
        sim.inject(first, Time::ZERO);
        sim.run();
        // Unlike scheduler/engine swaps, a layout swap never needs the
        // queue empty — but between runs is the common case.
        sim.set_layout_kind(LayoutKind::Identity);
        sim.inject(first, Time::from_ps(500.0));
        sim.run();
        assert_eq!(sim.probe_trace(probe).len(), 2);
    }

    #[test]
    fn delivery_counters_measure_slots_and_rows() {
        for engine in [EngineKind::DynInterpreter, EngineKind::Compiled] {
            let (mut sim, first, _last) = chain(4);
            sim.set_engine(engine);
            sim.inject(first, Time::ZERO);
            let run = sim.run();
            let stats = sim.stats();
            // One 64-byte slot line per delivery, one CSR row per emission
            // — identical definitions in both engines.
            assert_eq!(stats.slot_bytes_touched, run.delivered * 64, "{engine:?}");
            assert_eq!(stats.fanout_rows_visited, run.emitted, "{engine:?}");
        }
    }

    #[test]
    fn delay_sigma_perturbs_reproducibly() {
        use crate::fault::FaultPlan;
        let run_with_seed = |seed: u64| {
            let (mut sim, first, last) = chain(4);
            let probe = sim.probe(last, "end");
            sim.set_fault_plan(FaultPlan::new(seed).with_delay_sigma(0.2));
            sim.inject(first, Time::from_ps(0.0));
            sim.run();
            sim.probe_trace(probe).pulses().to_vec()
        };
        let a = run_with_seed(1);
        assert_eq!(a, run_with_seed(1), "same seed, identical trace");
        assert_ne!(a, run_with_seed(2), "different seed perturbs differently");
        // Nominal arrival is 5.5 ps; 20 % σ must move it but not wildly.
        let at = a[0].as_ps();
        assert!(at > 2.0 && at < 12.0, "arrival {at}");
        assert_ne!(a[0], Time::from_ps(5.5));
    }
}

/// Ignored microbenchmark: the per-event floor of each engine on a
/// workload with no queue pressure (a 256-JTL ring, one pulse in
/// flight — every event is exactly pop + deliver + one emission + one
/// push, and the whole working set fits in L1). Run with
/// `cargo test --release -p sfq-sim ring_throughput -- --ignored --nocapture`;
/// the soak numbers in `repro perf` sit above this floor by the queue's
/// bucket handling and the larger netlist's cache footprint.
#[cfg(test)]
mod bench {
    use super::*;
    use crate::compiled::{CellOp, EngineKind, Lowered};
    use crate::component::Component;
    use crate::queue::SchedulerKind;
    use crate::time::Duration;
    use std::time::Instant;

    /// A minimal lowerable cell: any input pulse emits on pin 0 after 3 ps.
    #[derive(Debug)]
    struct BenchJtl;
    impl Component for BenchJtl {
        fn kind(&self) -> &'static str {
            "bench-jtl"
        }
        fn pulse(&mut self, _pin: u8, at: Time, ctx: &mut PulseContext<'_>) {
            ctx.emit(0, at + Duration::from_ps(3.0));
        }
        fn lower(&self) -> Option<Lowered> {
            Some(Lowered::stateless(CellOp::Jtl {
                delay: Duration::from_ps(3.0),
            }))
        }
    }

    /// A `len`-cell ring of [`BenchJtl`]s; returns the netlist and the
    /// input pin that starts the circulation.
    fn ring(len: usize) -> (Netlist, Pin) {
        let mut n = Netlist::new();
        let ids: Vec<_> = (0..len)
            .map(|i| n.add(format!("j{i}"), Box::new(BenchJtl)))
            .collect();
        for i in 0..len {
            n.connect(
                Pin::new(ids[i], 0),
                Pin::new(ids[(i + 1) % len], 1),
                Duration::from_ps(1.0),
            );
        }
        (n, Pin::new(ids[0], 1))
    }

    #[test]
    #[ignore = "wall-clock microbenchmark; run with --ignored --nocapture"]
    fn ring_throughput() {
        for engine in [EngineKind::DynInterpreter, EngineKind::Compiled] {
            for scheduler in [SchedulerKind::CalendarQueue, SchedulerKind::LaneBatched] {
                let (netlist, first) = ring(256);
                let mut sim = Simulator::with_engine(netlist, scheduler, engine);
                sim.set_event_budget(u64::MAX);
                sim.inject(first, Time::from_ps(1.0));
                // Warm up (and, for the compiled engine, lower the netlist).
                sim.run_for(Time::from_ps(10_000.0));
                let n0 = sim.stats().events_processed;
                let t0 = Instant::now();
                sim.run_for(Time::from_ps(20_000_000.0));
                let el = t0.elapsed();
                let n = sim.stats().events_processed - n0;
                eprintln!(
                    "{} + {}: {:.1} ns/event ({n} events)",
                    engine.label(),
                    scheduler.label(),
                    el.as_nanos() as f64 / n as f64
                );
            }
        }
    }
}
