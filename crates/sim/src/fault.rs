//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes how a run deviates from the ideal circuit:
//!
//! * **pin faults** — drop or duplicate the N-th pulse delivered to a named
//!   input pin (modelling a missing or doubled fluxon);
//! * **spurious pulses** — extra stimuli injected at chosen times
//!   (modelling flux trapping / noise-induced switching);
//! * **delay variation** — every component instance gets a persistent
//!   multiplicative delay factor drawn from a bounded Gaussian
//!   (σ as a fraction of nominal), modelling per-device process variation.
//!
//! All randomness derives from the plan's single `u64` seed via
//! [`Rng64::fork`], keyed by component index — so the perturbation of a
//! given cell never depends on event order, and identical seed + plan
//! reproduce identical traces, violations, and yield numbers.
//!
//! Install a plan with
//! [`Simulator::set_fault_plan`](crate::simulator::Simulator::set_fault_plan).

use std::collections::HashMap;

use crate::netlist::{ComponentId, Pin};
use crate::rng::Rng64;
use crate::time::{Duration, Time};

/// What to do to a counted pulse delivery on a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PinAction {
    /// Swallow the pulse.
    Drop,
    /// Deliver it, plus an echo after the offset.
    Duplicate(Duration),
}

/// A deterministic fault-injection plan (builder-style).
///
/// # Examples
///
/// Pins come from the netlist under test — ids cannot be forged, so plans
/// always target real components:
///
/// ```
/// use sfq_sim::component::{Component, PulseContext};
/// use sfq_sim::fault::FaultPlan;
/// use sfq_sim::netlist::{Netlist, Pin};
/// use sfq_sim::time::{Duration, Time};
///
/// #[derive(Debug)]
/// struct Sink;
/// impl Component for Sink {
///     fn kind(&self) -> &'static str {
///         "sink"
///     }
///     fn pulse(&mut self, _pin: u8, _now: Time, _ctx: &mut PulseContext<'_>) {}
/// }
///
/// let mut netlist = Netlist::new();
/// let sink = netlist.add("sink", Box::new(Sink));
/// let pin = Pin::new(sink, 0);
/// let plan = FaultPlan::new(0xfeed)
///     .drop_nth(pin, 1)
///     .duplicate_nth(pin, 3, Duration::from_ps(2.0))
///     .with_delay_sigma(0.05);
/// assert_eq!(plan.seed(), 0xfeed);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    delay_sigma: f64,
    /// `(pin, one-based delivery ordinal) -> action`.
    pin_faults: HashMap<(Pin, u64), PinAction>,
    spurious: Vec<(Pin, Time)>,
}

impl FaultPlan {
    /// Creates an empty plan with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_sigma: 0.0,
            pin_faults: HashMap::new(),
            spurious: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-instance delay variation, σ as a fraction of nominal delay.
    pub fn delay_sigma(&self) -> f64 {
        self.delay_sigma
    }

    /// Drops the `nth` (1-based) pulse delivered to `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `nth` is zero.
    #[must_use]
    pub fn drop_nth(mut self, pin: Pin, nth: u64) -> Self {
        assert!(nth >= 1, "pulse ordinals are 1-based");
        self.pin_faults.insert((pin, nth), PinAction::Drop);
        self
    }

    /// Duplicates the `nth` (1-based) pulse delivered to `pin`: the
    /// original is delivered and an echo follows `offset` later.
    ///
    /// # Panics
    ///
    /// Panics if `nth` is zero.
    #[must_use]
    pub fn duplicate_nth(mut self, pin: Pin, nth: u64, offset: Duration) -> Self {
        assert!(nth >= 1, "pulse ordinals are 1-based");
        self.pin_faults
            .insert((pin, nth), PinAction::Duplicate(offset));
        self
    }

    /// Adds a spurious stimulus pulse on `pin` at absolute time `at`.
    #[must_use]
    pub fn spurious(mut self, pin: Pin, at: Time) -> Self {
        self.spurious.push((pin, at));
        self
    }

    /// Sets bounded-Gaussian per-instance delay variation (σ as a fraction
    /// of nominal, e.g. `0.05` for 5 %). Draws are clamped to ±3σ and the
    /// resulting factor floors at 0.05× so delays stay positive.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_frac` is negative or not finite.
    #[must_use]
    pub fn with_delay_sigma(mut self, sigma_frac: f64) -> Self {
        assert!(
            sigma_frac.is_finite() && sigma_frac >= 0.0,
            "σ must be a non-negative fraction"
        );
        self.delay_sigma = sigma_frac;
        self
    }

    /// The planned spurious pulses.
    pub fn spurious_pulses(&self) -> &[(Pin, Time)] {
        &self.spurious
    }
}

/// Runtime state of an installed plan: delivery counters, the delay-factor
/// cache, and applied-fault tallies.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    deliveries: HashMap<Pin, u64>,
    factors: HashMap<ComponentId, f64>,
    pub(crate) dropped: u64,
    pub(crate) duplicated: u64,
}

/// What the simulator should do with one pulse delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DeliveryFault {
    pub(crate) drop: bool,
    pub(crate) echo_after: Option<Duration>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            deliveries: HashMap::new(),
            factors: HashMap::new(),
            dropped: 0,
            duplicated: 0,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts a delivery on `pin` and returns the planned deviation, if any.
    pub(crate) fn on_delivery(&mut self, pin: Pin) -> DeliveryFault {
        let n = self.deliveries.entry(pin).or_insert(0);
        *n += 1;
        match self.plan.pin_faults.get(&(pin, *n)) {
            Some(PinAction::Drop) => {
                self.dropped += 1;
                DeliveryFault {
                    drop: true,
                    echo_after: None,
                }
            }
            Some(PinAction::Duplicate(off)) => {
                self.duplicated += 1;
                DeliveryFault {
                    drop: false,
                    echo_after: Some(*off),
                }
            }
            None => DeliveryFault {
                drop: false,
                echo_after: None,
            },
        }
    }

    /// The persistent delay factor of a component instance. Derived from
    /// `fork(seed, component index)`, so it is independent of event order.
    pub(crate) fn delay_factor(&mut self, id: ComponentId) -> f64 {
        if self.plan.delay_sigma == 0.0 {
            return 1.0;
        }
        let sigma = self.plan.delay_sigma;
        *self.factors.entry(id).or_insert_with(|| {
            let g = Rng64::fork(self.plan.seed, id.index() as u64).gaussian_clamped(3.0);
            (1.0 + sigma * g).max(0.05)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Same-crate tests may build ids directly; external callers obtain
    // them from a netlist.
    fn pin(i: u32, p: u8) -> Pin {
        Pin::new(ComponentId(i), p)
    }

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::new(1)
            .drop_nth(pin(0, 0), 2)
            .duplicate_nth(pin(0, 1), 1, Duration::from_ps(3.0))
            .spurious(pin(1, 0), Time::from_ps(5.0))
            .with_delay_sigma(0.1);
        assert_eq!(plan.delay_sigma(), 0.1);
        assert_eq!(plan.spurious_pulses().len(), 1);
    }

    #[test]
    fn delivery_counting_is_per_pin_and_one_based() {
        let plan = FaultPlan::new(0).drop_nth(pin(0, 0), 2);
        let mut st = FaultState::new(plan);
        assert!(!st.on_delivery(pin(0, 0)).drop, "1st delivery passes");
        assert!(!st.on_delivery(pin(0, 1)).drop, "other pin not counted");
        assert!(st.on_delivery(pin(0, 0)).drop, "2nd delivery dropped");
        assert!(!st.on_delivery(pin(0, 0)).drop, "3rd passes again");
        assert_eq!(st.dropped, 1);
    }

    #[test]
    fn duplicate_echoes_once() {
        let plan = FaultPlan::new(0).duplicate_nth(pin(2, 0), 1, Duration::from_ps(4.0));
        let mut st = FaultState::new(plan);
        let f = st.on_delivery(pin(2, 0));
        assert_eq!(f.echo_after, Some(Duration::from_ps(4.0)));
        assert!(!f.drop);
        assert_eq!(st.on_delivery(pin(2, 0)).echo_after, None);
        assert_eq!(st.duplicated, 1);
    }

    #[test]
    fn delay_factors_are_stable_and_seeded() {
        let mut a = FaultState::new(FaultPlan::new(9).with_delay_sigma(0.1));
        let mut b = FaultState::new(FaultPlan::new(9).with_delay_sigma(0.1));
        let id = ComponentId(7);
        let f = a.delay_factor(id);
        assert_eq!(f, a.delay_factor(id), "factor is persistent");
        assert_eq!(f, b.delay_factor(id), "same seed, same factor");
        assert!(f > 0.0 && (f - 1.0).abs() <= 0.3 + 1e-12, "bounded: {f}");
        let mut c = FaultState::new(FaultPlan::new(10).with_delay_sigma(0.1));
        assert_ne!(f, c.delay_factor(id), "different seed, different factor");
    }

    #[test]
    fn zero_sigma_means_unit_factors() {
        let mut st = FaultState::new(FaultPlan::new(1));
        assert_eq!(st.delay_factor(ComponentId(3)), 1.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_pulse_is_rejected() {
        let _ = FaultPlan::new(0).drop_nth(pin(0, 0), 0);
    }
}
