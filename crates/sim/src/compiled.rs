//! The compiled execution engine: a lowered, dense-array netlist.
//!
//! [`Simulator`](crate::simulator::Simulator) interprets a
//! [`Netlist`] of boxed [`Component`](crate::component::Component)s by
//! virtual dispatch — flexible, but every delivery pays a vtable call, a
//! `HashMap` fan-out lookup, and (before this module) a fan-out `Vec`
//! clone. This module adds a *lowering pass* that compiles the elaborated
//! netlist into a flat `CompiledNetlist`:
//!
//! * every cell is lowered to a [`CellOp`] — a `Copy` enum carrying the
//!   cell's calibrated delays and windows — dispatched by a single
//!   `match` instead of a virtual call;
//! * each cell's op and mutable state (stored bits, fluxon counts,
//!   last-arrival times) are packed together into one cache-line-sized
//!   `CellSlot` in a dense array indexed by the cell id, so a delivery
//!   touches a single line of cell data where the boxed netlist touched
//!   several (box pointer, vtable, heap cell, label);
//! * fan-out is a CSR table: one fused offset array (the fan-out and
//!   probe ranges of a pin share an entry, halving the offset loads)
//!   plus pre-packed `FanOut` / probe-id arrays, indexed by
//!   `slot * stride + output_pin`;
//! * slots and CSR rows are built in [`CellLayout`] order (the
//!   BFS/affinity placement from [`Netlist::layout`] by default), with a
//!   dense id→slot remap table, so cells that fire together sit on
//!   neighbouring cache lines; each `FanOut` row is pre-packed into
//!   the two words of the future `Event`, so pushing a delivery is two
//!   adds — no `Pin` re-encoding on the hot path;
//! * the cell label, needed only by the cold violation path, is resolved
//!   lazily, so the hot path never touches the label table.
//!
//! Cells the pass cannot lower (test doubles, third-party components)
//! get [`CellOp::Dyn`] and run through their boxed implementation inside
//! the compiled loop, so compilation never fails and mixed netlists stay
//! exact.
//!
//! The lowering is *behavior-preserving by construction*: each `CellOp`
//! arm is a transliteration of the corresponding `sfq-cells` model, and
//! the `engine_equivalence` differential suite asserts byte-identical
//! traces, violations, VCD, and statistics against the dyn interpreter
//! (the same oracle strategy the `reference-queue` scheduler uses).

use std::collections::HashMap;

use crate::component::{CellLabel, PulseContext};
use crate::layout::CellLayout;
use crate::netlist::{ComponentId, Netlist, Pin};
use crate::queue::{
    Event, EVENT_COMPONENT_LIMIT, EVENT_PIN_BITS, EVENT_SEQ_BITS, EVENT_TIME_LIMIT_FS,
};
use crate::simulator::ProbeId;
use crate::time::{Duration, Time};

/// Which execution engine a [`Simulator`](crate::simulator::Simulator)
/// delivers pulses with. Both produce byte-identical observables (the
/// differential suite asserts it); they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The lowered dense-array engine (the fast path).
    Compiled,
    /// The seed `Box<dyn Component>` interpreter (the differential
    /// reference).
    DynInterpreter,
}

impl EngineKind {
    /// Both engines, reference first — the order differential tests
    /// iterate.
    pub const ALL: [EngineKind; 2] = [EngineKind::DynInterpreter, EngineKind::Compiled];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Compiled => "compiled",
            EngineKind::DynInterpreter => "dyn-interpreter",
        }
    }

    /// Parses a [`label`](EngineKind::label) back into a kind.
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Runs `f` with `kind` as this thread's default engine — what
    /// [`EngineKind::default`] (and hence every plain `Simulator`
    /// constructor) returns inside `f`. The previous default is restored
    /// afterwards, including on unwind. This is how a job request pins an
    /// engine for code that builds simulators internally (e.g. Monte
    /// Carlo trials) without threading a parameter through every layer.
    pub fn with_thread_default<R>(kind: EngineKind, f: impl FnOnce() -> R) -> R {
        crate::pinning::with_override(&THREAD_DEFAULT, kind, f)
    }
}

std::thread_local! {
    static THREAD_DEFAULT: std::cell::Cell<Option<EngineKind>> =
        const { std::cell::Cell::new(None) };
}

impl Default for EngineKind {
    /// The thread's pinned default if inside
    /// [`EngineKind::with_thread_default`]; otherwise the compiled-in
    /// default — the compiled engine, unless the `reference-engine`
    /// feature selects the seed interpreter.
    fn default() -> Self {
        THREAD_DEFAULT.with(std::cell::Cell::get).unwrap_or({
            if cfg!(feature = "reference-engine") {
                EngineKind::DynInterpreter
            } else {
                EngineKind::Compiled
            }
        })
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Truth function of a lowered clocked two-input gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateFunc {
    /// Fires iff both latches are set.
    And,
    /// Fires iff exactly one latch is set.
    Xor,
}

/// The lowered form of one cell: its behavior as data.
///
/// Each variant carries the calibrated per-instance parameters the cell
/// model was built with (delays, windows, capacities), so a tuned
/// instance (e.g. a JTL with a non-library delay) lowers faithfully.
/// Variants mirror the `sfq-cells` primitives; pin numbering is identical
/// to the boxed models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellOp {
    /// Destructive readout: `D = 0`, `CLK = 1` → `Q = 0`.
    Dro {
        /// CLK → Q propagation delay.
        q_delay: Duration,
    },
    /// High-capacity DRO: up to `capacity` fluxons in one loop.
    HcDro {
        /// Fluxon capacity of the storage loop.
        capacity: u8,
        /// CLK → Q propagation delay.
        q_delay: Duration,
        /// Design-rule inter-pulse separation (violation below this).
        sep: Duration,
        /// Physical guard band (degradation below this).
        hard_sep: Duration,
    },
    /// Non-destructive readout: `SET = 0`, `RESET = 1`, `CLK = 2` → `OUT = 0`.
    Ndro {
        /// CLK → OUT propagation delay.
        out_delay: Duration,
    },
    /// NDRO with complementary outputs (the demux element).
    Ndroc {
        /// CLK → OUT0/OUT1 propagation delay.
        prop: Duration,
        /// Minimum separation of successive enables.
        rearm: Duration,
    },
    /// Dynamic AND: fires iff both inputs coincide within the window.
    Dand {
        /// Coincidence window.
        window: Duration,
        /// Coincidence → OUT delay.
        delay: Duration,
    },
    /// Clocked two-input gate: latches `A = 0` / `B = 1`, evaluates on `CLK = 2`.
    Gate {
        /// Truth function.
        func: GateFunc,
        /// CLK → OUT delay.
        delay: Duration,
    },
    /// Clocked NOT: emits on `CLK = 1` iff `A = 0` was not latched.
    Not {
        /// CLK → OUT delay.
        delay: Duration,
    },
    /// Clocked sampler with a setup/track aperture.
    Sync {
        /// Minimum data lead before the clock edge.
        setup: Duration,
        /// Dynamic retention past the setup point.
        track: Duration,
        /// Hold aperture after the edge.
        hold: Duration,
        /// CLK → OUT delay.
        delay: Duration,
    },
    /// Josephson transmission line: any input pin → `OUT = 0`.
    Jtl {
        /// Instance delay.
        delay: Duration,
    },
    /// Pulse splitter: any input pin → `OUT0 = 0` and `OUT1 = 1`.
    Splitter {
        /// IN → OUT delay.
        delay: Duration,
    },
    /// Confluence buffer with a dead time.
    Merger {
        /// Dead time after an accepted pulse.
        dead: Duration,
        /// IN → OUT delay.
        delay: Duration,
    },
    /// One-bit counter stage (T-flip-flop with readout).
    CounterBit {
        /// Wrap → CARRY delay.
        carry: Duration,
        /// READ → VALUE delay.
        read: Duration,
    },
    /// Not lowerable: delivered through the boxed `Component`.
    Dyn,
}

/// The result of lowering one cell: its [`CellOp`] plus a snapshot of its
/// current mutable state, mapped onto the generic state slots.
///
/// The state mapping per op is:
///
/// | op | `bits` | `time_a` | `time_b` |
/// |----|--------|----------|----------|
/// | `Dro` / `Ndro` | stored flag | – | – |
/// | `HcDro` | fluxon count | last D | last CLK |
/// | `Ndroc` | select flag | last CLK | – |
/// | `Dand` | – | pending A | pending B |
/// | `Gate` | A ∨ B≪1 | – | – |
/// | `Not` | A latch | – | – |
/// | `Sync` | – | pending D | last CLK |
/// | `Merger` | – | last accepted | – |
/// | `CounterBit` | state | – | – |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lowered {
    /// The cell's behavior as data.
    pub op: CellOp,
    /// Small integer state (stored flags, fluxon counts, gate latches).
    pub bits: u8,
    /// First time slot (see the table above).
    pub time_a: Option<Time>,
    /// Second time slot (see the table above).
    pub time_b: Option<Time>,
}

impl Lowered {
    /// A stateless lowering (transport cells).
    pub fn stateless(op: CellOp) -> Self {
        Lowered {
            op,
            bits: 0,
            time_a: None,
            time_b: None,
        }
    }
}

/// Sentinel femtosecond value for "no timestamp recorded".
const NONE_FS: u64 = u64::MAX;

fn pack(t: Option<Time>) -> u64 {
    t.map_or(NONE_FS, Time::as_fs)
}

fn unpack(fs: u64) -> Option<Time> {
    (fs != NONE_FS).then(|| Time::from_fs(fs))
}

/// One cell's compiled form: its [`CellOp`] and mutable state packed into
/// a single 64-byte slot, so delivering a pulse loads exactly one cache
/// line of cell data.
///
/// An earlier struct-of-arrays layout spread the op, bit state, time
/// slots, and touched flag over five arrays — up to five scattered lines
/// per event on large netlists. The event loop visits cells in pulse
/// order (effectively random), never in index order, so SoA bought no
/// vectorization back; packing by cell measurably wins.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
struct CellSlot {
    /// The cell's behavior as data.
    op: CellOp,
    /// First time slot (fs; `NONE_FS` = none).
    ta: u64,
    /// Second time slot (fs; `NONE_FS` = none).
    tb: u64,
    /// Small integer state (stored flags, fluxon counts, gate latches).
    bits: u8,
    /// Whether this slot advanced past its boxed component since the last
    /// [`CompiledNetlist::sync_back`] (membership flag for `touched`).
    stale: bool,
}

/// Bytes of cell state one delivery touches (a slot line) — the unit of
/// [`SimStats::slot_bytes_touched`](crate::simulator::SimStats), counted
/// identically by both engines so the counter stays engine-independent.
pub(crate) const SLOT_BYTES: u64 = std::mem::size_of::<CellSlot>() as u64;

/// One pre-packed fan-out destination: the two words of the future
/// [`Event`] that do not depend on the emission, so the hot loop builds a
/// delivery with two adds instead of re-encoding a `Pin` per push.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FanOut {
    /// `destination component << 40` — the event's `cs` word minus the
    /// sequence number.
    cs_base: u64,
    /// `wire delay (fs) << 8 | destination pin` — adds directly onto the
    /// emission's `time_fs << 8`.
    pin_delay: u64,
}

impl FanOut {
    /// Packs a wire destination, checking both fields against the event
    /// bit widths once at lowering time.
    fn pack(to: Pin, delay: Duration) -> FanOut {
        let c = to.component.index() as u64;
        let d = delay.as_fs();
        assert!(
            c < EVENT_COMPONENT_LIMIT,
            "component id {c} exceeds the 24-bit packed window — widen Event.cs"
        );
        assert!(
            d < EVENT_TIME_LIMIT_FS,
            "wire delay {d} fs exceeds the 56-bit packed window — widen Event.tp"
        );
        FanOut {
            cs_base: c << EVENT_SEQ_BITS,
            pin_delay: d << EVENT_PIN_BITS | u64::from(to.index),
        }
    }

    /// The delivery event for an emission at `at_fs` femtoseconds with
    /// sequence number `seq`. The time addition is overflow-checked: a
    /// simulation running past the 56-bit window panics with a widening
    /// note instead of wrapping.
    #[inline]
    pub(crate) fn event_at(self, at_fs: u64, seq: u64) -> Event {
        // Both checks are branch-predicted never-taken compares; together
        // with `checked_add` they make the widening path explicit instead
        // of wrapping silently.
        assert!(
            at_fs < EVENT_TIME_LIMIT_FS,
            "emission time {at_fs} fs exceeds the 56-bit packed window — widen Event.tp"
        );
        debug_assert!(seq < crate::queue::EVENT_SEQ_LIMIT);
        let tp = (at_fs << EVENT_PIN_BITS)
            .checked_add(self.pin_delay)
            .expect("event time exceeds the 56-bit packed window — widen Event.tp");
        Event::from_words(tp, self.cs_base | seq)
    }

    /// The destination pin, decoded (tests and cold paths only).
    #[cfg(test)]
    pub(crate) fn target(self) -> Pin {
        Pin::new(
            ComponentId((self.cs_base >> EVENT_SEQ_BITS) as u32),
            self.pin_delay as u8,
        )
    }

    /// The wire delay, decoded (tests and cold paths only).
    #[cfg(test)]
    pub(crate) fn delay(self) -> Duration {
        Duration::from_fs(self.pin_delay >> EVENT_PIN_BITS)
    }
}

/// The compiled form of a netlist: lowered ops and state in dense
/// cache-line slots, CSR fan-out, and a flat probe table.
///
/// Owned by the simulator as a cache beside the authoritative `Netlist`.
/// While a run is in flight the slot state is authoritative for lowered
/// cells; at the end of every run [`CompiledNetlist::sync_back`] restores
/// each touched cell's boxed component, so all external observation and
/// mutation (peeks, pokes, recompiles) happens against fresh boxes.
#[derive(Debug)]
pub(crate) struct CompiledNetlist {
    /// Per-cell op + state, one cache line each, indexed by *slot* (the
    /// [`CellLayout`] placement, not the external cell id).
    slots: Vec<CellSlot>,
    /// Dense id→slot remap: `slot_of[cell id] = slot`. The one
    /// translation a delivery performs — events carry external ids so
    /// the total order stays placement-independent.
    slot_of: Vec<u32>,
    /// The inverse map, `cell_of[slot] = cell id`, for table building and
    /// sync-back.
    cell_of: Vec<u32>,
    /// Slots whose state advanced past their boxed component since the
    /// last sync-back (dense list + the per-slot `stale` flag, so the
    /// write-back is O(touched), not O(cells)).
    touched: Vec<u32>,
    /// Output pins per cell covered by the flat tables (max wired or
    /// probed output pin index + 1). Emissions on pins at or beyond the
    /// stride have no fan-out and no probes, exactly like the hash-map
    /// lookup missing.
    stride: usize,
    /// Fused CSR offsets, length `cells * stride + 1`, indexed by
    /// `slot * stride + pin`: entry `[0]` indexes `fan_dests`, entry `[1]`
    /// indexes `probe_ids`, so one offset-array load yields both ranges
    /// of a flat pin.
    offsets: Vec<[u32; 2]>,
    /// Pre-packed fan-out destinations, wire insertion order per source
    /// pin, rows in slot order.
    fan_dests: Vec<FanOut>,
    /// Packed probe ids, registration order per source pin.
    probe_ids: Vec<ProbeId>,
}

impl CompiledNetlist {
    /// Lowers `netlist` (capturing the current state of every component)
    /// into slots placed by `layout`, and precomputes the flat fan-out
    /// and probe tables in the same order.
    pub(crate) fn compile(
        netlist: &Netlist,
        probes: &HashMap<Pin, Vec<ProbeId>>,
        layout: &CellLayout,
    ) -> Self {
        let cells = netlist.component_count();
        assert_eq!(layout.len(), cells, "layout does not cover this netlist");
        let mut slots = Vec::with_capacity(cells);
        for slot in 0..cells {
            let id = layout.cell_of(slot);
            let lowered = netlist
                .component(id)
                .lower()
                .unwrap_or_else(|| Lowered::stateless(CellOp::Dyn));
            slots.push(CellSlot {
                op: lowered.op,
                ta: pack(lowered.time_a),
                tb: pack(lowered.time_b),
                bits: lowered.bits,
                stale: false,
            });
        }
        let mut compiled = CompiledNetlist {
            slots,
            slot_of: layout.slot_table().to_vec(),
            cell_of: layout.cell_table().to_vec(),
            touched: Vec::new(),
            stride: 0,
            offsets: Vec::new(),
            fan_dests: Vec::new(),
            probe_ids: Vec::new(),
        };
        compiled.rebuild_tables(netlist, probes);
        compiled
    }

    /// Recomputes the fan-out and probe tables from the current netlist
    /// wiring and probe registrations. Cell slots are untouched, so
    /// this is legal (and used) after new probes are attached mid-life.
    pub(crate) fn rebuild_tables(
        &mut self,
        netlist: &Netlist,
        probes: &HashMap<Pin, Vec<ProbeId>>,
    ) {
        let cells = netlist.component_count();
        let max_pin = netlist
            .wires()
            .map(|w| w.from.index as usize)
            .chain(probes.keys().map(|p| p.index as usize))
            .max();
        let stride = max_pin.map_or(0, |p| p + 1);
        let mut offsets = Vec::with_capacity(cells * stride + 1);
        let mut fan_dests = Vec::new();
        let mut probe_ids = Vec::new();
        offsets.push([0u32, 0u32]);
        for slot in 0..cells {
            let cell = self.cell_of[slot];
            for pin in 0..stride {
                let source = Pin::new(ComponentId(cell), pin as u8);
                fan_dests.extend(
                    netlist
                        .fanout(source)
                        .iter()
                        .map(|&(to, delay)| FanOut::pack(to, delay)),
                );
                if let Some(ids) = probes.get(&source) {
                    probe_ids.extend_from_slice(ids);
                }
                offsets.push([
                    u32::try_from(fan_dests.len()).expect("fan-out too large"),
                    u32::try_from(probe_ids.len()).expect("probe table too large"),
                ]);
            }
        }
        self.stride = stride;
        self.offsets = offsets;
        self.fan_dests = fan_dests;
        self.probe_ids = probe_ids;
    }

    /// Restores every touched cell's boxed component from the slot state,
    /// leaving box and compiled state in agreement. O(touched); a no-op
    /// when no lowered cell was delivered to since the last sync.
    pub(crate) fn sync_back(&mut self, netlist: &mut Netlist) {
        for &slot in &self.touched {
            let cell = self.cell_of[slot as usize];
            let s = &mut self.slots[slot as usize];
            s.stale = false;
            let state = Lowered {
                op: s.op,
                bits: s.bits,
                time_a: unpack(s.ta),
                time_b: unpack(s.tb),
            };
            netlist.component_mut(ComponentId(cell)).restore(&state);
        }
        self.touched.clear();
    }

    /// The slot holding a cell's state — the delivery-time remap load.
    #[inline]
    pub(crate) fn slot_index(&self, cell: usize) -> usize {
        self.slot_of[cell] as usize
    }

    /// Flat table index of an output pin on a cell already remapped to
    /// `slot`, or `None` if the pin lies beyond the stride (never wired,
    /// never probed).
    #[inline]
    pub(crate) fn flat_at(&self, slot: usize, pin: u8) -> Option<usize> {
        let pin = pin as usize;
        if pin >= self.stride {
            return None;
        }
        Some(slot * self.stride + pin)
    }

    /// Fan-out destinations of a flat source index.
    #[inline]
    pub(crate) fn fanout(&self, flat: usize) -> &[FanOut] {
        &self.fan_dests[self.offsets[flat][0] as usize..self.offsets[flat + 1][0] as usize]
    }

    /// Probes attached to a flat source index.
    #[inline]
    pub(crate) fn probes(&self, flat: usize) -> &[ProbeId] {
        &self.probe_ids[self.offsets[flat][1] as usize..self.offsets[flat + 1][1] as usize]
    }

    /// Software-prefetches the slot line and CSR offset row of `cell`'s
    /// placement — issued for the *next* event while the current one
    /// computes, so its state is resident by the time it pops. A miss
    /// (stale hint, non-x86 target) costs nothing but the dropped hint.
    #[inline]
    pub(crate) fn prefetch_cell(&self, cell: usize) {
        if let Some(&slot) = self.slot_of.get(cell) {
            let slot = slot as usize;
            prefetch_read(&raw const self.slots[slot]);
            if self.stride > 0 {
                prefetch_read(&raw const self.offsets[slot * self.stride]);
            }
        }
    }

    /// Delivers one pulse at `now` to input `pin` of the cell placed at
    /// `slot` (external id `cell`, already remapped by the caller so the
    /// lookup is paid once per event), mirroring the boxed cell models
    /// arm for arm (including violation strings, degrade decisions, and
    /// emission order).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn deliver(
        &mut self,
        netlist: &mut Netlist,
        cell: u32,
        slot: usize,
        pin: u8,
        now: Time,
        emitted: &mut Vec<(u8, Time)>,
        violations: &mut Vec<crate::violation::Violation>,
        policy: crate::violation::ViolationPolicy,
        degraded_drops: &mut u64,
    ) {
        debug_assert_eq!(self.cell_of[slot], cell, "slot/cell remap drift");
        let s = &mut self.slots[slot];
        if matches!(s.op, CellOp::Dyn) {
            // Unlowerable cell: its box stays authoritative.
            let (component, label) = netlist.component_and_label_mut(ComponentId(cell));
            let mut ctx = PulseContext {
                emitted,
                violations,
                component_label: CellLabel::Resolved(label),
                policy,
                degraded_drops,
            };
            component.pulse(pin, now, &mut ctx);
            return;
        }
        if !s.stale {
            s.stale = true;
            self.touched.push(slot as u32);
        }
        // The label is only read when a violation fires, so hand the
        // context a lazy reference instead of loading the label table on
        // every event.
        let mut ctx = PulseContext {
            emitted,
            violations,
            component_label: CellLabel::Lazy(netlist.labels_raw(), cell),
            policy,
            degraded_drops,
        };
        match s.op {
            CellOp::Dro { q_delay } => match pin {
                0 => s.bits = 1,
                1 => {
                    if s.bits != 0 {
                        s.bits = 0;
                        ctx.emit_after(0, now, q_delay);
                    }
                }
                other => ctx.violation(now, "pin", format!("dro has no input pin {other}")),
            },
            CellOp::HcDro {
                capacity,
                q_delay,
                sep,
                hard_sep,
            } => match pin {
                0 => {
                    if hcdro_sep(&mut s.ta, now, "write", sep, hard_sep, &mut ctx) {
                        return; // degraded: the fluxon is lost in the junction
                    }
                    if s.bits < capacity {
                        s.bits += 1;
                    } // else: dissipated, the loop is full.
                }
                1 => {
                    if hcdro_sep(&mut s.tb, now, "read", sep, hard_sep, &mut ctx) {
                        return; // degraded: nothing pops
                    }
                    if s.bits > 0 {
                        s.bits -= 1;
                        ctx.emit_after(0, now, q_delay);
                    }
                }
                other => ctx.violation(now, "pin", format!("hcdro has no input pin {other}")),
            },
            CellOp::Ndro { out_delay } => match pin {
                0 => s.bits = 1,
                1 => s.bits = 0,
                2 => {
                    if s.bits != 0 {
                        ctx.emit_after(0, now, out_delay);
                    }
                }
                other => ctx.violation(now, "pin", format!("ndro has no input pin {other}")),
            },
            CellOp::Ndroc { prop, rearm } => match pin {
                0 => s.bits = 1,
                1 => s.bits = 0,
                2 => {
                    if s.ta != NONE_FS {
                        let sep = now.abs_diff(Time::from_fs(s.ta));
                        if sep < rearm
                            && ctx.violation_degrades(
                                now,
                                "re-arm",
                                format!("ndroc enables {sep} apart, need {}ps", rearm.as_ps()),
                            )
                        {
                            s.ta = now.as_fs();
                            return;
                        }
                    }
                    s.ta = now.as_fs();
                    let out = if s.bits != 0 { 0 } else { 1 };
                    ctx.emit_after(out, now, prop);
                }
                other => ctx.violation(now, "pin", format!("ndroc has no input pin {other}")),
            },
            CellOp::Dand { window, delay } => {
                // Pin 0 latches into `ta`, pin 1 into `tb`; a pulse pairs
                // with (and clears) the other slot's pending pulse.
                let pending_other = match pin {
                    0 => s.tb,
                    1 => s.ta,
                    other => {
                        ctx.violation(now, "pin", format!("dand has no input pin {other}"));
                        return;
                    }
                };
                let mut fired = false;
                if pending_other != NONE_FS {
                    // The earlier pulse pairs if in-window; lost either way.
                    if pin == 0 {
                        s.tb = NONE_FS;
                    } else {
                        s.ta = NONE_FS;
                    }
                    if now.abs_diff(Time::from_fs(pending_other)) <= window {
                        ctx.emit_after(0, now, delay);
                        fired = true;
                    }
                }
                if !fired {
                    if pin == 0 {
                        s.ta = now.as_fs();
                    } else {
                        s.tb = now.as_fs();
                    }
                }
            }
            CellOp::Gate { func, delay } => match pin {
                0 => s.bits |= 1,
                1 => s.bits |= 2,
                2 => {
                    let a = s.bits & 1 != 0;
                    let b = s.bits & 2 != 0;
                    s.bits = 0;
                    let fire = match func {
                        GateFunc::And => a && b,
                        GateFunc::Xor => a ^ b,
                    };
                    if fire {
                        ctx.emit_after(0, now, delay);
                    }
                }
                other => ctx.violation(now, "pin", format!("gate has no input pin {other}")),
            },
            CellOp::Not { delay } => match pin {
                0 => s.bits = 1,
                1 => {
                    if s.bits == 0 {
                        ctx.emit_after(0, now, delay);
                    }
                    s.bits = 0;
                }
                other => ctx.violation(now, "pin", format!("not has no input pin {other}")),
            },
            CellOp::Sync {
                setup,
                track,
                hold,
                delay,
            } => match pin {
                0 => {
                    if s.tb != NONE_FS {
                        let tc = Time::from_fs(s.tb);
                        if now.abs_diff(tc) <= hold
                            && ctx.violation_degrades(
                                now,
                                "setup",
                                format!(
                                    "data {} after the clock edge, hold is {}ps",
                                    now.abs_diff(tc),
                                    hold.as_ps()
                                ),
                            )
                        {
                            return; // degraded: the racing pulse is destroyed
                        }
                    }
                    s.ta = now.as_fs();
                }
                1 => {
                    s.tb = now.as_fs();
                    if s.ta != NONE_FS {
                        let td = Time::from_fs(s.ta);
                        s.ta = NONE_FS;
                        let lead = now.abs_diff(td);
                        if lead < setup {
                            if ctx.violation_degrades(
                                now,
                                "setup",
                                format!(
                                    "data leads the clock by {lead}, setup is {}ps",
                                    setup.as_ps()
                                ),
                            ) {
                                return; // degraded: no clean output forms
                            }
                        } else if lead > setup + track {
                            // Dynamic retention expired; the datum decayed.
                            return;
                        }
                        ctx.emit_after(0, now, delay);
                    }
                }
                other => ctx.violation(now, "pin", format!("sync has no input pin {other}")),
            },
            CellOp::Jtl { delay } => ctx.emit_after(0, now, delay),
            CellOp::Splitter { delay } => {
                ctx.emit_after(0, now, delay);
                ctx.emit_after(1, now, delay);
            }
            CellOp::Merger { dead, delay } => {
                if s.ta != NONE_FS && now.abs_diff(Time::from_fs(s.ta)) < dead {
                    // Too close to the previous pulse: dissipated.
                    return;
                }
                s.ta = now.as_fs();
                ctx.emit_after(0, now, delay);
            }
            CellOp::CounterBit { carry, read } => match pin {
                0 => {
                    if s.bits != 0 {
                        s.bits = 0;
                        ctx.emit_after(0, now, carry);
                    } else {
                        s.bits = 1;
                    }
                }
                1 => {
                    if s.bits != 0 {
                        ctx.emit_after(1, now, read);
                    }
                }
                2 => s.bits = 0,
                other => ctx.violation(now, "pin", format!("counter_bit has no input pin {other}")),
            },
            CellOp::Dyn => unreachable!("handled above"),
        }
    }
}

/// The HC-DRO inter-pulse spacing check, transliterated from
/// `sfq_cells::storage::HcDro::check_sep`.
fn hcdro_sep(
    last: &mut u64,
    now: Time,
    what: &str,
    sep_limit: Duration,
    hard_limit: Duration,
    ctx: &mut PulseContext<'_>,
) -> bool {
    let mut degrade = false;
    if *last != NONE_FS {
        let sep = now.abs_diff(Time::from_fs(*last));
        if sep < sep_limit {
            if sep < hard_limit {
                degrade = ctx.violation_degrades(
                    now,
                    "hold",
                    format!(
                        "hc-dro {what} pulses {sep} apart, need {}ps",
                        sep_limit.as_ps()
                    ),
                );
            } else {
                ctx.violation(
                    now,
                    "hold",
                    format!(
                        "hc-dro {what} pulses {sep} apart inside the design-rule {}ps \
                         (guard band holds)",
                        sep_limit.as_ps()
                    ),
                );
            }
        }
    }
    *last = now.as_fs();
    degrade
}

/// Issues a read prefetch for the cache line at `p` on targets that have
/// one; a no-op elsewhere. `_mm_prefetch` is a pure performance hint —
/// it cannot fault and touches no architectural state — so the `unsafe`
/// here is only the intrinsic's signature.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_prefetch(p.cast::<i8>(), std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn cell_slot_is_one_cache_line() {
        // The whole point of the packed layout: op + state in 64 bytes.
        assert_eq!(std::mem::size_of::<CellSlot>(), 64);
        assert_eq!(std::mem::align_of::<CellSlot>(), 64);
        assert_eq!(SLOT_BYTES, 64);
    }

    #[test]
    fn fanout_rows_pack_and_decode() {
        let to = Pin::new(ComponentId(42), 3);
        let fo = FanOut::pack(to, Duration::from_ps(2.5));
        assert_eq!(fo.target(), to);
        assert_eq!(fo.delay(), Duration::from_ps(2.5));
        let ev = fo.event_at(1_000, 7);
        assert_eq!(ev.time_fs(), 1_000 + 2_500);
        assert_eq!(ev.seq(), 7);
        assert_eq!(ev.target(), to);
    }

    #[test]
    #[should_panic(expected = "widen Event.tp")]
    fn emission_past_the_packed_window_panics() {
        let fo = FanOut::pack(Pin::new(ComponentId(0), 0), Duration::from_fs(0));
        // The last representable instant still packs…
        assert_eq!(
            fo.event_at(EVENT_TIME_LIMIT_FS - 1, 0).time_fs(),
            EVENT_TIME_LIMIT_FS - 1
        );
        // …one femtosecond past it panics instead of wrapping.
        let _ = fo.event_at(EVENT_TIME_LIMIT_FS, 0);
    }

    #[test]
    #[should_panic(expected = "widen Event.tp")]
    fn wire_delay_overflow_is_checked_at_the_sum() {
        // Both addends fit their windows individually; the sum does not.
        let fo = FanOut::pack(
            Pin::new(ComponentId(0), 0),
            Duration::from_fs(EVENT_TIME_LIMIT_FS - 1),
        );
        let _ = fo.event_at(EVENT_TIME_LIMIT_FS - 1, 0);
    }
}
