//! Timing-violation records.
//!
//! SFQ cells have setup, hold, and critical-time requirements (for example
//! the NDROC demux element of the paper needs 53 ps between successive
//! enable pulses, and HC-DRO cells need 10 ps between stored pulses). Cells
//! report violations through
//! [`PulseContext::violation`](crate::component::PulseContext::violation);
//! the simulator collects them so drivers and tests can assert clean runs.

use std::fmt;

use crate::time::Time;

/// A single recorded timing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// When the violation was observed.
    pub at: Time,
    /// Instance label of the offending cell.
    pub cell: String,
    /// Short machine-readable kind, e.g. `"hold"`, `"setup"`, `"re-arm"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} violation at {}: {}", self.cell, self.kind, self.at, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Violation {
            at: Time::from_ps(12.5),
            cell: "ndroc3".to_string(),
            kind: "re-arm",
            detail: "enable pulses 40ps apart, need 53ps".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("ndroc3"));
        assert!(s.contains("re-arm"));
        assert!(s.contains("12.500ps"));
    }
}
