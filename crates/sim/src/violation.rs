//! Timing-violation records and the policies that give them consequences.
//!
//! SFQ cells have setup, hold, and critical-time requirements (for example
//! the NDROC demux element of the paper needs 53 ps between successive
//! enable pulses, and HC-DRO cells need 10 ps between stored pulses). Cells
//! report violations through
//! [`PulseContext::violation`](crate::component::PulseContext::violation);
//! the simulator collects them so drivers and tests can assert clean runs.
//!
//! A [`ViolationPolicy`] decides what a violation *does*: under
//! [`ViolationPolicy::Record`] it is a log entry only, under
//! [`ViolationPolicy::FailFast`] the run stops with a [`SimError`], and
//! under [`ViolationPolicy::Degrade`] the violated cell misbehaves — the
//! offending pulse is dropped, which is how a real JJ circuit fails
//! (a re-arm-violated NDROC routes to neither output, a hold-violated
//! HC-DRO loses the fluxon).

use std::fmt;

use crate::time::Time;

/// What the simulator does when a cell reports a timing violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Record the violation and continue; the marginal pulse still takes
    /// effect (optimistic, the historical behavior).
    #[default]
    Record,
    /// Stop the run at the first violation and return it as an error from
    /// [`Simulator::try_run`](crate::simulator::Simulator::try_run).
    FailFast,
    /// The violated cell misbehaves: the offending pulse is dropped rather
    /// than taking effect (pessimistic-realistic; what the margin engine
    /// uses to find the edge of correct operation).
    Degrade,
}

/// Error returned by the fallible run methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The [`ViolationPolicy::FailFast`] policy stopped the run; carries
    /// the first violation observed.
    FailFast(Violation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::FailFast(v) => write!(f, "fail-fast on first violation: {v}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A single recorded timing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// When the violation was observed.
    pub at: Time,
    /// Instance label of the offending cell.
    pub cell: String,
    /// Short machine-readable kind, e.g. `"hold"`, `"setup"`, `"re-arm"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} violation at {}: {}",
            self.cell, self.kind, self.at, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Violation {
            at: Time::from_ps(12.5),
            cell: "ndroc3".to_string(),
            kind: "re-arm",
            detail: "enable pulses 40ps apart, need 53ps".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("ndroc3"));
        assert!(s.contains("re-arm"));
        assert!(s.contains("12.500ps"));
    }

    #[test]
    fn default_policy_is_record() {
        assert_eq!(ViolationPolicy::default(), ViolationPolicy::Record);
    }

    #[test]
    fn sim_error_displays_the_violation() {
        let v = Violation {
            at: Time::from_ps(1.0),
            cell: "c".to_string(),
            kind: "hold",
            detail: "d".to_string(),
        };
        let e = SimError::FailFast(v);
        assert!(e.to_string().contains("fail-fast"));
        assert!(e.to_string().contains("hold"));
    }
}
