//! The [`Component`] trait implemented by every SFQ cell model.

use std::fmt::Debug;

use crate::compiled::Lowered;
use crate::time::{Duration, Time};
use crate::violation::{Violation, ViolationPolicy};

/// Context handed to a component while it processes an incoming pulse.
///
/// The component uses it to emit pulses on its own output pins (after an
/// internal delay) and to report timing violations. The simulator, not the
/// cell, owns the [`ViolationPolicy`]: a cell that can degrade asks
/// [`PulseContext::violation_degrades`] whether the offending pulse should
/// be dropped and acts accordingly.
#[derive(Debug)]
pub struct PulseContext<'a> {
    pub(crate) emitted: &'a mut Vec<(u8, Time)>,
    pub(crate) violations: &'a mut Vec<Violation>,
    pub(crate) component_label: CellLabel<'a>,
    pub(crate) policy: ViolationPolicy,
    pub(crate) degraded_drops: &'a mut u64,
}

/// The delivering cell's label, resolved only if a violation needs it.
///
/// Violations are rare; loading the label table on every delivery costs
/// the compiled hot loop a scattered cache line for a string it almost
/// never reads. `Lazy` defers that load to the violation path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CellLabel<'a> {
    /// An already-resolved label (dyn interpreter, unlowered cells).
    Resolved(&'a str),
    /// The netlist's label table plus the cell index to resolve on demand.
    Lazy(&'a [String], u32),
}

impl CellLabel<'_> {
    fn as_str(&self) -> &str {
        match self {
            CellLabel::Resolved(s) => s,
            CellLabel::Lazy(labels, cell) => labels[*cell as usize].as_str(),
        }
    }
}

impl<'a> PulseContext<'a> {
    /// Emits a pulse on output pin `pin` at absolute time `at`.
    ///
    /// `at` is usually `now + internal_delay`.
    pub fn emit(&mut self, pin: u8, at: Time) {
        self.emitted.push((pin, at));
    }

    /// Emits a pulse on output pin `pin`, `delay` after `now`.
    pub fn emit_after(&mut self, pin: u8, now: Time, delay: Duration) {
        self.emit(pin, now + delay);
    }

    /// Records a timing violation observed by the cell.
    pub fn violation(&mut self, now: Time, kind: &'static str, detail: String) {
        self.violations.push(Violation {
            at: now,
            cell: self.component_label.as_str().to_string(),
            kind,
            detail,
        });
    }

    /// Records a timing violation and reports whether the active
    /// [`ViolationPolicy`] wants the offending pulse *degraded* (dropped).
    ///
    /// Cells with a physical failure mode call this instead of
    /// [`PulseContext::violation`]: when it returns `true` the cell must
    /// skip the state update and emissions the pulse would normally cause
    /// (the marginal pulse is lost in the junction, as in a real circuit).
    #[must_use]
    pub fn violation_degrades(&mut self, now: Time, kind: &'static str, detail: String) -> bool {
        self.violation(now, kind, detail);
        if self.policy == ViolationPolicy::Degrade {
            *self.degraded_drops += 1;
            true
        } else {
            false
        }
    }

    /// The violation policy active for this run.
    pub fn policy(&self) -> ViolationPolicy {
        self.policy
    }
}

/// A behavioral SFQ cell model.
///
/// Components receive fluxon pulses on input pins and may emit pulses on
/// output pins. All state lives inside the component; the simulator calls
/// [`Component::pulse`] in strict global time order, so implementations can
/// track inter-pulse intervals with simple `Option<Time>` fields.
///
/// Pin numbering is per-component and documented by each cell type in
/// `sfq-cells`.
pub trait Component: Debug {
    /// Static cell-kind name (e.g. `"ndro"`, `"jtl"`), used for census and
    /// diagnostics.
    fn kind(&self) -> &'static str;

    /// Handles a pulse arriving at input pin `pin` at time `now`.
    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>);

    /// Resets all internal state to power-on conditions.
    fn power_on_reset(&mut self) {}

    /// Returns an inspectable integer state, if the cell has one.
    ///
    /// Storage cells expose their stored fluxon count here (0 or 1 for
    /// DRO/NDRO, 0–3 for HC-DRO) so tests and drivers can peek without
    /// issuing destructive reads. Pure routing cells return `None`.
    fn stored(&self) -> Option<u8> {
        None
    }

    /// Nominal input-to-output propagation delay, for static timing
    /// analysis. `None` means the component is not a timed cell (the
    /// default for test doubles).
    fn propagation_delay(&self) -> Option<Duration> {
        None
    }

    /// Lowers the cell into its compiled form — its behavior as a
    /// [`CellOp`](crate::compiled::CellOp) plus a snapshot of its current
    /// mutable state — for the compiled execution engine.
    ///
    /// `None` (the default) means the cell has no lowering; the compiled
    /// engine then dispatches it through this boxed implementation, so
    /// compilation never changes behavior. Implementations must keep the
    /// lowering exact: the `engine_equivalence` differential suite holds
    /// both engines to byte-identical observables.
    fn lower(&self) -> Option<Lowered> {
        None
    }

    /// Writes a compiled-engine state snapshot back into the cell.
    ///
    /// The compiled engine mutates lowered state in its own dense arrays;
    /// at the end of every run it restores each touched cell through this
    /// method so external peeks ([`Component::stored`], test pokes) always
    /// observe fresh state. `state` uses the same mapping the cell's
    /// [`Component::lower`] produced. Cells without a lowering are never
    /// restored (the default is a no-op).
    fn restore(&mut self, state: &Lowered) {
        let _ = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo;
    impl Component for Echo {
        fn kind(&self) -> &'static str {
            "echo"
        }
        fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
            ctx.emit_after(pin, now, Duration::from_ps(1.0));
        }
    }

    fn ctx_over<'a>(
        emitted: &'a mut Vec<(u8, Time)>,
        violations: &'a mut Vec<Violation>,
        degraded: &'a mut u64,
        policy: ViolationPolicy,
    ) -> PulseContext<'a> {
        PulseContext {
            emitted,
            violations,
            component_label: CellLabel::Resolved("cell7"),
            policy,
            degraded_drops: degraded,
        }
    }

    #[test]
    fn context_emit_collects() {
        let mut emitted = Vec::new();
        let mut violations = Vec::new();
        let mut degraded = 0;
        let mut ctx = ctx_over(
            &mut emitted,
            &mut violations,
            &mut degraded,
            ViolationPolicy::Record,
        );
        Echo.pulse(2, Time::from_ps(5.0), &mut ctx);
        assert_eq!(emitted, vec![(2, Time::from_ps(6.0))]);
        assert!(violations.is_empty());
    }

    #[test]
    fn context_violation_records_label() {
        let mut emitted = Vec::new();
        let mut violations = Vec::new();
        let mut degraded = 0;
        let mut ctx = ctx_over(
            &mut emitted,
            &mut violations,
            &mut degraded,
            ViolationPolicy::Record,
        );
        ctx.violation(Time::from_ps(1.0), "hold", "too close".to_string());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].cell, "cell7");
        assert_eq!(violations[0].kind, "hold");
    }

    #[test]
    fn violation_degrades_follows_policy() {
        let mut emitted = Vec::new();
        let mut violations = Vec::new();
        let mut degraded = 0;
        for (policy, expect_drop) in [
            (ViolationPolicy::Record, false),
            (ViolationPolicy::FailFast, false),
            (ViolationPolicy::Degrade, true),
        ] {
            let mut ctx = ctx_over(&mut emitted, &mut violations, &mut degraded, policy);
            let drop = ctx.violation_degrades(Time::from_ps(1.0), "re-arm", "x".to_string());
            assert_eq!(drop, expect_drop, "{policy:?}");
        }
        // Every call records the violation; only Degrade counted a drop.
        assert_eq!(violations.len(), 3);
        assert_eq!(degraded, 1);
    }

    #[test]
    fn default_stored_is_none() {
        assert_eq!(Echo.stored(), None);
    }
}
