//! Pending-event schedulers: the calendar queue, the lane-batched
//! horizon queue, and the reference heap.
//!
//! The simulator's hot loop is "pop the earliest pending event"; this
//! module provides three interchangeable implementations of that priority
//! queue:
//!
//! * `CalendarQueue` — a bucketed timing wheel (the default). Simulation
//!   time is divided into fixed-width picosecond buckets; pushing an event
//!   indexes straight into its bucket, popping scans forward from the
//!   current bucket. Events beyond the wheel's horizon wait in an overflow
//!   heap and migrate into the wheel as the cursor approaches them. For
//!   the pulse workloads here (many events clustered within a few
//!   picoseconds, operations hundreds of picoseconds apart) this replaces
//!   the `O(log n)` binary-heap sift with `O(1)` pushes and short bucket
//!   scans.
//! * `LaneBatchedQueue` — the scheduler-overhaul part-2 design. A much
//!   smaller wheel (256 × 16 ps, L1-resident) drains a whole same-horizon
//!   bucket as one ascending-sorted batch served by a cursor, so popping
//!   is a cursor increment instead of a heap/bucket transaction. Pushes
//!   landing *inside* the horizon being served bypass the wheel entirely:
//!   they go to the target cell's small fixed-capacity self-echo lane
//!   (spilling to a shared insertion buffer) and are lazily sorted and
//!   merged into the batch at the next pop. See the type docs for the
//!   invariants.
//! * `HeapQueue` — the seed `BinaryHeap` implementation, kept as the
//!   differential reference. The `reference-queue` cargo feature makes it
//!   the default scheduler of [`Simulator::new`](crate::simulator::Simulator::new)
//!   (and `lane-scheduler` selects the lane-batched queue); all three
//!   implementations are always compiled, so equivalence tests can drive
//!   the same netlist through every scheduler in one process.
//!
//! # Determinism
//!
//! All schedulers order events by the same fully-deterministic key
//! `(time, component id, sequence number)`:
//!
//! 1. earlier simulation time first;
//! 2. at equal times, the lower `ComponentId` first — simultaneous
//!    pulses deliver in netlist construction order, not in an accident of
//!    heap layout;
//! 3. at equal times on the same component, insertion order (the
//!    monotonically increasing per-simulator sequence number).
//!
//! The sequence number makes the key a *total* order, so "pop the
//! minimum" has exactly one answer regardless of how a queue stores its
//! pending events — which is what lets the calendar queue keep its
//! buckets unsorted, and the lane-batched queue park same-horizon pushes
//! in per-cell lanes, and still replay the heap's schedule pulse for
//! pulse.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::netlist::{ComponentId, Pin};
use crate::time::Time;

/// A pending pulse delivery, packed into two machine words (16 bytes —
/// down from the seed's 24) so every wheel bucket, self-echo lane, sorted
/// batch, and heap node carries 1.5× more events per cache line.
///
/// Packing:
///
/// * `tp` = `time_fs << 8 | pin` — 56 bits of femtosecond delivery time
///   (≈ 72 s of simulated time, ~5 000 000× the longest soak) over the
///   8-bit input-pin index.
/// * `cs` = `component << 40 | seq` — the 24-bit *external* component id
///   (16.7 M cells) over a 40-bit insertion sequence number (the
///   simulator re-bases `seq` whenever its queue drains, so 2^40 bounds
///   events *in flight with overlapping lifetimes*, not events ever
///   simulated).
///
/// The packing is chosen so the total order `(time, component, seq)`
/// falls out of comparing `(tp >> 8, cs)` — `cs` already orders by
/// component then sequence natively. [`Event::new`] checks every field
/// against its width and panics with a widening note on overflow; the
/// compiled engine's pre-packed fan-out path uses `checked_add` for the
/// same guarantee (see `CompiledNetlist`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    /// `time_fs << 8 | pin`.
    tp: u64,
    /// `component << 40 | seq`.
    cs: u64,
}

const _: () = assert!(
    std::mem::size_of::<Event>() == 16 && std::mem::align_of::<Event>() == 8,
    "Event must stay two machine words; widen the packing consciously"
);

/// Bits of `Event.tp` holding the input-pin index (the low byte).
pub(crate) const EVENT_PIN_BITS: u32 = 8;
/// Bits of `Event.cs` holding the sequence number (the low 40).
pub(crate) const EVENT_SEQ_BITS: u32 = 40;
/// Exclusive upper bound on a packable femtosecond timestamp.
pub(crate) const EVENT_TIME_LIMIT_FS: u64 = 1 << (64 - EVENT_PIN_BITS);
/// Exclusive upper bound on a packable component index.
pub(crate) const EVENT_COMPONENT_LIMIT: u64 = 1 << (64 - EVENT_SEQ_BITS);
/// Exclusive upper bound on a packable sequence number.
pub(crate) const EVENT_SEQ_LIMIT: u64 = 1 << EVENT_SEQ_BITS;

/// The total-order key of an event — see [`Event::key`].
type EventKey = (u64, u64);

impl Event {
    /// Packs a delivery, checking every field against its bit width.
    #[inline]
    pub(crate) fn new(time: Time, seq: u64, target: Pin) -> Event {
        let t = time.as_fs();
        let c = target.component.index() as u64;
        assert!(
            t < EVENT_TIME_LIMIT_FS,
            "event time {t} fs exceeds the 56-bit packed window — widen Event.tp"
        );
        assert!(
            c < EVENT_COMPONENT_LIMIT,
            "component id {c} exceeds the 24-bit packed window — widen Event.cs"
        );
        assert!(
            seq < EVENT_SEQ_LIMIT,
            "sequence {seq} exceeds the 40-bit packed window — widen Event.cs"
        );
        Event {
            tp: t << EVENT_PIN_BITS | u64::from(target.index),
            cs: c << EVENT_SEQ_BITS | seq,
        }
    }

    /// Reassembles an event from pre-packed words (the compiled engine's
    /// fan-out fast path). Width checks are the caller's job — the fan-out
    /// tables are validated at lowering time and the time addition is
    /// `checked_add`-guarded.
    #[inline]
    pub(crate) const fn from_words(tp: u64, cs: u64) -> Event {
        Event { tp, cs }
    }

    /// Delivery time.
    #[inline]
    pub(crate) fn time(&self) -> Time {
        Time::from_fs(self.tp >> EVENT_PIN_BITS)
    }

    /// Delivery time in femtoseconds.
    #[inline]
    pub(crate) fn time_fs(&self) -> u64 {
        self.tp >> EVENT_PIN_BITS
    }

    /// Per-simulator insertion sequence number.
    #[inline]
    pub(crate) fn seq(&self) -> u64 {
        self.cs & (EVENT_SEQ_LIMIT - 1)
    }

    /// Index of the target component (the external id — layout
    /// permutations never leak into events, so the total order is
    /// placement-independent by construction).
    #[inline]
    pub(crate) fn component_index(&self) -> usize {
        (self.cs >> EVENT_SEQ_BITS) as usize
    }

    /// Target input-pin index on the component.
    #[inline]
    pub(crate) fn pin(&self) -> u8 {
        self.tp as u8
    }

    /// The target pin, reassembled.
    #[inline]
    pub(crate) fn target(&self) -> Pin {
        Pin::new(ComponentId(self.component_index() as u32), self.pin())
    }

    /// The `component << 40 | seq` word — the low half of the packed
    /// total-order key, shared with the lane-batched queue's `u128` keys.
    #[inline]
    pub(crate) fn cs_word(&self) -> u64 {
        self.cs
    }

    /// The total ordering key: `(time, component id, sequence)` — packed
    /// as `(tp >> 8, cs)`, which compares identically.
    fn key(&self) -> EventKey {
        (self.tp >> EVENT_PIN_BITS, self.cs)
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("time", &self.time())
            .field("seq", &self.seq())
            .field("target", &self.target())
            .finish()
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Which pending-event scheduler a [`Simulator`](crate::simulator::Simulator)
/// runs on. All three produce byte-identical schedules (see the module
/// docs); they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Bucketed calendar queue / timing wheel (the default fast path).
    CalendarQueue,
    /// The seed `BinaryHeap` scheduler (the differential reference).
    ReferenceHeap,
    /// Lane-batched horizon scheduler: cursor-served sorted batches with
    /// per-cell self-echo lanes (the part-2 fast path).
    LaneBatched,
}

impl SchedulerKind {
    /// Every scheduler, reference first — the order differential tests
    /// iterate.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::ReferenceHeap,
        SchedulerKind::CalendarQueue,
        SchedulerKind::LaneBatched,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::CalendarQueue => "calendar-queue",
            SchedulerKind::ReferenceHeap => "reference-heap",
            SchedulerKind::LaneBatched => "lane-batched",
        }
    }

    /// Parses a [`label`](SchedulerKind::label) back into a kind.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        SchedulerKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Runs `f` with `kind` as this thread's default scheduler — what
    /// [`SchedulerKind::default`] (and hence every plain `Simulator`
    /// constructor) returns inside `f`. The previous default is restored
    /// afterwards, including on unwind. This is how a job request pins a
    /// scheduler for code that builds simulators internally (e.g. Monte
    /// Carlo trials) without threading a parameter through every layer.
    pub fn with_thread_default<R>(kind: SchedulerKind, f: impl FnOnce() -> R) -> R {
        crate::pinning::with_override(&THREAD_DEFAULT, kind, f)
    }
}

std::thread_local! {
    static THREAD_DEFAULT: std::cell::Cell<Option<SchedulerKind>> =
        const { std::cell::Cell::new(None) };
}

impl Default for SchedulerKind {
    /// The thread's pinned default if inside
    /// [`SchedulerKind::with_thread_default`]; otherwise the compiled-in
    /// default — the calendar queue, unless the `reference-queue` feature
    /// selects the seed heap or `lane-scheduler` selects the lane-batched
    /// queue (`reference-queue` wins if both are enabled, so differential
    /// builds stay anchored to the seed).
    fn default() -> Self {
        THREAD_DEFAULT.with(std::cell::Cell::get).unwrap_or({
            if cfg!(feature = "reference-queue") {
                SchedulerKind::ReferenceHeap
            } else if cfg!(feature = "lane-scheduler") {
                SchedulerKind::LaneBatched
            } else {
                SchedulerKind::CalendarQueue
            }
        })
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Width of one wheel bucket. One picosecond: SFQ gate and wire delays
/// are a few picoseconds, so the events of one delivery burst spread over
/// a handful of buckets instead of piling into one.
const BUCKET_WIDTH_FS: u64 = 1_000;

/// Number of wheel buckets (must be a power of two for cheap indexing).
/// 4096 × 1 ps ≈ 4.1 ns of horizon — an order of magnitude more than the
/// 400 ps inter-operation gap of the register-file drivers, so overflow
/// migration is rare.
const NUM_BUCKETS: usize = 4096;

/// Words in the bucket-occupancy bitmap (one bit per wheel slot).
const OCC_WORDS: usize = NUM_BUCKETS / 64;

/// The bucketed calendar queue.
///
/// Buckets are unsorted `Vec`s in a fixed-size array (so the masked index
/// needs no bounds check), shadowed by an occupancy bitmap — one bit per
/// wheel slot. Popping *drains in batch*: the first occupied bucket is
/// found by a word-at-a-time bit scan (instead of probing empty `Vec`s
/// slot by slot across an operation gap), moved wholesale into a scratch
/// buffer, sorted once by the total event order (descending, so serving
/// pops from the tail), and then served event by event — `O(k log k)` per
/// k-event bucket instead of the `O(k²)` of a per-pop minimum scan.
/// Same-tick events pushed while the batch is being served merge into the
/// sorted buffer at their ordered position, so storage order never shows
/// through. Events whose bucket lies beyond the wheel horizon wait in
/// `overflow` (a small heap) and migrate inside the horizon before any
/// pop that could race them.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    buckets: Box<[Vec<Event>; NUM_BUCKETS]>,
    /// One bit per wheel slot: set iff the slot's bucket is non-empty.
    /// Slots empty only via the batch drain, which clears the bit.
    occupied: [u64; OCC_WORDS],
    /// Absolute tick (bucket-width multiple) of the cursor bucket. Never
    /// decreases; events are only pushed at or after the current
    /// simulation time, whose tick equals `cur_tick` after a pop.
    cur_tick: u64,
    /// Events currently seated in wheel buckets (excluding `drain`).
    in_wheel: usize,
    /// Far-future events (tick ≥ `cur_tick + NUM_BUCKETS` at push time).
    overflow: BinaryHeap<Reverse<Event>>,
    /// The bucket currently being served, sorted descending by key (the
    /// minimum at the tail). Every event in it has tick == `cur_tick`;
    /// all other pending events are at strictly later ticks, so the tail
    /// is always the global minimum.
    drain: Vec<Event>,
}

fn tick_of(ev: &Event) -> u64 {
    ev.time_fs() / BUCKET_WIDTH_FS
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            buckets: Box::new([const { Vec::new() }; NUM_BUCKETS]),
            occupied: [0; OCC_WORDS],
            cur_tick: 0,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            drain: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.in_wheel + self.overflow.len() + self.drain.len()
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        let tick = tick_of(&ev);
        if tick < self.cur_tick {
            // Only possible after a deadline-bounded run reseated a
            // popped event (advancing the cursor to it) and the caller
            // then injected an earlier stimulus. Rewinding the cursor
            // alone could alias buckets, so re-seat everything against
            // the rewound window. Rare, bounded by queue size, and
            // deterministic (ordering is carried by the event keys, not
            // by storage).
            self.rebuild_at(tick);
        }
        if tick == self.cur_tick && !self.drain.is_empty() {
            // The cursor bucket is mid-drain: merge the newcomer into the
            // sorted buffer at its ordered position (it can rank below
            // events not yet served — e.g. a zero-ish-delay wire to a
            // lower component id at the same instant).
            let at = self.drain.partition_point(|e| e.key() > ev.key());
            self.drain.insert(at, ev);
            return;
        }
        self.seat(ev);
    }

    /// Places an event relative to the current window.
    #[inline]
    fn seat(&mut self, ev: Event) {
        let tick = tick_of(&ev);
        debug_assert!(tick >= self.cur_tick, "event scheduled behind the cursor");
        if tick < self.cur_tick + NUM_BUCKETS as u64 {
            let slot = (tick as usize) & (NUM_BUCKETS - 1);
            self.buckets[slot].push(ev);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.in_wheel += 1;
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Drains every pending event (including a half-served drain buffer)
    /// and re-seats it against a window starting at `new_tick`.
    fn rebuild_at(&mut self, new_tick: u64) {
        let mut pending: Vec<Event> = Vec::with_capacity(self.len());
        pending.append(&mut self.drain);
        for bucket in self.buckets.iter_mut() {
            pending.append(bucket);
        }
        pending.extend(self.overflow.drain().map(|Reverse(ev)| ev));
        self.occupied = [0; OCC_WORDS];
        self.in_wheel = 0;
        self.cur_tick = new_tick;
        for ev in pending {
            self.seat(ev);
        }
    }

    /// Distance (in slots, `0..NUM_BUCKETS`) from the cursor slot to the
    /// first occupied slot, scanning the bitmap circularly a word at a
    /// time. Caller guarantees `in_wheel > 0`, so a set bit exists.
    #[inline]
    fn next_occupied_distance(&self, cur_slot: usize) -> usize {
        let word0 = cur_slot >> 6;
        // Mask off the bits below the cursor in its own word.
        let masked = self.occupied[word0] & (u64::MAX << (cur_slot & 63));
        if masked != 0 {
            return (word0 << 6 | masked.trailing_zeros() as usize) - cur_slot;
        }
        for i in 1..=OCC_WORDS {
            let w = (word0 + i) & (OCC_WORDS - 1);
            let bits = self.occupied[w];
            if bits != 0 {
                let slot = w << 6 | bits.trailing_zeros() as usize;
                return (slot + NUM_BUCKETS - cur_slot) & (NUM_BUCKETS - 1);
            }
        }
        unreachable!("in_wheel > 0 but the occupancy bitmap is empty");
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        // Serve the sorted batch first: its tail is the global minimum
        // (every other pending event sits at a strictly later tick).
        if let Some(ev) = self.drain.pop() {
            return Some(ev);
        }
        if self.len() == 0 {
            return None;
        }
        if self.in_wheel == 0 {
            // Jump the cursor straight to the earliest overflow event.
            let Reverse(next) = self.overflow.peek().expect("len > 0");
            self.cur_tick = tick_of(next);
        }
        // Seat every overflow event that now fits inside the horizon.
        // Each event migrates at most once, so this is amortised O(log n)
        // per event; afterwards every remaining overflow event is strictly
        // later than every wheel event, so the wheel alone decides the pop.
        while let Some(Reverse(ev)) = self.overflow.peek() {
            if tick_of(ev) >= self.cur_tick + NUM_BUCKETS as u64 {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            self.seat(ev);
        }
        // Jump to the first occupied bucket (bitmap scan, not a slot-by-
        // slot probe) and drain it in one batch: sorted descending, so
        // serving pops cheaply from the tail.
        let cur_slot = (self.cur_tick as usize) & (NUM_BUCKETS - 1);
        self.cur_tick += self.next_occupied_distance(cur_slot) as u64;
        let slot = (self.cur_tick as usize) & (NUM_BUCKETS - 1);
        let bucket = &mut self.buckets[slot];
        self.in_wheel -= bucket.len();
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        std::mem::swap(&mut self.drain, bucket);
        self.drain
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        Some(self.drain.pop().expect("bucket non-empty"))
    }
}

/// Width of one lane-batched wheel bucket: 16 ps. Wide enough that an
/// entire delivery burst (SFQ gate and wire delays are a few ps) lands in
/// one bucket and is served as a single sorted batch, instead of paying a
/// bucket transition per picosecond the way the 1 ps calendar wheel does.
const LB_BUCKET_WIDTH_FS: u64 = 16_000;

/// Number of lane-batched wheel buckets (power of two for cheap masking).
/// 256 × 16 ps ≈ 4.1 ns of horizon — the same span as the calendar
/// queue's 4096 × 1 ps, but the headers (256 `Vec`s + a 4-word bitmap)
/// fit in a few cache lines instead of ~100 KiB.
const LB_NUM_BUCKETS: usize = 256;

/// Words in the lane-batched occupancy bitmap.
const LB_OCC_WORDS: usize = LB_NUM_BUCKETS / 64;

/// Capacity of one per-cell self-echo lane. Deliveries that land inside
/// the horizon currently being served are parked on their target cell's
/// lane (bypassing the wheel); a burst deeper than this spills to the
/// shared insertion buffer. Public so the torture suite can aim
/// same-timestamp bursts exactly at the capacity boundary.
pub const LANE_CAPACITY: usize = 4;

/// One cell's self-echo lane: a fixed-capacity inline buffer.
#[derive(Debug, Clone, Copy)]
struct Lane {
    len: u8,
    slots: [Event; LANE_CAPACITY],
}

impl Lane {
    fn empty() -> Self {
        Lane {
            len: 0,
            slots: [Event::from_words(0, 0); LANE_CAPACITY],
        }
    }
}

/// The lane-batched horizon scheduler ("scheduler overhaul, part 2").
///
/// Three ideas on top of the calendar queue, all carried by the same
/// total event order `(time, component, seq)`:
///
/// 1. **Horizon batches.** The first occupied bucket of a small
///    L1-resident wheel is drained wholesale into `batch`, sorted
///    *ascending* once, and served through the `pos` cursor — a pop in
///    steady state is one bounds check and a cursor increment, no heap
///    sift, no bucket probe.
/// 2. **Self-echo lanes.** A push whose bucket tick equals the horizon
///    being served (the common case: a delivering cell emitting its
///    few-ps fan-out) never touches the wheel. It parks on the target
///    cell's fixed-capacity [`Lane`]; `active` remembers which lanes are
///    occupied.
/// 3. **Insertion buffer + lazy sort.** Lane spill (and lane-ineligible
///    in-horizon pushes) append to `fresh`. Nothing is ordered at push
///    time; only the *minimum* newcomer key is tracked (`horizon_min`,
///    one compare per push). Pops keep serving the batch directly while
///    its head ranks below every newcomer; only when the cursor crosses
///    `horizon_min` are the lanes flushed, sorted once, and linearly
///    merged with the unserved batch tail — so a dense burst pays one
///    sort+merge per time-crossing, not per pop.
///
/// # Invariants
///
/// * `batch[pos..]` is sorted ascending by [`Event::key`]; `batch[..pos]`
///   has already been served. `pos == batch.len()` only transiently —
///   the batch is cleared the moment the cursor reaches its end.
/// * Every event in `batch`, any lane, or `fresh` has bucket tick
///   `== cur_tick`; every event in a wheel bucket or `overflow` is at a
///   strictly later tick. Hence the head of the merged batch is always
///   the global minimum, and lane residency can never reorder anything:
///   ordering is re-established by the lazy sort before any pop.
/// * `len` counts *every* pending event wherever it is parked, so
///   [`SimStats`](crate::simulator::SimStats) peak-depth accounting is
///   byte-identical to the other schedulers.
/// * A push behind the cursor (deadline-bounded-run re-injection) rebuilds
///   the whole structure against the rewound window, exactly like the
///   calendar queue.
#[derive(Debug)]
pub(crate) struct LaneBatchedQueue {
    buckets: Box<[Vec<Event>; LB_NUM_BUCKETS]>,
    /// One bit per wheel slot: set iff the slot's bucket is non-empty.
    occupied: [u64; LB_OCC_WORDS],
    /// Absolute tick (bucket-width multiple) of the horizon being served.
    cur_tick: u64,
    /// Events currently seated in wheel buckets.
    in_wheel: usize,
    /// Far-future events (tick ≥ `cur_tick + LB_NUM_BUCKETS` at push time).
    overflow: BinaryHeap<Reverse<Event>>,
    /// The horizon batch, sorted ascending; served through `pos`.
    batch: Vec<Event>,
    /// Cursor into `batch`: next event to serve.
    pos: usize,
    /// Insertion buffer for in-horizon pushes that bypassed the wheel.
    fresh: Vec<Event>,
    /// Per-cell self-echo lanes, indexed by component id (grown on use).
    lanes: Vec<Lane>,
    /// Component ids whose lane is non-empty.
    active: Vec<u32>,
    /// The minimum packed key (see [`lb_key`]) across every event parked
    /// in a lane or `fresh`; `None` iff both are empty. Lets a pop decide
    /// "serve the batch head" vs "flush first" with one compare.
    horizon_min: Option<u128>,
    /// Merge scratch for [`flush_horizon`](Self::flush_horizon)
    /// (allocation recycled across flushes).
    scratch: Vec<Event>,
    /// Total pending events across batch, lanes, fresh, wheel, overflow.
    len: usize,
}

fn lb_tick_of(ev: &Event) -> u64 {
    ev.time_fs() / LB_BUCKET_WIDTH_FS
}

/// The total-order key of `ev`, packed into one `u128` for branchless
/// compares, valid only among events of the bucket starting at `base`
/// femtoseconds: time offset within the bucket (< 2^14) above the
/// event's `cs` word — which already packs component id over sequence
/// number in order (the 16-byte Event packing pays for itself here: the
/// key is one subtract, one shift, one or). Identical order to
/// [`Event::key`] within a bucket — which is the only scope the
/// lane-batched queue ever sorts or merges in; cross-bucket order is the
/// wheel's job.
#[inline]
fn lb_key(ev: &Event, base: u64) -> u128 {
    let dt = ev.time_fs() - base;
    debug_assert!(dt < LB_BUCKET_WIDTH_FS, "event outside its bucket");
    (u128::from(dt) << 64) | u128::from(ev.cs_word())
}

impl LaneBatchedQueue {
    fn new() -> Self {
        LaneBatchedQueue {
            buckets: Box::new([const { Vec::new() }; LB_NUM_BUCKETS]),
            occupied: [0; LB_OCC_WORDS],
            cur_tick: 0,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            batch: Vec::new(),
            pos: 0,
            fresh: Vec::new(),
            lanes: Vec::new(),
            active: Vec::new(),
            horizon_min: None,
            scratch: Vec::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// True while the current horizon still has unserved events parked in
    /// the batch, a lane, or the insertion buffer.
    #[inline]
    fn serving(&self) -> bool {
        self.pos < self.batch.len() || self.horizon_min.is_some()
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        self.len += 1;
        let tick = lb_tick_of(&ev);
        if tick == self.cur_tick && self.serving() {
            // In-horizon push: bypass the wheel. Park on the target
            // cell's self-echo lane, spilling to the shared insertion
            // buffer when the lane is full. Only the running minimum is
            // maintained — ordering happens lazily at flush time.
            let key = lb_key(&ev, self.cur_tick * LB_BUCKET_WIDTH_FS);
            if self.horizon_min.is_none_or(|m| key < m) {
                self.horizon_min = Some(key);
            }
            let c = ev.component_index();
            if c >= self.lanes.len() {
                self.lanes.resize_with(c + 1, Lane::empty);
            }
            let lane = &mut self.lanes[c];
            if (lane.len as usize) < LANE_CAPACITY {
                if lane.len == 0 {
                    self.active.push(c as u32);
                }
                lane.slots[lane.len as usize] = ev;
                lane.len += 1;
            } else {
                self.fresh.push(ev);
            }
            return;
        }
        if tick < self.cur_tick {
            // Same rare deadline-bounded-run pattern as the calendar
            // queue: re-seat everything against the rewound window.
            self.rebuild_at(tick);
        }
        self.seat(ev);
    }

    /// Places an event relative to the current window (wheel or overflow).
    #[inline]
    fn seat(&mut self, ev: Event) {
        let tick = lb_tick_of(&ev);
        debug_assert!(tick >= self.cur_tick, "event scheduled behind the cursor");
        if tick < self.cur_tick + LB_NUM_BUCKETS as u64 {
            let slot = (tick as usize) & (LB_NUM_BUCKETS - 1);
            self.buckets[slot].push(ev);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.in_wheel += 1;
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Drains every pending event — the unserved batch tail, lanes,
    /// insertion buffer, wheel, and overflow — and re-seats it against a
    /// window starting at `new_tick`.
    fn rebuild_at(&mut self, new_tick: u64) {
        let mut pending: Vec<Event> = Vec::with_capacity(self.len);
        pending.extend_from_slice(&self.batch[self.pos..]);
        self.batch.clear();
        self.pos = 0;
        pending.append(&mut self.fresh);
        for &c in &self.active {
            let lane = &mut self.lanes[c as usize];
            pending.extend_from_slice(&lane.slots[..lane.len as usize]);
            lane.len = 0;
        }
        self.active.clear();
        for bucket in self.buckets.iter_mut() {
            pending.append(bucket);
        }
        pending.extend(self.overflow.drain().map(|Reverse(ev)| ev));
        self.occupied = [0; LB_OCC_WORDS];
        self.in_wheel = 0;
        self.cur_tick = new_tick;
        self.horizon_min = None;
        for ev in pending {
            self.seat(ev);
        }
    }

    /// Flushes lanes and the insertion buffer into the unserved tail of
    /// the batch: one sort of the newcomers, then a linear merge with the
    /// tail (a pure `extend` when every newcomer ranks past it). Called
    /// only when the batch head has crossed `horizon_min`, so a dense
    /// burst pays one sort+merge per crossing, not per pop.
    fn flush_horizon(&mut self) {
        self.horizon_min = None;
        for &c in &self.active {
            let lane = &mut self.lanes[c as usize];
            self.fresh
                .extend_from_slice(&lane.slots[..lane.len as usize]);
            lane.len = 0;
        }
        self.active.clear();
        let base = self.cur_tick * LB_BUCKET_WIDTH_FS;
        self.fresh.sort_unstable_by_key(|e| lb_key(e, base));
        if self.pos == self.batch.len() {
            // Horizon batch already fully served: the newcomers *are* the
            // new batch (allocation recycled by the swap).
            debug_assert!(self.batch.is_empty() && self.pos == 0);
            std::mem::swap(&mut self.batch, &mut self.fresh);
            return;
        }
        if lb_key(&self.fresh[0], base) >= lb_key(&self.batch[self.batch.len() - 1], base) {
            self.batch.extend_from_slice(&self.fresh);
            self.fresh.clear();
            return;
        }
        // Newcomers rank inside the unserved tail (the flush trigger
        // guarantees at least one outranks the head). Merge the two
        // sorted runs into scratch and make it the new batch; the served
        // prefix `batch[..pos]` is dropped in the same move.
        self.scratch.clear();
        let tail = &self.batch[self.pos..];
        let new = &self.fresh[..];
        self.scratch.reserve(tail.len() + new.len());
        let (mut i, mut j) = (0, 0);
        while i < tail.len() && j < new.len() {
            if lb_key(&tail[i], base) <= lb_key(&new[j], base) {
                self.scratch.push(tail[i]);
                i += 1;
            } else {
                self.scratch.push(new[j]);
                j += 1;
            }
        }
        self.scratch.extend_from_slice(&tail[i..]);
        self.scratch.extend_from_slice(&new[j..]);
        self.fresh.clear();
        std::mem::swap(&mut self.batch, &mut self.scratch);
        self.scratch.clear();
        self.pos = 0;
    }

    /// Distance (in slots) from the cursor slot to the first occupied
    /// slot. Caller guarantees `in_wheel > 0`.
    #[inline]
    fn next_occupied_distance(&self, cur_slot: usize) -> usize {
        let word0 = cur_slot >> 6;
        let masked = self.occupied[word0] & (u64::MAX << (cur_slot & 63));
        if masked != 0 {
            return (word0 << 6 | masked.trailing_zeros() as usize) - cur_slot;
        }
        for i in 1..=LB_OCC_WORDS {
            let w = (word0 + i) & (LB_OCC_WORDS - 1);
            let bits = self.occupied[w];
            if bits != 0 {
                let slot = w << 6 | bits.trailing_zeros() as usize;
                return (slot + LB_NUM_BUCKETS - cur_slot) & (LB_NUM_BUCKETS - 1);
            }
        }
        unreachable!("in_wheel > 0 but the occupancy bitmap is empty");
    }

    /// Serves the next batch event — a bounds check and a cursor bump.
    /// Caller guarantees `pos < batch.len()`.
    #[inline]
    fn serve_batch(&mut self) -> Event {
        let ev = self.batch[self.pos];
        self.pos += 1;
        if self.pos == self.batch.len() {
            self.batch.clear();
            self.pos = 0;
        }
        self.len -= 1;
        ev
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        if let Some(min) = self.horizon_min {
            if self.pos < self.batch.len()
                && lb_key(&self.batch[self.pos], self.cur_tick * LB_BUCKET_WIDTH_FS) < min
            {
                // Steady state in a burst: the batch head still outranks
                // every parked newcomer — serve it without touching them.
                return Some(self.serve_batch());
            }
            // The cursor crossed the earliest newcomer (or the batch ran
            // out): order the newcomers now, in one sort + merge.
            self.flush_horizon();
            return Some(self.serve_batch());
        }
        if self.pos < self.batch.len() {
            return Some(self.serve_batch());
        }
        if self.len == 0 {
            return None;
        }
        // Horizon exhausted: advance the wheel to the next occupied
        // bucket (same migration discipline as the calendar queue).
        if self.in_wheel == 0 {
            let Reverse(next) = self.overflow.peek().expect("len > 0");
            self.cur_tick = lb_tick_of(next);
        }
        while let Some(Reverse(ev)) = self.overflow.peek() {
            if lb_tick_of(ev) >= self.cur_tick + LB_NUM_BUCKETS as u64 {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            self.seat(ev);
        }
        let cur_slot = (self.cur_tick as usize) & (LB_NUM_BUCKETS - 1);
        self.cur_tick += self.next_occupied_distance(cur_slot) as u64;
        let slot = (self.cur_tick as usize) & (LB_NUM_BUCKETS - 1);
        let bucket = &mut self.buckets[slot];
        self.in_wheel -= bucket.len();
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        // `batch` is empty here, so the swap recycles both allocations.
        std::mem::swap(&mut self.batch, bucket);
        let base = self.cur_tick * LB_BUCKET_WIDTH_FS;
        self.batch.sort_unstable_by_key(|e| lb_key(e, base));
        self.pos = 0;
        Some(self.serve_batch())
    }
}

/// The seed scheduler: a plain binary min-heap.
#[derive(Debug, Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Reverse<Event>>,
}

impl HeapQueue {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn push(&mut self, ev: Event) {
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

/// The scheduler actually owned by a simulator.
#[derive(Debug)]
pub(crate) enum Queue {
    Wheel(Box<CalendarQueue>),
    Heap(HeapQueue),
    Lane(Box<LaneBatchedQueue>),
}

impl Queue {
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::CalendarQueue => Queue::Wheel(Box::new(CalendarQueue::new())),
            SchedulerKind::ReferenceHeap => Queue::Heap(HeapQueue::default()),
            SchedulerKind::LaneBatched => Queue::Lane(Box::new(LaneBatchedQueue::new())),
        }
    }

    pub fn kind(&self) -> SchedulerKind {
        match self {
            Queue::Wheel(_) => SchedulerKind::CalendarQueue,
            Queue::Heap(_) => SchedulerKind::ReferenceHeap,
            Queue::Lane(_) => SchedulerKind::LaneBatched,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Queue::Wheel(q) => q.len(),
            Queue::Heap(q) => q.len(),
            Queue::Lane(q) => q.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn push(&mut self, ev: Event) {
        match self {
            Queue::Wheel(q) => q.push(ev),
            Queue::Heap(q) => q.push(ev),
            Queue::Lane(q) => q.push(ev),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<Event> {
        match self {
            Queue::Wheel(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
            Queue::Lane(q) => q.pop(),
        }
    }

    /// A cheap hint at the event most likely to pop next, used by the
    /// serve loop to software-prefetch the next delivery's slot and
    /// fan-out lines while the current delivery computes. The hint is
    /// free where the next event is already staged — the lane-batched
    /// queue's cursor-served sorted batch, the calendar queue's drain
    /// buffer, the heap's root — and deliberately approximate elsewhere:
    /// a `None` or a stale hint (e.g. a lane newcomer about to outrank
    /// the batch head) only costs a missed prefetch, never correctness.
    #[inline]
    pub fn peek_hint(&self) -> Option<&Event> {
        match self {
            Queue::Wheel(q) => q.drain.last(),
            Queue::Heap(q) => q.heap.peek().map(|Reverse(ev)| ev),
            Queue::Lane(q) => q.batch.get(q.pos),
        }
    }
}

/// Test-only scripting surface for the scheduler torture suite.
///
/// `Event` and `Queue` are crate-private on purpose — simulation code
/// must go through [`Simulator`](crate::simulator::Simulator) — but the
/// workspace-level `tests/scheduler_torture.rs` property suite needs to
/// drive *raw* push/pop interleavings (behind-cursor pushes, wheel
/// wrap-around, overflow migration, lane-capacity spills) that no
/// well-formed netlist can produce. This module is that escape hatch: a
/// replay driver over an opaque op script, exposing only the popped
/// `(time_fs, component, seq)` triples. Hidden from docs; not a stable
/// API.
#[doc(hidden)]
pub mod torture {
    use super::{Event, Queue, SchedulerKind};
    use crate::netlist::{ComponentId, Pin};
    use crate::time::Time;

    /// The lane-batched scheduler's bucket width, re-exported so the
    /// torture suite can aim events at bucket boundaries.
    pub const BUCKET_WIDTH_FS: u64 = super::LB_BUCKET_WIDTH_FS;
    /// The lane-batched scheduler's wheel span in buckets, re-exported so
    /// the torture suite can force wrap-around and overflow migration.
    pub const NUM_BUCKETS: u64 = super::LB_NUM_BUCKETS as u64;

    /// One scripted queue operation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Op {
        /// Push an event at `time_fs` targeting input pin 0 of
        /// `component`. Sequence numbers are assigned in script order.
        Push { time_fs: u64, component: u32 },
        /// Pop the current minimum; a pop on an empty queue is a no-op.
        Pop,
    }

    /// Builds an event at `time_fs` targeting input pin 0 of
    /// `component` — the single construction site shared by the replay
    /// driver, the queue unit tests, and the queue microbench, so a
    /// change to the `Event` packing is a one-site change for the whole
    /// test corpus.
    pub(crate) fn event(time_fs: u64, component: u32, seq: u64) -> Event {
        Event::new(
            Time::from_fs(time_fs),
            seq,
            Pin::new(ComponentId(component), 0),
        )
    }

    /// Replays `script` against a fresh queue of `kind` and returns every
    /// popped `(time_fs, component, seq)` triple — the scripted pops
    /// first, then a full drain. Two kinds replaying the same script must
    /// return identical vectors; that is the torture suite's oracle.
    pub fn replay(kind: SchedulerKind, script: &[Op]) -> Vec<(u64, u32, u64)> {
        let mut q = Queue::new(kind);
        let mut seq = 0u64;
        let mut out = Vec::new();
        let drain = |q: &mut Queue, out: &mut Vec<(u64, u32, u64)>, n: usize| {
            for _ in 0..n {
                let Some(ev) = q.pop() else { break };
                out.push((ev.time_fs(), ev.component_index() as u32, ev.seq()));
            }
        };
        for &op in script {
            match op {
                Op::Push { time_fs, component } => {
                    q.push(event(time_fs, component, seq));
                    seq += 1;
                }
                Op::Pop => drain(&mut q, &mut out, 1),
            }
        }
        drain(&mut q, &mut out, usize::MAX);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ps: f64, seq: u64, comp: u32) -> Event {
        torture::event(Time::from_ps(time_ps).as_fs(), comp, seq)
    }

    /// Drains a queue and returns the popped `(time, seq)` pairs.
    fn drain(q: &mut Queue) -> Vec<(Time, u64)> {
        std::iter::from_fn(|| q.pop())
            .map(|e| (e.time(), e.seq()))
            .collect()
    }

    #[test]
    fn event_packing_round_trips_every_field() {
        let pin = Pin::new(ComponentId((EVENT_COMPONENT_LIMIT - 1) as u32), 0xA5);
        let e = Event::new(
            Time::from_fs(EVENT_TIME_LIMIT_FS - 1),
            EVENT_SEQ_LIMIT - 1,
            pin,
        );
        assert_eq!(e.time_fs(), EVENT_TIME_LIMIT_FS - 1);
        assert_eq!(e.seq(), EVENT_SEQ_LIMIT - 1);
        assert_eq!(e.target(), pin);
        assert_eq!(e.pin(), 0xA5);
        assert_eq!(e.component_index() as u64, EVENT_COMPONENT_LIMIT - 1);
    }

    #[test]
    #[should_panic(expected = "56-bit packed window")]
    fn event_time_overflow_panics_with_widening_note() {
        let _ = Event::new(
            Time::from_fs(EVENT_TIME_LIMIT_FS),
            0,
            Pin::new(ComponentId(0), 0),
        );
    }

    #[test]
    #[should_panic(expected = "40-bit packed window")]
    fn event_seq_overflow_panics_with_widening_note() {
        let _ = Event::new(
            Time::from_fs(0),
            EVENT_SEQ_LIMIT,
            Pin::new(ComponentId(0), 0),
        );
    }

    #[test]
    #[should_panic(expected = "24-bit packed window")]
    fn event_component_overflow_panics_with_widening_note() {
        let pin = Pin::new(ComponentId(EVENT_COMPONENT_LIMIT as u32), 0);
        let _ = Event::new(Time::from_fs(0), 0, pin);
    }

    #[test]
    fn default_kind_tracks_the_feature() {
        let expect = if cfg!(feature = "reference-queue") {
            SchedulerKind::ReferenceHeap
        } else if cfg!(feature = "lane-scheduler") {
            SchedulerKind::LaneBatched
        } else {
            SchedulerKind::CalendarQueue
        };
        assert_eq!(SchedulerKind::default(), expect);
        assert_eq!(Queue::new(SchedulerKind::default()).kind(), expect);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("no-such-queue"), None);
    }

    #[test]
    fn thread_default_pins_and_restores() {
        let before = SchedulerKind::default();
        for kind in SchedulerKind::ALL {
            SchedulerKind::with_thread_default(kind, || {
                assert_eq!(SchedulerKind::default(), kind);
                assert_eq!(Queue::new(SchedulerKind::default()).kind(), kind);
            });
        }
        assert_eq!(SchedulerKind::default(), before);
    }

    #[test]
    fn all_queues_pop_in_identical_order() {
        // A mix of same-bucket, cross-bucket, and far-overflow events.
        let script = [
            ev(5.0, 0, 3),
            ev(5.0, 1, 1),
            ev(0.25, 2, 9),
            ev(0.75, 3, 9),
            ev(9_999.0, 4, 2), // beyond both wheel horizons
            ev(5.0, 5, 1),
            ev(4_100.0, 6, 0), // just past the horizons at push time
        ];
        let mut queues: Vec<Queue> = SchedulerKind::ALL.map(Queue::new).into();
        for e in script {
            for q in &mut queues {
                q.push(e);
            }
        }
        let reference = drain(&mut queues[0]);
        for q in &mut queues[1..] {
            assert_eq!(drain(q), reference, "{}", q.kind());
        }
    }

    #[test]
    fn same_time_same_component_pops_in_insertion_order() {
        for kind in SchedulerKind::ALL {
            let mut q = Queue::new(kind);
            q.push(ev(7.0, 10, 4));
            q.push(ev(7.0, 11, 4));
            q.push(ev(7.0, 12, 4));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq()).collect();
            assert_eq!(seqs, vec![10, 11, 12], "{kind}");
        }
    }

    #[test]
    fn same_time_ties_break_on_component_id_first() {
        for kind in SchedulerKind::ALL {
            let mut q = Queue::new(kind);
            // Inserted high-component first: component id outranks
            // insertion order at equal times.
            q.push(ev(7.0, 0, 9));
            q.push(ev(7.0, 1, 2));
            let comps: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| e.component_index() as u32)
                .collect();
            assert_eq!(comps, vec![2, 9], "{kind}");
        }
    }

    #[test]
    fn push_behind_cursor_rebuilds_correctly() {
        // The deadline-bounded-run pattern: pop advances the cursor, the
        // event is reseated, then an earlier stimulus arrives.
        for kind in SchedulerKind::ALL {
            let mut q = Queue::new(kind);
            q.push(ev(10.0, 0, 1));
            let reseat = q.pop().expect("pending");
            q.push(reseat);
            q.push(ev(4.0, 1, 1));
            q.push(ev(9_999.0, 2, 1)); // far event to exercise overflow re-seating
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq()).collect();
            assert_eq!(seqs, vec![1, 0, 2], "{kind}");
        }
    }

    #[test]
    fn lane_capacity_spill_keeps_total_order() {
        // Same-timestamp burst at one component, deeper than a lane:
        // the overflow spills to the insertion buffer, and the lazy
        // sort must still serve everything in seq order. The burst is
        // pushed mid-serve so the lane path (not the wheel) takes it.
        let mut q = Queue::new(SchedulerKind::LaneBatched);
        q.push(ev(1.0, 0, 5));
        q.push(ev(1.0, 1, 5));
        let first = q.pop().expect("pending");
        assert_eq!(first.seq(), 0);
        // Mid-serve: seq 1 is still unserved, so these park on lanes.
        for seq in 2..(2 + 2 * LANE_CAPACITY as u64) {
            q.push(ev(1.0, seq, 5));
        }
        // Lower component id at the same instant must jump the queue.
        q.push(ev(1.0, 99, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq()).collect();
        let mut expect = vec![99, 1];
        expect.extend(2..(2 + 2 * LANE_CAPACITY as u64));
        assert_eq!(order, expect);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Push/pop interleaving with a seeded pseudo-random script, the
        // way a running simulator uses the queue (pops advance time, new
        // pushes land at or after the popped time). The heap is the
        // oracle; every other scheduler must mirror it pop for pop.
        let mut rng = crate::rng::Rng64::new(0xD1FF);
        let mut heap = Queue::new(SchedulerKind::ReferenceHeap);
        let mut wheel = Queue::new(SchedulerKind::CalendarQueue);
        let mut lane = Queue::new(SchedulerKind::LaneBatched);
        let mut seq = 0u64;
        let mut now_fs = 0u64;
        let mut popped = Vec::new();
        for _ in 0..2_000 {
            if heap.is_empty() || rng.next_f64() < 0.6 {
                // Delays from sub-bucket to beyond-horizon scale.
                let delay_fs = [120, 500, 2_500, 40_000, 5_000_000][rng.next_below(5)]
                    + rng.next_below(997) as u64;
                let e = torture::event(now_fs + delay_fs, rng.next_below(7) as u32, seq);
                seq += 1;
                heap.push(e);
                wheel.push(e);
                lane.push(e);
            } else {
                let a = heap.pop().expect("non-empty");
                let b = wheel.pop().expect("mirrors heap");
                let c = lane.pop().expect("mirrors heap");
                assert_eq!(a, b);
                assert_eq!(a, c);
                now_fs = a.time_fs();
                popped.push(a);
            }
            assert_eq!(heap.len(), wheel.len());
            assert_eq!(heap.len(), lane.len());
        }
        let reference = drain(&mut heap);
        assert_eq!(drain(&mut wheel), reference);
        assert_eq!(drain(&mut lane), reference);
        assert!(popped.windows(2).all(|w| w[0].time() <= w[1].time()));
    }
}

#[cfg(test)]
mod bench {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn queue_only_throughput() {
        for kind in [
            SchedulerKind::CalendarQueue,
            SchedulerKind::LaneBatched,
            SchedulerKind::ReferenceHeap,
        ] {
            let mut q = Queue::new(kind);
            let n: u64 = 2_000_000;
            let t0 = Instant::now();
            let mut now_fs = 0u64;
            let mut seq = 0u64;
            // steady state: 1 in flight, 3ps hops
            q.push(torture::event(0, 0, 0));
            for _ in 0..n {
                let ev = q.pop().unwrap();
                now_fs = ev.time_fs();
                seq += 1;
                q.push(torture::event(
                    now_fs + 3_000,
                    ev.component_index() as u32,
                    seq,
                ));
            }
            let el = t0.elapsed();
            eprintln!(
                "{kind}: {:.1} ns/pop+push (1 in flight)",
                el.as_nanos() as f64 / n as f64
            );
            // deeper queue: 64 in flight
            let mut q = Queue::new(kind);
            for i in 0..64u64 {
                q.push(torture::event(i * 500, i as u32, i));
            }
            let t0 = Instant::now();
            for _ in 0..n {
                let ev = q.pop().unwrap();
                seq += 1;
                q.push(torture::event(
                    ev.time_fs() + 32_000,
                    ev.component_index() as u32,
                    seq,
                ));
            }
            let el = t0.elapsed();
            eprintln!(
                "{kind}: {:.1} ns/pop+push (64 in flight) now={now_fs}",
                el.as_nanos() as f64 / n as f64
            );
        }
    }
}
