//! Pending-event schedulers: the calendar queue and the reference heap.
//!
//! The simulator's hot loop is "pop the earliest pending event"; this
//! module provides two interchangeable implementations of that priority
//! queue:
//!
//! * `CalendarQueue` — a bucketed timing wheel (the default). Simulation
//!   time is divided into fixed-width picosecond buckets; pushing an event
//!   indexes straight into its bucket, popping scans forward from the
//!   current bucket. Events beyond the wheel's horizon wait in an overflow
//!   heap and migrate into the wheel as the cursor approaches them. For
//!   the pulse workloads here (many events clustered within a few
//!   picoseconds, operations hundreds of picoseconds apart) this replaces
//!   the `O(log n)` binary-heap sift with `O(1)` pushes and short bucket
//!   scans.
//! * `HeapQueue` — the seed `BinaryHeap` implementation, kept as the
//!   differential reference. The `reference-queue` cargo feature makes it
//!   the default scheduler of [`Simulator::new`](crate::simulator::Simulator::new);
//!   either way both implementations are always compiled, so equivalence
//!   tests can drive the same netlist through both in one process.
//!
//! # Determinism
//!
//! Both schedulers order events by the same fully-deterministic key
//! `(time, component id, sequence number)`:
//!
//! 1. earlier simulation time first;
//! 2. at equal times, the lower `ComponentId` first — simultaneous
//!    pulses deliver in netlist construction order, not in an accident of
//!    heap layout;
//! 3. at equal times on the same component, insertion order (the
//!    monotonically increasing per-simulator sequence number).
//!
//! The sequence number makes the key a *total* order, so "pop the
//! minimum" has exactly one answer regardless of how either queue stores
//! its pending events — which is what lets the calendar queue keep its
//! buckets unsorted and still replay the heap's schedule pulse for pulse.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::netlist::Pin;
use crate::time::Time;

/// A pending pulse delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    /// Delivery time.
    pub time: Time,
    /// Per-simulator insertion sequence number (unique).
    pub seq: u64,
    /// Input pin the pulse is delivered to.
    pub target: Pin,
}

impl Event {
    /// The total ordering key: `(time, component id, sequence)`.
    fn key(&self) -> (Time, crate::netlist::ComponentId, u64) {
        (self.time, self.target.component, self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Which pending-event scheduler a [`Simulator`](crate::simulator::Simulator)
/// runs on. Both produce byte-identical schedules (see the module docs);
/// they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Bucketed calendar queue / timing wheel (the fast path).
    CalendarQueue,
    /// The seed `BinaryHeap` scheduler (the differential reference).
    ReferenceHeap,
}

impl SchedulerKind {
    /// Both schedulers, reference first — the order differential tests
    /// iterate.
    pub const ALL: [SchedulerKind; 2] =
        [SchedulerKind::ReferenceHeap, SchedulerKind::CalendarQueue];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::CalendarQueue => "calendar-queue",
            SchedulerKind::ReferenceHeap => "reference-heap",
        }
    }
}

impl Default for SchedulerKind {
    /// The compiled-in default: the calendar queue, unless the
    /// `reference-queue` feature selects the seed heap.
    fn default() -> Self {
        if cfg!(feature = "reference-queue") {
            SchedulerKind::ReferenceHeap
        } else {
            SchedulerKind::CalendarQueue
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Width of one wheel bucket. One picosecond: SFQ gate and wire delays
/// are a few picoseconds, so the events of one delivery burst spread over
/// a handful of buckets instead of piling into one.
const BUCKET_WIDTH_FS: u64 = 1_000;

/// Number of wheel buckets (must be a power of two for cheap indexing).
/// 4096 × 1 ps ≈ 4.1 ns of horizon — an order of magnitude more than the
/// 400 ps inter-operation gap of the register-file drivers, so overflow
/// migration is rare.
const NUM_BUCKETS: usize = 4096;

/// Words in the bucket-occupancy bitmap (one bit per wheel slot).
const OCC_WORDS: usize = NUM_BUCKETS / 64;

/// The bucketed calendar queue.
///
/// Buckets are unsorted `Vec`s in a fixed-size array (so the masked index
/// needs no bounds check), shadowed by an occupancy bitmap — one bit per
/// wheel slot. Popping *drains in batch*: the first occupied bucket is
/// found by a word-at-a-time bit scan (instead of probing empty `Vec`s
/// slot by slot across an operation gap), moved wholesale into a scratch
/// buffer, sorted once by the total event order (descending, so serving
/// pops from the tail), and then served event by event — `O(k log k)` per
/// k-event bucket instead of the `O(k²)` of a per-pop minimum scan.
/// Same-tick events pushed while the batch is being served merge into the
/// sorted buffer at their ordered position, so storage order never shows
/// through. Events whose bucket lies beyond the wheel horizon wait in
/// `overflow` (a small heap) and migrate inside the horizon before any
/// pop that could race them.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    buckets: Box<[Vec<Event>; NUM_BUCKETS]>,
    /// One bit per wheel slot: set iff the slot's bucket is non-empty.
    /// Slots empty only via the batch drain, which clears the bit.
    occupied: [u64; OCC_WORDS],
    /// Absolute tick (bucket-width multiple) of the cursor bucket. Never
    /// decreases; events are only pushed at or after the current
    /// simulation time, whose tick equals `cur_tick` after a pop.
    cur_tick: u64,
    /// Events currently seated in wheel buckets (excluding `drain`).
    in_wheel: usize,
    /// Far-future events (tick ≥ `cur_tick + NUM_BUCKETS` at push time).
    overflow: BinaryHeap<Reverse<Event>>,
    /// The bucket currently being served, sorted descending by key (the
    /// minimum at the tail). Every event in it has tick == `cur_tick`;
    /// all other pending events are at strictly later ticks, so the tail
    /// is always the global minimum.
    drain: Vec<Event>,
}

fn tick_of(ev: &Event) -> u64 {
    ev.time.as_fs() / BUCKET_WIDTH_FS
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            buckets: Box::new([const { Vec::new() }; NUM_BUCKETS]),
            occupied: [0; OCC_WORDS],
            cur_tick: 0,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            drain: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.in_wheel + self.overflow.len() + self.drain.len()
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        let tick = tick_of(&ev);
        if tick < self.cur_tick {
            // Only possible after a deadline-bounded run reseated a
            // popped event (advancing the cursor to it) and the caller
            // then injected an earlier stimulus. Rewinding the cursor
            // alone could alias buckets, so re-seat everything against
            // the rewound window. Rare, bounded by queue size, and
            // deterministic (ordering is carried by the event keys, not
            // by storage).
            self.rebuild_at(tick);
        }
        if tick == self.cur_tick && !self.drain.is_empty() {
            // The cursor bucket is mid-drain: merge the newcomer into the
            // sorted buffer at its ordered position (it can rank below
            // events not yet served — e.g. a zero-ish-delay wire to a
            // lower component id at the same instant).
            let at = self.drain.partition_point(|e| e.key() > ev.key());
            self.drain.insert(at, ev);
            return;
        }
        self.seat(ev);
    }

    /// Places an event relative to the current window.
    #[inline]
    fn seat(&mut self, ev: Event) {
        let tick = tick_of(&ev);
        debug_assert!(tick >= self.cur_tick, "event scheduled behind the cursor");
        if tick < self.cur_tick + NUM_BUCKETS as u64 {
            let slot = (tick as usize) & (NUM_BUCKETS - 1);
            self.buckets[slot].push(ev);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.in_wheel += 1;
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Drains every pending event (including a half-served drain buffer)
    /// and re-seats it against a window starting at `new_tick`.
    fn rebuild_at(&mut self, new_tick: u64) {
        let mut pending: Vec<Event> = Vec::with_capacity(self.len());
        pending.append(&mut self.drain);
        for bucket in self.buckets.iter_mut() {
            pending.append(bucket);
        }
        pending.extend(self.overflow.drain().map(|Reverse(ev)| ev));
        self.occupied = [0; OCC_WORDS];
        self.in_wheel = 0;
        self.cur_tick = new_tick;
        for ev in pending {
            self.seat(ev);
        }
    }

    /// Distance (in slots, `0..NUM_BUCKETS`) from the cursor slot to the
    /// first occupied slot, scanning the bitmap circularly a word at a
    /// time. Caller guarantees `in_wheel > 0`, so a set bit exists.
    #[inline]
    fn next_occupied_distance(&self, cur_slot: usize) -> usize {
        let word0 = cur_slot >> 6;
        // Mask off the bits below the cursor in its own word.
        let masked = self.occupied[word0] & (u64::MAX << (cur_slot & 63));
        if masked != 0 {
            return (word0 << 6 | masked.trailing_zeros() as usize) - cur_slot;
        }
        for i in 1..=OCC_WORDS {
            let w = (word0 + i) & (OCC_WORDS - 1);
            let bits = self.occupied[w];
            if bits != 0 {
                let slot = w << 6 | bits.trailing_zeros() as usize;
                return (slot + NUM_BUCKETS - cur_slot) & (NUM_BUCKETS - 1);
            }
        }
        unreachable!("in_wheel > 0 but the occupancy bitmap is empty");
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        // Serve the sorted batch first: its tail is the global minimum
        // (every other pending event sits at a strictly later tick).
        if let Some(ev) = self.drain.pop() {
            return Some(ev);
        }
        if self.len() == 0 {
            return None;
        }
        if self.in_wheel == 0 {
            // Jump the cursor straight to the earliest overflow event.
            let Reverse(next) = self.overflow.peek().expect("len > 0");
            self.cur_tick = tick_of(next);
        }
        // Seat every overflow event that now fits inside the horizon.
        // Each event migrates at most once, so this is amortised O(log n)
        // per event; afterwards every remaining overflow event is strictly
        // later than every wheel event, so the wheel alone decides the pop.
        while let Some(Reverse(ev)) = self.overflow.peek() {
            if tick_of(ev) >= self.cur_tick + NUM_BUCKETS as u64 {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            self.seat(ev);
        }
        // Jump to the first occupied bucket (bitmap scan, not a slot-by-
        // slot probe) and drain it in one batch: sorted descending, so
        // serving pops cheaply from the tail.
        let cur_slot = (self.cur_tick as usize) & (NUM_BUCKETS - 1);
        self.cur_tick += self.next_occupied_distance(cur_slot) as u64;
        let slot = (self.cur_tick as usize) & (NUM_BUCKETS - 1);
        let bucket = &mut self.buckets[slot];
        self.in_wheel -= bucket.len();
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        std::mem::swap(&mut self.drain, bucket);
        self.drain
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        Some(self.drain.pop().expect("bucket non-empty"))
    }
}

/// The seed scheduler: a plain binary min-heap.
#[derive(Debug, Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Reverse<Event>>,
}

impl HeapQueue {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn push(&mut self, ev: Event) {
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

/// The scheduler actually owned by a simulator.
#[derive(Debug)]
pub(crate) enum Queue {
    Wheel(Box<CalendarQueue>),
    Heap(HeapQueue),
}

impl Queue {
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::CalendarQueue => Queue::Wheel(Box::new(CalendarQueue::new())),
            SchedulerKind::ReferenceHeap => Queue::Heap(HeapQueue::default()),
        }
    }

    pub fn kind(&self) -> SchedulerKind {
        match self {
            Queue::Wheel(_) => SchedulerKind::CalendarQueue,
            Queue::Heap(_) => SchedulerKind::ReferenceHeap,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Queue::Wheel(q) => q.len(),
            Queue::Heap(q) => q.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push(&mut self, ev: Event) {
        match self {
            Queue::Wheel(q) => q.push(ev),
            Queue::Heap(q) => q.push(ev),
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        match self {
            Queue::Wheel(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ComponentId;

    fn ev(time_ps: f64, seq: u64, comp: u32) -> Event {
        Event {
            time: Time::from_ps(time_ps),
            seq,
            target: Pin::new(ComponentId(comp), 0),
        }
    }

    /// Drains a queue and returns the popped `(time, seq)` pairs.
    fn drain(q: &mut Queue) -> Vec<(Time, u64)> {
        std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect()
    }

    #[test]
    fn default_kind_tracks_the_feature() {
        let expect = if cfg!(feature = "reference-queue") {
            SchedulerKind::ReferenceHeap
        } else {
            SchedulerKind::CalendarQueue
        };
        assert_eq!(SchedulerKind::default(), expect);
        assert_eq!(Queue::new(SchedulerKind::default()).kind(), expect);
    }

    #[test]
    fn both_queues_pop_in_identical_order() {
        // A mix of same-bucket, cross-bucket, and far-overflow events.
        let script = [
            ev(5.0, 0, 3),
            ev(5.0, 1, 1),
            ev(0.25, 2, 9),
            ev(0.75, 3, 9),
            ev(9_999.0, 4, 2), // beyond the wheel horizon
            ev(5.0, 5, 1),
            ev(4_100.0, 6, 0), // just past the horizon at push time
        ];
        let mut wheel = Queue::new(SchedulerKind::CalendarQueue);
        let mut heap = Queue::new(SchedulerKind::ReferenceHeap);
        for e in script {
            wheel.push(e);
            heap.push(e);
        }
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }

    #[test]
    fn same_time_same_component_pops_in_insertion_order() {
        for kind in SchedulerKind::ALL {
            let mut q = Queue::new(kind);
            q.push(ev(7.0, 10, 4));
            q.push(ev(7.0, 11, 4));
            q.push(ev(7.0, 12, 4));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            assert_eq!(seqs, vec![10, 11, 12], "{kind}");
        }
    }

    #[test]
    fn same_time_ties_break_on_component_id_first() {
        for kind in SchedulerKind::ALL {
            let mut q = Queue::new(kind);
            // Inserted high-component first: component id outranks
            // insertion order at equal times.
            q.push(ev(7.0, 0, 9));
            q.push(ev(7.0, 1, 2));
            let comps: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| e.target.component.index() as u32)
                .collect();
            assert_eq!(comps, vec![2, 9], "{kind}");
        }
    }

    #[test]
    fn push_behind_cursor_rebuilds_correctly() {
        // The deadline-bounded-run pattern: pop advances the cursor, the
        // event is reseated, then an earlier stimulus arrives.
        let mut q = Queue::new(SchedulerKind::CalendarQueue);
        q.push(ev(10.0, 0, 1));
        let reseat = q.pop().expect("pending");
        q.push(reseat);
        q.push(ev(4.0, 1, 1));
        q.push(ev(9_999.0, 2, 1)); // far event to exercise overflow re-seating
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 0, 2]);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Push/pop interleaving with a seeded pseudo-random script, the
        // way a running simulator uses the queue (pops advance time, new
        // pushes land at or after the popped time).
        let mut rng = crate::rng::Rng64::new(0xD1FF);
        let mut wheel = Queue::new(SchedulerKind::CalendarQueue);
        let mut heap = Queue::new(SchedulerKind::ReferenceHeap);
        let mut seq = 0u64;
        let mut now_fs = 0u64;
        let mut popped = Vec::new();
        for _ in 0..2_000 {
            if wheel.is_empty() || rng.next_f64() < 0.6 {
                // Delays from sub-bucket to beyond-horizon scale.
                let delay_fs = [120, 500, 2_500, 40_000, 5_000_000][rng.next_below(5)]
                    + rng.next_below(997) as u64;
                let e = Event {
                    time: Time::from_fs(now_fs + delay_fs),
                    seq,
                    target: Pin::new(ComponentId(rng.next_below(7) as u32), 0),
                };
                seq += 1;
                wheel.push(e);
                heap.push(e);
            } else {
                let a = wheel.pop().expect("non-empty");
                let b = heap.pop().expect("mirrors wheel");
                assert_eq!(a, b);
                now_fs = a.time.as_fs();
                popped.push(a);
            }
            assert_eq!(wheel.len(), heap.len());
        }
        assert_eq!(drain(&mut wheel), drain(&mut heap));
        assert!(popped.windows(2).all(|w| w[0].time <= w[1].time));
    }
}

#[cfg(test)]
mod bench {
    use super::*;
    use crate::netlist::ComponentId;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn queue_only_throughput() {
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::ReferenceHeap] {
            let mut q = Queue::new(kind);
            let n: u64 = 2_000_000;
            let t0 = Instant::now();
            let mut now_fs = 0u64;
            let mut seq = 0u64;
            // steady state: 1 in flight, 3ps hops
            q.push(Event {
                time: Time::from_fs(0),
                seq: 0,
                target: Pin::new(ComponentId(0), 0),
            });
            for _ in 0..n {
                let ev = q.pop().unwrap();
                now_fs = ev.time.as_fs();
                seq += 1;
                q.push(Event {
                    time: Time::from_fs(now_fs + 3_000),
                    seq,
                    target: ev.target,
                });
            }
            let el = t0.elapsed();
            eprintln!(
                "{kind}: {:.1} ns/pop+push (1 in flight)",
                el.as_nanos() as f64 / n as f64
            );
            // deeper queue: 64 in flight
            let mut q = Queue::new(kind);
            for i in 0..64u64 {
                q.push(Event {
                    time: Time::from_fs(i * 500),
                    seq: i,
                    target: Pin::new(ComponentId(i as u32), 0),
                });
            }
            let t0 = Instant::now();
            for _ in 0..n {
                let ev = q.pop().unwrap();
                seq += 1;
                q.push(Event {
                    time: Time::from_fs(ev.time.as_fs() + 32_000),
                    seq,
                    target: ev.target,
                });
            }
            let el = t0.elapsed();
            eprintln!(
                "{kind}: {:.1} ns/pop+push (64 in flight) now={now_fs}",
                el.as_nanos() as f64 / n as f64
            );
        }
    }
}
