//! Pulse traces and ASCII waveform rendering.
//!
//! A [`PulseTrace`] is the record of pulses observed at one probe point.
//! [`render_waveforms`] draws a set of traces as an ASCII timing diagram,
//! which the `repro timing` harness uses to regenerate the paper's control
//! timing figures (Figs. 8, 11, 12).

use std::fmt::Write as _;

use crate::time::{Duration, Time};

/// A labeled sequence of pulse timestamps (monotonically non-decreasing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseTrace {
    label: String,
    pulses: Vec<Time>,
}

impl PulseTrace {
    /// Creates an empty trace.
    pub fn new(label: impl Into<String>) -> Self {
        PulseTrace {
            label: label.into(),
            pulses: Vec::new(),
        }
    }

    /// The trace label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a pulse at `at`.
    pub fn record(&mut self, at: Time) {
        self.pulses.push(at);
        // Probes can observe pulses scheduled out of order within the same
        // delivery batch; keep the trace sorted for consumers.
        let n = self.pulses.len();
        if n >= 2 && self.pulses[n - 2] > self.pulses[n - 1] {
            self.pulses.sort();
        }
    }

    /// Number of pulses recorded.
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// Returns `true` if no pulses were recorded.
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// The recorded pulse times.
    pub fn pulses(&self) -> &[Time] {
        &self.pulses
    }

    /// Pulses that fall in the half-open window `[from, to)`.
    pub fn pulses_in(&self, from: Time, to: Time) -> impl Iterator<Item = Time> + '_ {
        self.pulses
            .iter()
            .copied()
            .filter(move |&t| t >= from && t < to)
    }

    /// Number of pulses in `[from, to)`.
    pub fn count_in(&self, from: Time, to: Time) -> usize {
        self.pulses_in(from, to).count()
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.pulses.clear();
    }
}

/// Renders traces as an ASCII timing diagram.
///
/// Each output row is `label |..|....|..` where `|` marks a pulse and `.` a
/// quiet time bin of width `bin`. The diagram spans from `start` for `bins`
/// bins.
///
/// # Examples
///
/// ```
/// use sfq_sim::time::{Duration, Time};
/// use sfq_sim::trace::{render_waveforms, PulseTrace};
///
/// let mut t = PulseTrace::new("REN");
/// t.record(Time::from_ps(10.0));
/// let art = render_waveforms(&[t], Time::ZERO, Duration::from_ps(5.0), 4);
/// assert!(art.contains("REN"));
/// ```
pub fn render_waveforms(traces: &[PulseTrace], start: Time, bin: Duration, bins: usize) -> String {
    let label_w = traces
        .iter()
        .map(|t| t.label().len())
        .max()
        .unwrap_or(0)
        .max(4);
    let mut out = String::new();
    // Time ruler.
    let _ = write!(out, "{:>label_w$} ", "t/ps");
    for b in 0..bins {
        let t = start + bin.times(b as u64);
        if b % 10 == 0 {
            let s = format!("{:<10}", format!("{:.0}", t.as_ps()));
            out.push_str(&s[..s.len().min(10.min(bins - b))]);
        }
    }
    out.push('\n');
    for tr in traces {
        let _ = write!(out, "{:>label_w$} ", tr.label());
        for b in 0..bins {
            let lo = start + bin.times(b as u64);
            let hi = lo + bin;
            let n = tr.count_in(lo, hi);
            out.push(match n {
                0 => '.',
                1 => '|',
                2 => '2',
                3 => '3',
                _ => '*',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = PulseTrace::new("x");
        t.record(Time::from_ps(1.0));
        t.record(Time::from_ps(5.0));
        t.record(Time::from_ps(9.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count_in(Time::ZERO, Time::from_ps(6.0)), 2);
        assert_eq!(t.count_in(Time::from_ps(5.0), Time::from_ps(5.1)), 1);
    }

    #[test]
    fn out_of_order_records_are_sorted() {
        let mut t = PulseTrace::new("x");
        t.record(Time::from_ps(5.0));
        t.record(Time::from_ps(1.0));
        assert_eq!(t.pulses(), &[Time::from_ps(1.0), Time::from_ps(5.0)]);
    }

    #[test]
    fn waveform_marks_pulse_bins() {
        let mut t = PulseTrace::new("CLK");
        t.record(Time::from_ps(0.0));
        t.record(Time::from_ps(10.0));
        t.record(Time::from_ps(10.5));
        let art = render_waveforms(&[t], Time::ZERO, Duration::from_ps(5.0), 3);
        let line = art.lines().nth(1).unwrap();
        // bin 0 has one pulse, bin 1 none, bin 2 two pulses.
        assert!(line.ends_with("|.2"), "got {line:?}");
    }

    #[test]
    fn empty_trace_renders_quiet() {
        let t = PulseTrace::new("W");
        let art = render_waveforms(&[t], Time::ZERO, Duration::from_ps(1.0), 5);
        assert!(art.lines().nth(1).unwrap().ends_with("....."));
    }
}
