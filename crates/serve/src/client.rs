//! Blocking client helpers: submit, poll, drain.
//!
//! Used by the CLI, the `repro serve` smoke section, and the integration
//! tests — one implementation of the polling/backoff etiquette the server
//! expects (honouring `Retry-After` on `429`).

use std::io;
use std::time::{Duration, Instant};

use crate::http::{roundtrip, roundtrip_with_headers};
use crate::json::Json;

fn parse_body(body: &str) -> io::Result<Json> {
    Json::parse(body).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad response JSON: {e}"),
        )
    })
}

/// `GET /healthz`, parsed.
pub fn health(addr: &str) -> io::Result<Json> {
    let (status, body) = roundtrip(addr, "GET", "/healthz", None)?;
    if status != 200 {
        return Err(io::Error::other(format!("healthz returned {status}")));
    }
    parse_body(&body)
}

/// Polls `/healthz` until the server answers or the timeout elapses.
pub fn wait_healthy(addr: &str, timeout_ms: u64) -> io::Result<Json> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        match health(addr) {
            Ok(h) => return Ok(h),
            Err(e) if Instant::now() >= deadline => {
                return Err(io::Error::other(format!(
                    "server at {addr} not healthy within {timeout_ms} ms: {e}"
                )))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Submits a job spec. Returns the HTTP status and parsed body — callers
/// distinguish `200` (cached), `202` (queued), `429` (backpressure).
pub fn submit(addr: &str, spec: &str) -> io::Result<(u16, Json)> {
    let (status, body) = roundtrip(addr, "POST", "/jobs", Some(spec))?;
    Ok((status, parse_body(&body)?))
}

/// Submits with bounded retry on `429`, honouring `Retry-After`.
pub fn submit_with_backoff(addr: &str, spec: &str, max_tries: u32) -> io::Result<(u16, Json)> {
    let mut tries = 0;
    loop {
        let (status, headers, body) = roundtrip_with_headers(addr, "POST", "/jobs", Some(spec))?;
        tries += 1;
        if status != 429 || tries >= max_tries {
            return Ok((status, parse_body(&body)?));
        }
        let retry_after_ms = headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .map_or(100, |s| s * 1000);
        std::thread::sleep(Duration::from_millis(retry_after_ms.min(1000)));
    }
}

/// Fetches one job's status document.
pub fn job_status(addr: &str, id: u64) -> io::Result<Json> {
    let (status, body) = roundtrip(addr, "GET", &format!("/jobs/{id}"), None)?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "job {id} returned {status}: {body}"
        )));
    }
    parse_body(&body)
}

/// Polls a job until it is `done` or `failed` (either is a valid terminal
/// state — the caller inspects the document). Errors on timeout.
pub fn wait_for_job(addr: &str, id: u64, timeout_ms: u64) -> io::Result<Json> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        let doc = job_status(addr, id)?;
        match doc.get("status").and_then(Json::as_str) {
            Some("done") | Some("failed") => return Ok(doc),
            _ if Instant::now() >= deadline => {
                return Err(io::Error::other(format!(
                    "job {id} not terminal within {timeout_ms} ms"
                )))
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// `POST /drain`: blocks until the server has finished all admitted work
/// and is about to exit.
pub fn drain(addr: &str) -> io::Result<Json> {
    let (status, body) = roundtrip(addr, "POST", "/drain", None)?;
    if status != 200 {
        return Err(io::Error::other(format!("drain returned {status}: {body}")));
    }
    parse_body(&body)
}
