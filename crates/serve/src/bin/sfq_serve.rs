//! `sfq-serve` — run or talk to the simulation job server.
//!
//! ```text
//! sfq-serve run    --wal PATH [--addr 127.0.0.1:0] [--workers N]
//!                  [--queue-cap N] [--max-attempts N] [--backoff-ms N]
//!                  [--deadline-ms N] [--shard-delay-ms N] [--addr-file PATH]
//! sfq-serve submit --addr HOST:PORT --spec JSON
//! sfq-serve wait   --addr HOST:PORT --id N [--timeout-ms N]
//! sfq-serve health --addr HOST:PORT
//! sfq-serve drain  --addr HOST:PORT
//! ```
//!
//! `run` serves until a drain completes (`POST /drain` or `sfq-serve
//! drain`); `--addr-file` publishes the actual bound address, which is how
//! scripts cope with ephemeral ports.

use std::process::ExitCode;

use sfq_serve::{client, Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sfq-serve run --wal PATH [--addr A] [--workers N] [--queue-cap N]\n             \
         [--max-attempts N] [--backoff-ms N] [--deadline-ms N]\n             \
         [--shard-delay-ms N] [--addr-file PATH]\n  \
         sfq-serve submit --addr A --spec JSON\n  \
         sfq-serve wait --addr A --id N [--timeout-ms N]\n  \
         sfq-serve health --addr A\n  \
         sfq-serve drain --addr A"
    );
    ExitCode::from(2)
}

/// Pulls `--name value` out of the argument list; errors on unknowns.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags(pairs))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be a number")),
        }
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (name, _) in &self.0 {
            if !allowed.contains(&name.as_str()) {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(())
    }
}

fn run_server(flags: &Flags) -> Result<(), String> {
    flags.reject_unknown(&[
        "wal",
        "addr",
        "workers",
        "queue-cap",
        "max-attempts",
        "backoff-ms",
        "deadline-ms",
        "shard-delay-ms",
        "addr-file",
    ])?;
    let wal = flags.get("wal").ok_or("run requires --wal PATH")?;
    let mut config = ServerConfig::new(wal);
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.to_string();
    }
    config.workers = flags.num("workers", 2)? as usize;
    config.queue_cap = flags.num("queue-cap", 16)? as usize;
    config.policy.max_attempts = flags.num("max-attempts", 3)? as u32;
    config.policy.backoff_ms = flags.num("backoff-ms", 10)?;
    config.policy.shard_deadline_ms = flags.num("deadline-ms", 60_000)?;
    config.policy.shard_delay_ms = flags.num("shard-delay-ms", 0)?;
    config.addr_file = flags.get("addr-file").map(Into::into);

    let server = Server::start(config).map_err(|e| format!("start failed: {e}"))?;
    eprintln!("sfq-serve listening on {}", server.addr());
    server.join();
    eprintln!("sfq-serve drained, exiting");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    let flags = match Flags::parse(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let outcome: Result<(), String> = match command {
        "run" => run_server(&flags),
        "submit" => flags.reject_unknown(&["addr", "spec"]).and_then(|()| {
            let addr = flags.get("addr").ok_or("submit requires --addr")?;
            let spec = flags.get("spec").ok_or("submit requires --spec")?;
            let (status, body) = client::submit(addr, spec).map_err(|e| e.to_string())?;
            println!("{body}");
            if status < 400 {
                Ok(())
            } else {
                Err(format!("server answered {status}"))
            }
        }),
        "wait" => flags
            .reject_unknown(&["addr", "id", "timeout-ms"])
            .and_then(|()| {
                let addr = flags.get("addr").ok_or("wait requires --addr")?;
                let id = flags
                    .get("id")
                    .ok_or("wait requires --id")?
                    .parse::<u64>()
                    .map_err(|_| "--id must be a number".to_string())?;
                let timeout = flags.num("timeout-ms", 120_000)?;
                let doc = client::wait_for_job(addr, id, timeout).map_err(|e| e.to_string())?;
                println!("{doc}");
                match doc.get("status").and_then(sfq_serve::Json::as_str) {
                    Some("done") => Ok(()),
                    other => Err(format!("job ended as {other:?}")),
                }
            }),
        "health" => flags.reject_unknown(&["addr"]).and_then(|()| {
            let addr = flags.get("addr").ok_or("health requires --addr")?;
            let doc = client::health(addr).map_err(|e| e.to_string())?;
            println!("{doc}");
            Ok(())
        }),
        "drain" => flags.reject_unknown(&["addr"]).and_then(|()| {
            let addr = flags.get("addr").ok_or("drain requires --addr")?;
            let doc = client::drain(addr).map_err(|e| e.to_string())?;
            println!("{doc}");
            Ok(())
        }),
        _ => {
            return usage();
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
