//! Minimal JSON value, parser, and writer.
//!
//! The workspace builds offline (no `serde`), so the job server carries
//! its own small JSON layer. Two properties matter more than speed here:
//!
//! * **Deterministic serialisation** — objects keep insertion order and
//!   numbers render via Rust's shortest-round-trip `f64` formatting, so
//!   serialising the same value twice produces the same bytes. The WAL
//!   checksums and the content-addressed cache keys depend on it.
//! * **Lossless `u64`s** — seeds and digests exceed the 2^53 window JSON
//!   numbers round-trip exactly; [`Json::u64`] stores large values as
//!   decimal strings and [`Json::as_u64`] accepts either form.

use std::fmt;

/// A JSON value. Objects preserve insertion order (they are association
/// lists, not maps), which keeps serialisation deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from a `u64`, losslessly: values above 2^53 are
    /// stored as decimal strings (see [`Json::as_u64`]).
    pub fn u64(v: u64) -> Json {
        if v <= (1u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`: an integral non-negative number, or a decimal
    /// (optionally `0x`-prefixed hex) string — the forms [`Json::u64`] and
    /// callers write.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            Json::Str(s) => {
                if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                }
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat("{")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact serialisation. Deterministic: object order is insertion
    /// order and floats use Rust's shortest-round-trip formatting.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; the engines never produce them,
                    // but render defensively rather than emit garbage.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"hi\n\"there\""}"#;
        let v = Json::parse(text).expect("parses");
        let re = Json::parse(&v.to_string()).expect("re-parses");
        assert_eq!(v, re);
    }

    #[test]
    fn serialisation_is_deterministic() {
        let v = Json::obj(vec![
            ("z", Json::Num(1.5)),
            ("a", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        assert_eq!(v.to_string(), v.clone().to_string());
        assert_eq!(v.to_string(), r#"{"z":1.5,"a":[false,null]}"#);
    }

    #[test]
    fn u64_round_trips_losslessly() {
        for v in [0u64, 1, 1 << 53, u64::MAX, 0xC0FF_EE00] {
            let j = Json::u64(v);
            let parsed = Json::parse(&j.to_string()).expect("parses");
            assert_eq!(parsed.as_u64(), Some(v), "{v}");
        }
        assert_eq!(Json::parse("\"0x1f\"").unwrap().as_u64(), Some(31));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn errors_carry_positions() {
        let e = Json::parse("{\"a\" 1}").expect_err("bad object");
        assert!(e.at > 0, "{e}");
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"n":4,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
