//! # sfq-serve — fault-tolerant sim-as-a-service for the HiPerRF engines
//!
//! A std-only HTTP/JSON job server that runs the repository's simulation
//! engines (`simulate` / `margins` / `yield` / `cosim` / `lint`) against
//! any registered design, built to *survive* rather than merely run:
//!
//! - **Crash safety** ([`wal`]): every accepted job and every completed
//!   shard is appended to a checksummed, fsynced JSONL write-ahead log.
//!   `kill -9` mid-batch loses at most the shard in flight; restart
//!   replays the journal and resumes from the last durable shard with a
//!   final digest bit-identical to an uninterrupted run (shards are pure
//!   functions of `(spec, shard index)` via `Rng64::fork`).
//! - **Supervision** ([`supervisor`]): shards run on dedicated threads
//!   with `catch_unwind` panic containment, per-attempt deadlines, and
//!   bounded exponential-backoff retry — a poisoned shard fails its job,
//!   never the process.
//! - **Backpressure** ([`server`]): admission is a bounded queue; a full
//!   queue answers `429` with a `Retry-After` hint, and `POST /drain`
//!   stops admission and completes in-flight work before exit.
//! - **Content-addressed caching** ([`cache`]): results are keyed on the
//!   elaborated-netlist digest plus canonical params and seed, so a
//!   repeated identical job is served with zero new simulation events.
//!
//! ```no_run
//! use sfq_serve::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::new("/tmp/jobs.wal")).unwrap();
//! let addr = server.addr().to_string();
//! let (status, body) =
//!     sfq_serve::client::submit(&addr, r#"{"kind":"lint","design":"hiperrf"}"#).unwrap();
//! assert_eq!(status, 202);
//! # let _ = body;
//! server.drain_and_join();
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod json;
pub mod server;
pub mod supervisor;
pub mod wal;

pub use cache::ResultCache;
pub use job::{JobKind, JobSpec};
pub use json::Json;
pub use server::{Server, ServerConfig};
pub use supervisor::SupervisorPolicy;
pub use wal::Wal;
