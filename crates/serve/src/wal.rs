//! Crash-safe write-ahead journal: checksummed JSONL with torn-tail
//! recovery.
//!
//! Every record is one line: a 16-hex-digit FNV-1a 64 checksum of the
//! record's JSON bytes, one space, the JSON, `\n`. [`Wal::append`] writes
//! the line and fsyncs (`sync_data`) before returning, so a record the
//! caller saw acknowledged survives `kill -9` and power loss (to the
//! extent the filesystem honours fsync).
//!
//! [`Wal::open`] replays an existing journal. A *torn tail* — the file
//! ends mid-line because the process died inside a write — is expected
//! and silently healed: the incomplete or checksum-failing suffix is
//! dropped and the file truncated back to the last durable record. A
//! corrupt line with valid records *after* it is a different story (bit
//! rot, concurrent writers) and is reported as an error rather than
//! silently skipped.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use hiperrf::hashing::fnv64;

use crate::json::Json;

/// What [`Wal::open`] found in an existing journal.
#[derive(Debug)]
pub struct Recovery {
    /// Every durable record, in append order.
    pub records: Vec<Json>,
    /// Bytes of torn tail dropped (0 on a clean journal).
    pub torn_bytes: u64,
}

/// An append-only, fsynced journal of JSON records.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

/// Validates one complete line (without its `\n`); returns the record.
fn parse_line(line: &[u8]) -> Option<Json> {
    if line.len() < 18 || line[16] != b' ' {
        return None;
    }
    let sum_text = std::str::from_utf8(&line[..16]).ok()?;
    let sum = u64::from_str_radix(sum_text, 16).ok()?;
    let body = &line[17..];
    if fnv64(body) != sum {
        return None;
    }
    Json::parse(std::str::from_utf8(body).ok()?).ok()
}

impl Wal {
    /// Opens (creating if missing) the journal at `path`, replays its
    /// records, and heals a torn tail by truncating it away.
    ///
    /// # Errors
    ///
    /// I/O errors, and `InvalidData` when a corrupt line is followed by
    /// valid records (mid-file corruption is not a crash signature).
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Wal, Recovery)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut durable_end = 0usize; // byte offset just past the last good line
        let mut cursor = 0usize;
        let mut bad_at: Option<usize> = None;
        while cursor < bytes.len() {
            let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') else {
                // Incomplete final line: torn tail.
                bad_at.get_or_insert(cursor);
                break;
            };
            let line = &bytes[cursor..cursor + nl];
            match parse_line(line) {
                Some(record) => {
                    if let Some(bad) = bad_at {
                        // A valid record after a bad line: real corruption.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "WAL {}: corrupt record at byte {} followed by valid records",
                                path.display(),
                                bad
                            ),
                        ));
                    }
                    records.push(record);
                    durable_end = cursor + nl + 1;
                }
                None => {
                    bad_at.get_or_insert(cursor);
                }
            }
            cursor += nl + 1;
        }

        let torn_bytes = (bytes.len() - durable_end) as u64;
        if torn_bytes > 0 {
            file.set_len(durable_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal { file, path },
            Recovery {
                records,
                torn_bytes,
            },
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably: the line is written, flushed, and
    /// fsynced before this returns. A record acknowledged here is replayed
    /// after any crash.
    pub fn append(&mut self, record: &Json) -> io::Result<()> {
        let body = record.to_string();
        let line = format!("{:016x} {body}\n", fnv64(body.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sfq-serve-waltest-{name}-{}", std::process::id()));
        p
    }

    fn record(i: u64) -> Json {
        Json::obj(vec![("t", Json::str("test")), ("i", Json::u64(i))])
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, rec) = Wal::open(&path).expect("open fresh");
            assert!(rec.records.is_empty());
            for i in 0..5 {
                wal.append(&record(i)).expect("append");
            }
        }
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.records.len(), 5);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.get("i").and_then(Json::as_u64), Some(i as u64));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(&record(0)).expect("append");
            wal.append(&record(1)).expect("append");
        }
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 3]).expect("tear");
        let (mut wal, rec) = Wal::open(&path).expect("recover");
        assert_eq!(rec.records.len(), 1, "torn record dropped");
        assert_eq!(rec.torn_bytes as usize, full.len() / 2 - 3);
        // The journal is healed: appending after recovery yields a clean
        // two-record file again.
        wal.append(&record(7)).expect("append after heal");
        drop(wal);
        let (_, rec) = Wal::open(&path).expect("reopen");
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1].get("i").and_then(Json::as_u64), Some(7));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_skip() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(&record(0)).expect("append");
            wal.append(&record(1)).expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[20] ^= 0xFF; // flip a byte inside the first record
        std::fs::write(&path, &bytes).expect("corrupt");
        let err = Wal::open(&path).expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
