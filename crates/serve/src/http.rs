//! Minimal std-only HTTP/1.1 framing.
//!
//! Just enough of the protocol for a localhost JSON API: one request per
//! connection (`Connection: close`), `Content-Length` bodies, no chunked
//! encoding, no keep-alive. Headers are size-capped so a misbehaving
//! client cannot balloon server memory.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the header block we will buffer.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path with query string stripped.
    pub path: String,
    /// Raw body bytes as UTF-8 (empty when absent).
    pub body: String,
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Reads and parses one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the handful of statuses this server uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response. `extra_headers` are `name: value` pairs (used
/// for `Retry-After` on backpressure).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Client side: sends one request, returns `(status, body)`.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8(response).map_err(|_| bad("non-UTF-8 response"))?;
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| bad("no response head"))?;
    let status_line = text.lines().next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    Ok((status, text[head_end + 4..].to_string()))
}

/// Lowercased `(name, value)` header pairs from a response head.
pub type HeaderList = Vec<(String, String)>;

/// Extracts a header value from a raw response head (client-side helper
/// for asserting on `Retry-After`).
pub fn roundtrip_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, HeaderList, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8(response).map_err(|_| bad("non-UTF-8 response"))?;
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| bad("no response head"))?;
    let mut lines = text[..head_end].lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|l| {
            l.split_once(':')
                .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok((status, headers, text[head_end + 4..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_and_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let req = read_request(&mut stream).expect("parse");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.body, r#"{"kind":"lint"}"#);
            write_response(
                &mut stream,
                202,
                &[("retry-after", "1".to_string())],
                r#"{"id":1}"#,
            )
            .expect("respond");
        });
        let (status, headers, body) =
            roundtrip_with_headers(&addr, "POST", "/jobs?x=1", Some(r#"{"kind":"lint"}"#))
                .expect("roundtrip");
        assert_eq!(status, 202);
        assert_eq!(body, r#"{"id":1}"#);
        assert!(headers.iter().any(|(n, v)| n == "retry-after" && v == "1"));
        server.join().expect("server thread");
    }
}
