//! The job server: admission control, WAL-backed execution, recovery.
//!
//! ## Lifecycle of a job
//!
//! 1. **Admission** (`POST /jobs`, under one mutex): parse + validate the
//!    spec, compute its content key, and check the cache — a hit returns
//!    `200` with the stored result and *zero* new simulation work. A miss
//!    checks queue capacity: a full queue returns `429` with a
//!    `Retry-After` hint (backpressure, not an error); otherwise the job
//!    record is appended to the WAL **before** the client sees `202` —
//!    *accepted means durable*.
//! 2. **Execution**: a worker thread claims the job and runs its shards
//!    in order through the supervisor (panic containment, deadlines,
//!    bounded retry). Each completed shard is WAL-appended and fsynced
//!    before the next starts, so a crash loses at most the shard in
//!    flight.
//! 3. **Completion**: all shard results reduce through
//!    [`crate::job::finalize`]; a `done` record with the content digest is
//!    journalled and the result enters the cache.
//!
//! ## Recovery
//!
//! On startup the WAL is replayed: finished jobs are re-finalised from
//! their journalled shards (and the stored digest cross-checked — a
//! mismatch marks the job failed rather than serving wrong bytes),
//! unfinished jobs are re-queued with their completed shards intact, and
//! execution resumes *from the next shard*. Because every shard is a pure
//! function of `(spec, shard index)`, the resumed job's final digest is
//! bit-identical to an uninterrupted run's.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hiperrf::hashing::{design_digest, digest_hex};

use crate::http::{read_request, write_response, Request};
use crate::job::{design_slug, finalize, Chaos, JobSpec};
use crate::json::Json;
use crate::supervisor::{run_supervised, SupervisorPolicy};
use crate::wal::Wal;
use crate::ResultCache;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Journal path; created if missing, replayed if present.
    pub wal_path: PathBuf,
    /// Worker threads (each owns one job at a time).
    pub workers: usize,
    /// Max queued (not yet running) jobs before `429`.
    pub queue_cap: usize,
    /// Shard retry/timeout policy.
    pub policy: SupervisorPolicy,
    /// If set, the actual bound address is written here (for port 0).
    pub addr_file: Option<PathBuf>,
}

impl ServerConfig {
    /// Defaults: loopback on an ephemeral port, two workers, queue of 16.
    pub fn new(wal_path: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            wal_path: wal_path.into(),
            workers: 2,
            queue_cap: 16,
            policy: SupervisorPolicy::default(),
            addr_file: None,
        }
    }
}

/// Where a job is in its life.
#[derive(Debug, Clone, PartialEq)]
enum JobStatus {
    Queued,
    Running,
    Done(crate::job::Finished),
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One admitted job.
#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    key: u64,
    shards: BTreeMap<u32, Json>,
    status: JobStatus,
}

/// Mutable server state, guarded by one mutex (admission, WAL appends,
/// and status transitions all serialise through it — correctness over
/// throughput; the expensive work happens outside the lock).
struct Core {
    wal: Wal,
    jobs: BTreeMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    cache: ResultCache,
    next_id: u64,
    draining: bool,
    active: usize,
    digests: std::collections::HashMap<(&'static str, usize, usize), u64>,
    shards_executed: u64,
    shards_replayed: u64,
    jobs_resumed: u64,
    torn_bytes: u64,
}

struct Shared {
    state: Mutex<Core>,
    work_cv: Condvar,
    idle_cv: Condvar,
    exit: AtomicBool,
    addr: SocketAddr,
}

/// A running server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

fn wal_job_record(id: u64, spec: &JobSpec, key: u64) -> Json {
    let mut fields = vec![
        ("t", Json::str("job")),
        ("id", Json::u64(id)),
        ("key", Json::str(digest_hex(key))),
        ("spec", spec.canonical()),
    ];
    if let Some(chaos) = spec.chaos {
        fields.push((
            "chaos",
            Json::obj(vec![
                ("shard", Json::u64(u64::from(chaos.shard))),
                ("fail_attempts", Json::u64(u64::from(chaos.fail_attempts))),
            ]),
        ));
    }
    Json::obj(fields)
}

impl Core {
    /// Memoised elaborated-netlist digest for a spec's (design, geometry).
    fn netlist_digest(&mut self, spec: &JobSpec) -> u64 {
        let k = (design_slug(spec.design), spec.registers, spec.width);
        if let Some(&d) = self.digests.get(&k) {
            return d;
        }
        let d = design_digest(spec.design, spec.geometry().expect("validated"));
        self.digests.insert(k, d);
        d
    }

    /// Rebuilds jobs/cache/queue from replayed WAL records.
    fn replay(&mut self, records: &[Json]) -> Result<(), String> {
        let mut done_digests: BTreeMap<u64, u64> = BTreeMap::new();
        let mut failures: BTreeMap<u64, String> = BTreeMap::new();
        for r in records {
            let t = r
                .get("t")
                .and_then(Json::as_str)
                .ok_or("record missing `t`")?;
            let id = r
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("record missing `id`")?;
            match t {
                "job" => {
                    let spec_json = r.get("spec").ok_or("job record missing `spec`")?;
                    let mut spec =
                        JobSpec::from_canonical(spec_json).map_err(|e| format!("job {id}: {e}"))?;
                    if let Some(c) = r.get("chaos") {
                        spec.chaos = Some(Chaos {
                            shard: c.get("shard").and_then(Json::as_u64).unwrap_or(0) as u32,
                            fail_attempts: c
                                .get("fail_attempts")
                                .and_then(Json::as_u64)
                                .unwrap_or(0) as u32,
                        });
                    }
                    let key = r
                        .get("key")
                        .and_then(Json::as_str)
                        .and_then(hiperrf::hashing::parse_digest_hex)
                        .ok_or_else(|| format!("job {id}: bad key"))?;
                    self.jobs.insert(
                        id,
                        JobRecord {
                            spec,
                            key,
                            shards: BTreeMap::new(),
                            status: JobStatus::Queued,
                        },
                    );
                    self.next_id = self.next_id.max(id + 1);
                }
                "shard" => {
                    let shard =
                        r.get("shard")
                            .and_then(Json::as_u64)
                            .ok_or("shard record missing index")? as u32;
                    let result = r
                        .get("result")
                        .ok_or("shard record missing result")?
                        .clone();
                    let job = self
                        .jobs
                        .get_mut(&id)
                        .ok_or_else(|| format!("shard for unknown job {id}"))?;
                    // Idempotent: a shard journalled twice (crash between
                    // append and ack) still counts once.
                    if job.shards.insert(shard, result).is_none() {
                        self.shards_replayed += 1;
                    }
                }
                "done" => {
                    let digest = r
                        .get("digest")
                        .and_then(Json::as_str)
                        .and_then(hiperrf::hashing::parse_digest_hex)
                        .ok_or_else(|| format!("done record for job {id}: bad digest"))?;
                    done_digests.insert(id, digest);
                }
                "failed" => {
                    let error = r
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown failure")
                        .to_string();
                    failures.insert(id, error);
                }
                other => return Err(format!("unknown WAL record type `{other}`")),
            }
        }
        // Settle final states in id order.
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            if let Some(error) = failures.get(&id) {
                self.jobs.get_mut(&id).expect("present").status = JobStatus::Failed(error.clone());
                continue;
            }
            if let Some(&digest) = done_digests.get(&id) {
                let job = self.jobs.get_mut(&id).expect("present");
                let shards: Vec<Json> = job.shards.values().cloned().collect();
                match finalize(&job.spec, &shards) {
                    Ok(fin) if fin.digest == digest => {
                        self.cache.insert(job.key, fin.clone());
                        job.status = JobStatus::Done(fin);
                    }
                    Ok(fin) => {
                        job.status = JobStatus::Failed(format!(
                            "replay digest mismatch: journal {} vs recomputed {}",
                            digest_hex(digest),
                            digest_hex(fin.digest)
                        ));
                    }
                    Err(e) => {
                        job.status = JobStatus::Failed(format!("replay finalise failed: {e}"));
                    }
                }
                continue;
            }
            // Unfinished: resume. Already durable, so capacity does not
            // apply — these were admitted before the crash.
            self.queue.push_back(id);
            self.jobs_resumed += 1;
        }
        Ok(())
    }

    fn job_json(&self, id: u64, job: &JobRecord) -> Json {
        let mut fields = vec![
            ("id", Json::u64(id)),
            ("status", Json::str(job.status.name())),
            ("kind", Json::str(job.spec.kind.name())),
            ("design", Json::str(design_slug(job.spec.design))),
            ("key", Json::str(digest_hex(job.key))),
            ("shards_total", Json::u64(u64::from(job.spec.shard_count()))),
            ("shards_done", Json::u64(job.shards.len() as u64)),
        ];
        match &job.status {
            JobStatus::Done(fin) => fields.push(("result", fin.result.clone())),
            JobStatus::Failed(e) => fields.push(("error", Json::str(e.clone()))),
            _ => {}
        }
        Json::obj(fields)
    }

    fn health_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("draining", Json::Bool(self.draining)),
            ("queue_depth", Json::u64(self.queue.len() as u64)),
            ("active", Json::u64(self.active as u64)),
            ("jobs", Json::u64(self.jobs.len() as u64)),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::u64(self.cache.len() as u64)),
                    ("hits", Json::u64(self.cache.hits())),
                    ("misses", Json::u64(self.cache.misses())),
                ]),
            ),
            ("shards_executed", Json::u64(self.shards_executed)),
            ("shards_replayed", Json::u64(self.shards_replayed)),
            ("jobs_resumed", Json::u64(self.jobs_resumed)),
            ("wal_torn_bytes", Json::u64(self.torn_bytes)),
        ])
    }
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::str(message))]).to_string()
}

impl Server {
    /// Binds, replays the WAL (resuming unfinished jobs), and spawns the
    /// accept loop plus worker threads.
    ///
    /// # Errors
    ///
    /// Bind/WAL I/O errors, and `InvalidData` for an unreplayable journal.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (wal, recovery) = Wal::open(&config.wal_path)?;
        let mut core = Core {
            wal,
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            cache: ResultCache::new(),
            next_id: 1,
            draining: false,
            active: 0,
            digests: std::collections::HashMap::new(),
            shards_executed: 0,
            shards_replayed: 0,
            jobs_resumed: 0,
            torn_bytes: recovery.torn_bytes,
        };
        core.replay(&recovery.records)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if let Some(path) = &config.addr_file {
            std::fs::write(path, addr.to_string())?;
        }

        let shared = Arc::new(Shared {
            state: Mutex::new(core),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            exit: AtomicBool::new(false),
            addr,
        });

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let policy = config.policy;
                std::thread::spawn(move || worker_loop(&shared, &policy))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let queue_cap = config.queue_cap;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.exit.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || handle_connection(stream, &conn_shared, queue_cap));
            }
        });

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server exits (a drain request completed). Worker
    /// and accept threads are joined.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Initiates drain from the hosting process (same as `POST /drain`)
    /// and waits for it to finish.
    pub fn drain_and_join(self) {
        drain_wait(&self.shared);
        release_accept_loop(&self.shared);
        self.join();
    }
}

/// Marks the server draining and waits for the queue and workers to
/// empty. Does *not* stop the listener — the caller decides when (the
/// HTTP drain handler must write its response first).
fn drain_wait(shared: &Shared) {
    let mut core = shared.state.lock().expect("state lock");
    core.draining = true;
    shared.work_cv.notify_all();
    while !core.queue.is_empty() || core.active > 0 {
        core = shared.idle_cv.wait(core).expect("idle wait");
    }
}

/// Flags the accept loop to exit and unblocks it with a throwaway
/// connection.
fn release_accept_loop(shared: &Shared) {
    shared.exit.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.addr);
}

/// One worker: claim a queued job, run its missing shards through the
/// supervisor, journal each result, finalise.
fn worker_loop(shared: &Shared, policy: &SupervisorPolicy) {
    loop {
        let (id, spec, todo) = {
            let mut core = shared.state.lock().expect("state lock");
            loop {
                if let Some(id) = core.queue.pop_front() {
                    core.active += 1;
                    let job = core.jobs.get_mut(&id).expect("queued job exists");
                    job.status = JobStatus::Running;
                    let spec = job.spec.clone();
                    let total = spec.shard_count();
                    let todo: Vec<u32> =
                        (0..total).filter(|s| !job.shards.contains_key(s)).collect();
                    break (id, spec, todo);
                }
                if core.draining {
                    return;
                }
                core = shared.work_cv.wait(core).expect("work wait");
            }
        };

        let mut failed = false;
        for shard in todo {
            match run_supervised(&spec, shard, policy) {
                Ok(result) => {
                    let mut core = shared.state.lock().expect("state lock");
                    let record = Json::obj(vec![
                        ("t", Json::str("shard")),
                        ("id", Json::u64(id)),
                        ("shard", Json::u64(u64::from(shard))),
                        ("result", result.clone()),
                    ]);
                    if let Err(e) = core.wal.append(&record) {
                        let job = core.jobs.get_mut(&id).expect("job exists");
                        job.status = JobStatus::Failed(format!("journal write failed: {e}"));
                        failed = true;
                        break;
                    }
                    core.shards_executed += 1;
                    core.jobs
                        .get_mut(&id)
                        .expect("job exists")
                        .shards
                        .insert(shard, result);
                }
                Err(e) => {
                    let mut core = shared.state.lock().expect("state lock");
                    let record = Json::obj(vec![
                        ("t", Json::str("failed")),
                        ("id", Json::u64(id)),
                        ("error", Json::str(e.to_string())),
                    ]);
                    let _ = core.wal.append(&record);
                    core.jobs.get_mut(&id).expect("job exists").status =
                        JobStatus::Failed(e.to_string());
                    failed = true;
                    break;
                }
            }
        }

        if !failed {
            let mut core = shared.state.lock().expect("state lock");
            let job = core.jobs.get_mut(&id).expect("job exists");
            let shards: Vec<Json> = job.shards.values().cloned().collect();
            match finalize(&job.spec, &shards) {
                Ok(fin) => {
                    let record = Json::obj(vec![
                        ("t", Json::str("done")),
                        ("id", Json::u64(id)),
                        ("digest", Json::str(digest_hex(fin.digest))),
                    ]);
                    match core.wal.append(&record) {
                        Ok(()) => {
                            let key = core.jobs.get(&id).expect("job exists").key;
                            core.cache.insert(key, fin.clone());
                            core.jobs.get_mut(&id).expect("job exists").status =
                                JobStatus::Done(fin);
                        }
                        Err(e) => {
                            core.jobs.get_mut(&id).expect("job exists").status =
                                JobStatus::Failed(format!("journal write failed: {e}"));
                        }
                    }
                }
                Err(e) => {
                    let record = Json::obj(vec![
                        ("t", Json::str("failed")),
                        ("id", Json::u64(id)),
                        ("error", Json::str(e.clone())),
                    ]);
                    let _ = core.wal.append(&record);
                    core.jobs.get_mut(&id).expect("job exists").status = JobStatus::Failed(e);
                }
            }
        }

        let mut core = shared.state.lock().expect("state lock");
        core.active -= 1;
        if core.queue.is_empty() && core.active == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

/// Routes one HTTP connection.
fn handle_connection(mut stream: TcpStream, shared: &Shared, queue_cap: usize) {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &[], &error_body(&e.to_string()));
            return;
        }
    };
    // Drain is special: finish all admitted work, answer the client, and
    // only then release the accept loop — otherwise the process can exit
    // before the response bytes leave the socket.
    if request.method == "POST" && request.path == "/drain" {
        drain_wait(shared);
        let body = {
            let core = shared.state.lock().expect("state lock");
            Json::obj(vec![
                ("drained", Json::Bool(true)),
                ("jobs", Json::u64(core.jobs.len() as u64)),
            ])
            .to_string()
        };
        let _ = write_response(&mut stream, 200, &[], &body);
        release_accept_loop(shared);
        return;
    }
    let (status, headers, body) = route(&request, shared, queue_cap);
    let _ = write_response(&mut stream, status, &headers, &body);
}

fn route(
    request: &Request,
    shared: &Shared,
    queue_cap: usize,
) -> (u16, Vec<(&'static str, String)>, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let core = shared.state.lock().expect("state lock");
            (200, vec![], core.health_json().to_string())
        }
        ("GET", "/jobs") => {
            let core = shared.state.lock().expect("state lock");
            let list: Vec<Json> = core
                .jobs
                .iter()
                .map(|(&id, job)| core.job_json(id, job))
                .collect();
            (
                200,
                vec![],
                Json::obj(vec![("jobs", Json::Arr(list))]).to_string(),
            )
        }
        ("GET", path) if path.starts_with("/jobs/") => {
            let Ok(id) = path["/jobs/".len()..].parse::<u64>() else {
                return (400, vec![], error_body("bad job id"));
            };
            let core = shared.state.lock().expect("state lock");
            match core.jobs.get(&id) {
                Some(job) => (200, vec![], core.job_json(id, job).to_string()),
                None => (404, vec![], error_body("no such job")),
            }
        }
        ("POST", "/jobs") => submit(&request.body, shared, queue_cap),
        ("GET", _) | ("POST", _) => (404, vec![], error_body("no such endpoint")),
        _ => (405, vec![], error_body("method not allowed")),
    }
}

/// Admission: cache check, capacity check, durable append — one lock.
fn submit(
    body: &str,
    shared: &Shared,
    queue_cap: usize,
) -> (u16, Vec<(&'static str, String)>, String) {
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, vec![], error_body(&format!("bad JSON: {e}"))),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return (400, vec![], error_body(&e)),
    };

    let mut core = shared.state.lock().expect("state lock");
    if core.draining {
        return (503, vec![], error_body("server is draining"));
    }
    let nd = core.netlist_digest(&spec);
    let key = spec.cache_key(nd);
    if let Some(fin) = core.cache.lookup(key) {
        let body = Json::obj(vec![
            ("status", Json::str("cached")),
            ("key", Json::str(digest_hex(key))),
            ("result", fin.result),
        ])
        .to_string();
        return (200, vec![], body);
    }
    if core.queue.len() >= queue_cap {
        // Backpressure: hint a retry after roughly one queue turn.
        return (
            429,
            vec![("retry-after", "1".to_string())],
            error_body("queue full, retry later"),
        );
    }
    let id = core.next_id;
    core.next_id += 1;
    if let Err(e) = core.wal.append(&wal_job_record(id, &spec, key)) {
        return (
            500,
            vec![],
            error_body(&format!("journal write failed: {e}")),
        );
    }
    let shards_total = spec.shard_count();
    core.jobs.insert(
        id,
        JobRecord {
            spec,
            key,
            shards: BTreeMap::new(),
            status: JobStatus::Queued,
        },
    );
    core.queue.push_back(id);
    shared.work_cv.notify_one();
    let body = Json::obj(vec![
        ("id", Json::u64(id)),
        ("status", Json::str("queued")),
        ("key", Json::str(digest_hex(key))),
        ("shards_total", Json::u64(u64::from(shards_total))),
    ])
    .to_string();
    (202, vec![], body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_wal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sfq-serve-srvtest-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn start_submit_complete_and_cache_round_trip() {
        let wal = tmp_wal("roundtrip");
        let _ = std::fs::remove_file(&wal);
        let server = Server::start(ServerConfig::new(&wal)).expect("start");
        let addr = server.addr().to_string();

        let spec = r#"{"kind":"lint","design":"hiperrf"}"#;
        let (status, body) =
            crate::http::roundtrip(&addr, "POST", "/jobs", Some(spec)).expect("submit");
        assert_eq!(status, 202, "body: {body}");
        let id = Json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Json::as_u64)
            .expect("id");

        let result = crate::client::wait_for_job(&addr, id, 30_000).expect("completes");
        assert_eq!(result.get("status").and_then(Json::as_str), Some("done"));
        let digest = result
            .get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str)
            .expect("digest")
            .to_string();

        // Identical resubmission: served from cache, no new job id.
        let (status, body) =
            crate::http::roundtrip(&addr, "POST", "/jobs", Some(spec)).expect("resubmit");
        assert_eq!(status, 200, "body: {body}");
        let cached = Json::parse(&body).unwrap();
        assert_eq!(cached.get("status").and_then(Json::as_str), Some("cached"));
        assert_eq!(
            cached
                .get("result")
                .and_then(|r| r.get("digest"))
                .and_then(Json::as_str),
            Some(digest.as_str())
        );

        let (status, body) = crate::http::roundtrip(&addr, "POST", "/drain", None).expect("drain");
        assert_eq!(status, 200, "body: {body}");
        server.join();
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn invalid_specs_are_rejected_not_queued() {
        let wal = tmp_wal("badspec");
        let _ = std::fs::remove_file(&wal);
        let server = Server::start(ServerConfig::new(&wal)).expect("start");
        let addr = server.addr().to_string();
        for bad in [
            "not json",
            r#"{"kind":"transmute"}"#,
            r#"{"kind":"lint","registers":3}"#,
            r#"{"kind":"lint","frobnicate":1}"#,
        ] {
            let (status, _) =
                crate::http::roundtrip(&addr, "POST", "/jobs", Some(bad)).expect("submit");
            assert_eq!(status, 400, "spec {bad:?} must be rejected");
        }
        let (status, body) =
            crate::http::roundtrip(&addr, "GET", "/healthz", None).expect("health");
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("jobs").and_then(Json::as_u64), Some(0));
        server.drain_and_join();
        let _ = std::fs::remove_file(&wal);
    }
}
