//! Content-addressed result cache.
//!
//! Keys are [`crate::job::JobSpec::cache_key`] values: FNV-1a 64 over the
//! target design's elaborated-netlist digest plus the canonical job
//! parameters and seed. Two requests with the same key are the same
//! computation by construction (the engines are deterministic functions of
//! exactly those inputs), so a hit is served without running a single
//! simulation event. The cache is rebuilt for free on restart: every
//! completed job is in the WAL, and replay re-inserts it.

use std::collections::HashMap;

use crate::job::Finished;

/// An in-memory map from content key to finished result.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<u64, Finished>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks up a key, counting the hit or miss.
    pub fn lookup(&mut self, key: u64) -> Option<Finished> {
        match self.entries.get(&key) {
            Some(f) => {
                self.hits += 1;
                Some(f.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a finished result. Last write wins; identical keys carry
    /// identical results, so overwrites are benign.
    pub fn insert(&mut self, key: u64, finished: Finished) {
        self.entries.insert(key, finished);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits since startup.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since startup.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = ResultCache::new();
        assert!(cache.lookup(7).is_none());
        cache.insert(
            7,
            Finished {
                result: Json::obj(vec![("ok", Json::Bool(true))]),
                digest: 0xABCD,
            },
        );
        let hit = cache.lookup(7).expect("hit");
        assert_eq!(hit.digest, 0xABCD);
        assert!(cache.lookup(8).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }
}
