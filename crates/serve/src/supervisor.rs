//! Shard supervision: panic containment, deadlines, bounded retry.
//!
//! Every shard attempt runs on its own dedicated thread so the supervisor
//! can enforce a wall-clock deadline with `recv_timeout` — std offers no
//! thread preemption, so a hung attempt is *abandoned* (its eventual send
//! into a dead channel is a no-op) rather than cancelled. Panics inside
//! the engines are caught per-attempt with `catch_unwind`; a panic or
//! timeout costs one attempt and triggers exponential backoff
//! (`backoff_ms << attempt`) before the next. Only when `max_attempts`
//! are exhausted does the shard — and with it the job — fail; the server
//! process never dies with it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

use crate::job::{run_shard, JobSpec};
use crate::json::Json;

/// Retry/timeout policy for shard execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Attempts per shard before the job fails (≥ 1).
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles each retry.
    pub backoff_ms: u64,
    /// Per-attempt wall-clock deadline; 0 disables the deadline.
    pub shard_deadline_ms: u64,
    /// Artificial pre-execution delay (test knob: widens the window in
    /// which a crash test can land `SIGKILL` mid-batch).
    pub shard_delay_ms: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_attempts: 3,
            backoff_ms: 10,
            shard_deadline_ms: 60_000,
            shard_delay_ms: 0,
        }
    }
}

/// Why a shard failed for good.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// The shard that failed.
    pub shard: u32,
    /// Attempts consumed.
    pub attempts: u32,
    /// Last attempt's failure, human-readable.
    pub message: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} failed after {} attempts: {}",
            self.shard, self.attempts, self.message
        )
    }
}

impl std::error::Error for ShardError {}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt: run the shard on a dedicated thread, wait at most the
/// deadline. `Ok` is the shard result; `Err` describes the panic/timeout.
fn attempt(
    spec: &JobSpec,
    shard: u32,
    attempt_no: u32,
    policy: &SupervisorPolicy,
) -> Result<Json, String> {
    let (tx, rx) = mpsc::sync_channel::<Result<Json, String>>(1);
    let spec = spec.clone();
    let delay = policy.shard_delay_ms;
    std::thread::spawn(move || {
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| run_shard(&spec, shard, attempt_no)))
            .map_err(|p| format!("panic: {}", panic_message(p)));
        // If the supervisor already timed us out, the receiver is gone and
        // this send fails harmlessly.
        let _ = tx.send(outcome);
    });
    if policy.shard_deadline_ms == 0 {
        rx.recv()
            .unwrap_or_else(|_| Err("worker thread vanished".to_string()))
    } else {
        match rx.recv_timeout(Duration::from_millis(policy.shard_deadline_ms)) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(format!(
                "deadline exceeded ({} ms)",
                policy.shard_deadline_ms
            )),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err("worker thread vanished".to_string()),
        }
    }
}

/// Runs one shard under the policy: retries panics and timeouts with
/// exponential backoff, failing only after `max_attempts`.
///
/// # Errors
///
/// [`ShardError`] when every attempt panicked or timed out.
pub fn run_supervised(
    spec: &JobSpec,
    shard: u32,
    policy: &SupervisorPolicy,
) -> Result<Json, ShardError> {
    let max = policy.max_attempts.max(1);
    let mut last = String::new();
    for n in 0..max {
        match attempt(spec, shard, n, policy) {
            Ok(result) => return Ok(result),
            Err(message) => {
                last = message;
                if n + 1 < max {
                    let backoff = policy.backoff_ms.saturating_mul(1 << n.min(16));
                    std::thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
    }
    Err(ShardError {
        shard,
        attempts: max,
        message: last,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Chaos, JobKind};

    fn lint_spec() -> JobSpec {
        JobSpec {
            kind: JobKind::Lint,
            ..JobSpec::default()
        }
    }

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            max_attempts: 3,
            backoff_ms: 1,
            shard_deadline_ms: 30_000,
            shard_delay_ms: 0,
        }
    }

    #[test]
    fn clean_shard_succeeds_first_try() {
        let out = run_supervised(&lint_spec(), 0, &fast_policy()).expect("runs");
        assert_eq!(out.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn panicking_shard_is_retried_until_it_heals() {
        let mut spec = lint_spec();
        spec.chaos = Some(Chaos {
            shard: 0,
            fail_attempts: 2,
        });
        // Attempts 0 and 1 panic; attempt 2 succeeds.
        let out = run_supervised(&spec, 0, &fast_policy()).expect("third attempt succeeds");
        assert_eq!(out.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn exhausted_retries_fail_the_shard_not_the_process() {
        let mut spec = lint_spec();
        spec.chaos = Some(Chaos {
            shard: 0,
            fail_attempts: u32::MAX,
        });
        let err = run_supervised(&spec, 0, &fast_policy()).expect_err("must fail");
        assert_eq!(err.shard, 0);
        assert_eq!(err.attempts, 3);
        assert!(err.message.contains("panic"), "message: {}", err.message);
    }

    #[test]
    fn deadline_times_out_a_hung_shard() {
        let mut policy = fast_policy();
        policy.max_attempts = 2;
        policy.shard_deadline_ms = 20;
        policy.shard_delay_ms = 5_000; // every attempt hangs past the deadline
        let err = run_supervised(&lint_spec(), 0, &policy).expect_err("times out");
        assert_eq!(err.attempts, 2);
        assert!(err.message.contains("deadline"), "message: {}", err.message);
    }
}
