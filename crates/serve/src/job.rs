//! Job specifications and their execution engines.
//!
//! A [`JobSpec`] names a registered design, a geometry, and the
//! parameters of one of five job kinds (`simulate` / `margins` / `yield` /
//! `cosim` / `lint`). Execution is *sharded*: Monte Carlo kinds split
//! their trial range into contiguous shards
//! ([`hiperrf::jobs::ShardPlan`]); single-shot kinds are one shard. A
//! shard's result is a pure function of `(spec, shard index)` — all
//! randomness flows through `Rng64::fork(seed, trial)` — which is what
//! lets the WAL resume a half-finished job with bit-identical output.
//!
//! Identity is content-addressed: [`JobSpec::cache_key`] digests the
//! *elaborated netlist* of the target design plus the canonical parameter
//! serialisation and seed, so identical requests share a cache entry and
//! any structural change to a design invalidates its cached results.

use hiperrf::config::RfGeometry;
use hiperrf::designs::Design;
use hiperrf::harness::BatchStats;
use hiperrf::hashing::{digest_hex, Fnv64};
use hiperrf::jobs::{
    assemble_yield_curve, digest_bools, digest_f64s, jitter_shard, lint_job, soak_job, yield_shard,
    ShardPlan,
};
use sfq_sim::compiled::EngineKind;
use sfq_sim::queue::SchedulerKind;

use crate::json::Json;

/// The five job kinds the server executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One seeded write-all/read-all soak under delay variation.
    Simulate,
    /// Jitter Monte Carlo: per-trial skewed round trips.
    Margins,
    /// Monte Carlo yield curve: per-trial critical-σ bisection.
    Yield,
    /// Gate-level CPU kernels over the design's pulse netlist.
    Cosim,
    /// Static netlist DRC + min/max-path timing.
    Lint,
}

impl JobKind {
    /// All kinds, in request-vocabulary order.
    pub const ALL: [JobKind; 5] = [
        JobKind::Simulate,
        JobKind::Margins,
        JobKind::Yield,
        JobKind::Cosim,
        JobKind::Lint,
    ];

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Simulate => "simulate",
            JobKind::Margins => "margins",
            JobKind::Yield => "yield",
            JobKind::Cosim => "cosim",
            JobKind::Lint => "lint",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<JobKind> {
        JobKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Parses a design slug (or its display label) into a registry entry.
pub fn parse_design(s: &str) -> Option<Design> {
    match s {
        "ndro" | "ndro-baseline" | "NDRO baseline" => Some(Design::NdroBaseline),
        "hiperrf" | "HiPerRF" => Some(Design::HiPerRf),
        "dual" | "dual-banked" => Some(Design::DualBanked),
        "shift" | "shift-register" => Some(Design::ShiftRegister),
        _ => None,
    }
}

/// The wire slug of a design.
pub fn design_slug(design: Design) -> &'static str {
    match design {
        Design::NdroBaseline => "ndro",
        Design::HiPerRf => "hiperrf",
        Design::DualBanked => "dual",
        Design::ShiftRegister => "shift",
    }
}

/// Test-only chaos injection: makes the server's *own* shard execution
/// panic, to exercise the supervisor's retry path. Not part of the job's
/// content identity (it does not change the result a successful run
/// produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chaos {
    /// The shard index that misbehaves.
    pub shard: u32,
    /// The shard panics on attempts `0..fail_attempts`; a high enough
    /// value outlasts every retry and fails the job.
    pub fail_attempts: u32,
}

/// A fully parsed job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Which registered design.
    pub design: Design,
    /// Registers in the geometry.
    pub registers: usize,
    /// Bits per register.
    pub width: usize,
    /// Monte Carlo trials (margins/yield).
    pub trials: u32,
    /// Trials per shard (margins/yield).
    pub shard_len: u32,
    /// Root seed; all per-trial randomness forks from it.
    pub seed: u64,
    /// Peak jitter magnitude (margins), ps.
    pub jitter_ps: f64,
    /// Delay-variation σ (simulate).
    pub sigma: f64,
    /// Yield-curve σ sample points (yield).
    pub sigmas: Vec<f64>,
    /// Kernel name filter (cosim); empty string runs the whole suite.
    pub kernel: String,
    /// Pinned execution engine, `None` = the server's compiled-in
    /// default. Engines are byte-identical (the differential suite
    /// asserts it), so like [`Chaos`] this perturbs execution — speed,
    /// here — never results, and is not content-bearing.
    pub engine: Option<EngineKind>,
    /// Pinned event scheduler, `None` = the server's compiled-in
    /// default. Like [`JobSpec::engine`]: the schedulers are
    /// byte-identical (the torture and differential suites assert it),
    /// so this perturbs execution speed, never results, and is not
    /// content-bearing.
    pub scheduler: Option<SchedulerKind>,
    /// Test-only supervisor chaos (see [`Chaos`]).
    pub chaos: Option<Chaos>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            kind: JobKind::Yield,
            design: Design::HiPerRf,
            registers: 4,
            width: 4,
            trials: 8,
            shard_len: 4,
            seed: 0xC0FF_EE00,
            jitter_ps: 12.0,
            sigma: 0.0,
            sigmas: vec![0.0, 0.02, 0.05, 0.10, 0.20, 0.30],
            kernel: String::new(),
            engine: None,
            scheduler: None,
            chaos: None,
        }
    }
}

impl JobSpec {
    /// Parses a request body. Unknown fields are rejected (a typoed
    /// parameter silently falling back to a default would poison the
    /// content-addressed cache key's meaning).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let Json::Obj(pairs) = v else {
            return Err("job spec must be a JSON object".to_string());
        };
        let mut spec = JobSpec::default();
        for (key, value) in pairs {
            match key.as_str() {
                "kind" => {
                    let name = value.as_str().ok_or("kind must be a string")?;
                    spec.kind = JobKind::parse(name).ok_or_else(|| {
                        format!("unknown kind `{name}` (simulate/margins/yield/cosim/lint)")
                    })?;
                }
                "design" => {
                    let name = value.as_str().ok_or("design must be a string")?;
                    spec.design = parse_design(name).ok_or_else(|| {
                        format!("unknown design `{name}` (ndro/hiperrf/dual/shift)")
                    })?;
                }
                "registers" => {
                    spec.registers = value
                        .as_u64()
                        .ok_or("registers must be a non-negative integer")?
                        as usize;
                }
                "width" => {
                    spec.width = value
                        .as_u64()
                        .ok_or("width must be a non-negative integer")?
                        as usize;
                }
                "trials" => {
                    spec.trials = u32::try_from(value.as_u64().ok_or("trials must be an integer")?)
                        .map_err(|_| "trials out of range")?;
                }
                "shard_len" => {
                    let len = value.as_u64().ok_or("shard_len must be an integer")?;
                    spec.shard_len = u32::try_from(len).map_err(|_| "shard_len out of range")?;
                    if spec.shard_len == 0 {
                        return Err("shard_len must be positive".to_string());
                    }
                }
                "seed" => {
                    spec.seed = value
                        .as_u64()
                        .ok_or("seed must be a u64 (number or string)")?;
                }
                "jitter_ps" => {
                    spec.jitter_ps = value.as_f64().ok_or("jitter_ps must be a number")?;
                }
                "sigma" => {
                    spec.sigma = value.as_f64().ok_or("sigma must be a number")?;
                }
                "sigmas" => {
                    let arr = value.as_arr().ok_or("sigmas must be an array")?;
                    spec.sigmas = arr
                        .iter()
                        .map(|s| s.as_f64().ok_or("sigmas entries must be numbers"))
                        .collect::<Result<_, _>>()?;
                }
                "kernel" => {
                    spec.kernel = value.as_str().ok_or("kernel must be a string")?.to_string();
                }
                "engine" => {
                    let name = value.as_str().ok_or("engine must be a string")?;
                    spec.engine = Some(EngineKind::parse(name).ok_or_else(|| {
                        format!("unknown engine `{name}` (compiled/dyn-interpreter)")
                    })?);
                }
                "scheduler" => {
                    let name = value.as_str().ok_or("scheduler must be a string")?;
                    spec.scheduler = Some(SchedulerKind::parse(name).ok_or_else(|| {
                        format!(
                            "unknown scheduler `{name}` \
                             (calendar-queue/reference-heap/lane-batched)"
                        )
                    })?);
                }
                "chaos" => {
                    let shard = value
                        .get("shard")
                        .and_then(Json::as_u64)
                        .ok_or("chaos.shard must be an integer")?;
                    let fail = value
                        .get("fail_attempts")
                        .and_then(Json::as_u64)
                        .ok_or("chaos.fail_attempts must be an integer")?;
                    spec.chaos = Some(Chaos {
                        shard: shard as u32,
                        fail_attempts: fail as u32,
                    });
                }
                other => return Err(format!("unknown job field `{other}`")),
            }
        }
        spec.geometry().map_err(|e| e.to_string())?;
        Ok(spec)
    }

    /// The requested geometry.
    pub fn geometry(&self) -> Result<RfGeometry, hiperrf::config::GeometryError> {
        RfGeometry::new(self.registers, self.width)
    }

    /// Canonical serialisation of everything that defines the job's
    /// *content* (chaos and engine excluded: they perturb execution,
    /// never results). This is the params half of the cache key, and
    /// what the WAL stores.
    pub fn canonical(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str(self.kind.name())),
            ("design", Json::str(design_slug(self.design))),
            ("registers", Json::u64(self.registers as u64)),
            ("width", Json::u64(self.width as u64)),
            ("trials", Json::u64(u64::from(self.trials))),
            ("shard_len", Json::u64(u64::from(self.shard_len))),
            ("seed", Json::str(self.seed.to_string())),
            ("jitter_ps", Json::Num(self.jitter_ps)),
            ("sigma", Json::Num(self.sigma)),
            (
                "sigmas",
                Json::Arr(self.sigmas.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("kernel", Json::str(self.kernel.clone())),
        ])
    }

    /// Re-parses a WAL-stored canonical spec (plus optional chaos,
    /// engine, and scheduler, which `canonical` never writes).
    pub fn from_canonical(v: &Json) -> Result<JobSpec, String> {
        JobSpec::from_json(v)
    }

    /// The content-addressed cache key: FNV-1a 64 over the elaborated
    /// netlist digest of `(design, geometry)` and the canonical params
    /// (which include kind and seed).
    pub fn cache_key(&self, netlist_digest: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(netlist_digest);
        h.write_str(&self.canonical().to_string());
        h.finish()
    }

    /// The shard plan: Monte Carlo kinds shard their trials; single-shot
    /// kinds are one shard.
    pub fn shard_count(&self) -> u32 {
        match self.kind {
            JobKind::Margins | JobKind::Yield => {
                ShardPlan::new(self.trials, self.shard_len).shard_count()
            }
            JobKind::Simulate | JobKind::Cosim | JobKind::Lint => 1,
        }
    }
}

/// Serialises a [`BatchStats`] roll-up for a shard or job record.
fn stats_json(stats: &BatchStats) -> Json {
    Json::obj(vec![
        ("runs", Json::u64(stats.runs)),
        ("events", Json::u64(stats.totals.events_processed)),
        (
            "peak_queue_depth",
            Json::u64(stats.totals.peak_queue_depth as u64),
        ),
        (
            "sim_time_ps",
            Json::Num(stats.totals.sim_time_advanced.as_ps()),
        ),
        ("slot_bytes", Json::u64(stats.totals.slot_bytes_touched)),
        ("fanout_rows", Json::u64(stats.totals.fanout_rows_visited)),
    ])
}

/// Reads a stats object back into a [`BatchStats`] (for WAL-replayed
/// shards). Missing fields count as zero — stats are reporting, not
/// content.
fn stats_from_json(v: &Json) -> BatchStats {
    let mut b = BatchStats::new();
    b.runs = v.get("runs").and_then(Json::as_u64).unwrap_or(0);
    b.totals.events_processed = v.get("events").and_then(Json::as_u64).unwrap_or(0);
    b.totals.peak_queue_depth = v
        .get("peak_queue_depth")
        .and_then(Json::as_u64)
        .unwrap_or(0) as usize;
    b.totals.slot_bytes_touched = v.get("slot_bytes").and_then(Json::as_u64).unwrap_or(0);
    b.totals.fanout_rows_visited = v.get("fanout_rows").and_then(Json::as_u64).unwrap_or(0);
    b
}

/// Executes one shard. Pure in `(spec, shard)` — `attempt` only feeds the
/// chaos hook, which panics instead of changing results.
///
/// # Panics
///
/// Panics when the spec's [`Chaos`] targets this shard and attempt —
/// that is the supervisor-containment test hook — or on internal engine
/// bugs (which the supervisor also contains).
pub fn run_shard(spec: &JobSpec, shard: u32, attempt: u32) -> Json {
    // Pin the requested engine and scheduler for everything this shard
    // builds — including simulators constructed deep inside Monte Carlo
    // trials — for the duration of this worker-thread call.
    let engine_pinned = || match spec.engine {
        Some(kind) => {
            EngineKind::with_thread_default(kind, || run_shard_inner(spec, shard, attempt))
        }
        None => run_shard_inner(spec, shard, attempt),
    };
    match spec.scheduler {
        Some(kind) => SchedulerKind::with_thread_default(kind, engine_pinned),
        None => engine_pinned(),
    }
}

fn run_shard_inner(spec: &JobSpec, shard: u32, attempt: u32) -> Json {
    if let Some(chaos) = spec.chaos {
        assert!(
            !(chaos.shard == shard && attempt < chaos.fail_attempts),
            "chaos: injected panic on shard {shard} attempt {attempt}"
        );
    }
    let geometry = spec.geometry().expect("validated at admission");
    match spec.kind {
        JobKind::Yield => {
            let plan = ShardPlan::new(spec.trials, spec.shard_len);
            let out = yield_shard(spec.design, geometry, spec.seed, plan.range(shard));
            Json::obj(vec![
                (
                    "criticals",
                    Json::Arr(out.criticals.iter().map(|&c| Json::Num(c)).collect()),
                ),
                ("stats", stats_json(&out.stats)),
            ])
        }
        JobKind::Margins => {
            let plan = ShardPlan::new(spec.trials, spec.shard_len);
            let out = jitter_shard(
                spec.design,
                geometry,
                spec.jitter_ps,
                spec.seed,
                plan.range(shard),
            );
            Json::obj(vec![
                (
                    "passes",
                    Json::Arr(out.passes.iter().map(|&p| Json::Bool(p)).collect()),
                ),
                ("stats", stats_json(&out.stats)),
            ])
        }
        JobKind::Simulate => {
            let out = soak_job(spec.design, geometry, spec.sigma, spec.seed);
            Json::obj(vec![
                ("ok", Json::Bool(out.ok)),
                ("stats", stats_json(&out.stats)),
            ])
        }
        JobKind::Lint => {
            let s = lint_job(spec.design, geometry);
            Json::obj(vec![
                ("clean", Json::Bool(s.clean)),
                ("errors", Json::u64(s.errors as u64)),
                ("warnings", Json::u64(s.warnings as u64)),
                ("infos", Json::u64(s.infos as u64)),
                ("jj_total", Json::u64(s.jj_total)),
                (
                    "worst_slack_ps",
                    s.worst_slack_ps.map_or(Json::Null, Json::Num),
                ),
            ])
        }
        JobKind::Cosim => run_cosim_shard(spec),
    }
}

/// Runs the cosim kernel suite (filtered by `spec.kernel`) on the design's
/// pulse netlist, checking every architectural access against the
/// functional RV32I model exactly like `repro cosim` does.
fn run_cosim_shard(spec: &JobSpec) -> Json {
    use hiperrf::backend::PulseRf;
    use sfq_cpu::{GateLevelCpu, PipelineConfig};
    use sfq_riscv::asm::assemble;
    use sfq_workloads::{cosim_suite, PASS};

    let suite = cosim_suite();
    let kernels: Vec<_> = suite
        .iter()
        .filter(|w| spec.kernel.is_empty() || w.name == spec.kernel)
        .collect();
    assert!(
        !kernels.is_empty(),
        "no cosim kernel matches `{}`",
        spec.kernel
    );
    let rows = kernels
        .iter()
        .map(|w| {
            let prog = assemble(&w.source, 0).expect("suite kernels assemble");
            let mut cpu = GateLevelCpu::with_backend(
                Box::new(PulseRf::new(spec.design)),
                PipelineConfig::sodor(),
            );
            let out = cpu.run(&prog, w.mem_size, w.budget).expect("kernel runs");
            assert_eq!(out.exit_code, PASS, "{} failed self-check", w.name);
            Json::obj(vec![
                ("kernel", Json::str(w.name)),
                ("retired", Json::u64(out.stats.retired)),
                ("cpi", Json::Num(out.stats.cpi())),
                ("clean", Json::Bool(out.rf.is_clean())),
                ("reads", Json::u64(out.rf.reads)),
                ("writes", Json::u64(out.rf.writes)),
            ])
        })
        .collect();
    Json::obj(vec![("kernels", Json::Arr(rows))])
}

/// A finalised job: the assembled result document and its content digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Finished {
    /// The result document served to clients.
    pub result: Json,
    /// Digest over the job's value content (not its bookkeeping), hex in
    /// the result document.
    pub digest: u64,
}

/// Extracts shard `i`'s array field as f64s.
fn shard_f64s(shards: &[Json], field: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for s in shards {
        let arr = s
            .get(field)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("shard record missing `{field}`"))?;
        for v in arr {
            out.push(
                v.as_f64()
                    .ok_or_else(|| format!("non-number in `{field}`"))?,
            );
        }
    }
    Ok(out)
}

/// Assembles a completed job from its in-order shard results. Shard
/// results may come from live execution or WAL replay — both paths feed
/// the same reduction, which is why a resumed job's digest is
/// bit-identical to an uninterrupted run's.
pub fn finalize(spec: &JobSpec, shards: &[Json]) -> Result<Finished, String> {
    let mut stats = BatchStats::new();
    for s in shards {
        if let Some(sj) = s.get("stats") {
            stats.merge(&stats_from_json(sj));
        }
    }
    let (digest, payload) = match spec.kind {
        JobKind::Yield => {
            let criticals = shard_f64s(shards, "criticals")?;
            if criticals.len() != spec.trials as usize {
                return Err(format!(
                    "assembled {} trials, expected {}",
                    criticals.len(),
                    spec.trials
                ));
            }
            let digest = digest_f64s(&criticals);
            let curve = assemble_yield_curve(&spec.sigmas, &criticals);
            (
                digest,
                vec![
                    (
                        "curve",
                        Json::Arr(
                            curve
                                .iter()
                                .map(|&(s, y)| Json::Arr(vec![Json::Num(s), Json::Num(y)]))
                                .collect(),
                        ),
                    ),
                    ("trials", Json::u64(u64::from(spec.trials))),
                ],
            )
        }
        JobKind::Margins => {
            let mut passes = Vec::new();
            for s in shards {
                let arr = s
                    .get("passes")
                    .and_then(Json::as_arr)
                    .ok_or("shard record missing `passes`")?;
                for v in arr {
                    passes.push(v.as_bool().ok_or("non-bool in `passes`")?);
                }
            }
            if passes.len() != spec.trials as usize {
                return Err(format!(
                    "assembled {} trials, expected {}",
                    passes.len(),
                    spec.trials
                ));
            }
            let passed = passes.iter().filter(|&&p| p).count() as u32;
            let digest = digest_bools(&passes);
            (
                digest,
                vec![
                    ("trials", Json::u64(u64::from(spec.trials))),
                    ("passed", Json::u64(u64::from(passed))),
                    (
                        "yield",
                        Json::Num(f64::from(passed) / f64::from(spec.trials.max(1))),
                    ),
                ],
            )
        }
        JobKind::Simulate => {
            let one = shards.first().ok_or("simulate job has one shard")?;
            let ok = one
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or("missing `ok`")?;
            (digest_bools(&[ok]), vec![("ok", Json::Bool(ok))])
        }
        JobKind::Lint | JobKind::Cosim => {
            let one = shards.first().ok_or("single-shard job")?.clone();
            let mut h = Fnv64::new();
            h.write_str(&one.to_string());
            let digest = h.finish();
            let Json::Obj(pairs) = one else {
                return Err("shard record must be an object".to_string());
            };
            (
                digest,
                pairs
                    .iter()
                    .map(|(k, v)| (leak_key(k), v.clone()))
                    .collect(),
            )
        }
    };
    let mut fields = vec![
        ("kind", Json::str(spec.kind.name())),
        ("design", Json::str(design_slug(spec.design))),
        ("digest", Json::str(digest_hex(digest))),
    ];
    fields.extend(payload);
    fields.push(("work", stats_json(&stats)));
    Ok(Finished {
        result: Json::obj(fields),
        digest,
    })
}

/// Interns a dynamic result key (`finalize` builds objects from `&str`
/// pairs; shard-record keys are a tiny closed set, so leaking is bounded).
fn leak_key(k: &str) -> &'static str {
    match k {
        "clean" => "clean",
        "errors" => "errors",
        "warnings" => "warnings",
        "infos" => "infos",
        "jj_total" => "jj_total",
        "worst_slack_ps" => "worst_slack_ps",
        "kernels" => "kernels",
        "stats" => "stats",
        "ok" => "ok",
        _ => Box::leak(k.to_string().into_boxed_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_round_trips_and_rejects_unknowns() {
        let spec = JobSpec::from_json(
            &Json::parse(
                r#"{"kind":"yield","design":"hiperrf","trials":6,"shard_len":2,
                    "seed":"18446744073709551615","sigmas":[0.0,0.1]}"#,
            )
            .unwrap(),
        )
        .expect("valid spec");
        assert_eq!(spec.kind, JobKind::Yield);
        assert_eq!(spec.seed, u64::MAX);
        assert_eq!(spec.shard_count(), 3);
        let re = JobSpec::from_canonical(&spec.canonical()).expect("canonical re-parses");
        assert_eq!(re, spec);

        let pinned = JobSpec::from_json(
            &Json::parse(r#"{"kind":"yield","scheduler":"lane-batched","engine":"compiled"}"#)
                .unwrap(),
        )
        .expect("pinned spec parses");
        assert_eq!(pinned.scheduler, Some(SchedulerKind::LaneBatched));
        assert_eq!(pinned.engine, Some(EngineKind::Compiled));

        assert!(JobSpec::from_json(&Json::parse(r#"{"kibd":"yield"}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(&Json::parse(r#"{"design":"tpu"}"#).unwrap()).is_err());
        assert!(
            JobSpec::from_json(&Json::parse(r#"{"scheduler":"splay-tree"}"#).unwrap()).is_err(),
            "unknown schedulers are rejected at admission"
        );
        assert!(
            JobSpec::from_json(&Json::parse(r#"{"registers":3,"width":4}"#).unwrap()).is_err(),
            "geometry validation applies at admission"
        );
    }

    #[test]
    fn cache_key_separates_params_netlists_and_seeds() {
        let a = JobSpec::default();
        let mut b = a.clone();
        b.seed ^= 1;
        let mut c = a.clone();
        c.kind = JobKind::Margins;
        assert_ne!(a.cache_key(1), a.cache_key(2), "netlist hash matters");
        assert_ne!(a.cache_key(1), b.cache_key(1), "seed matters");
        assert_ne!(a.cache_key(1), c.cache_key(1), "kind matters");
        let mut chaotic = a.clone();
        chaotic.chaos = Some(Chaos {
            shard: 0,
            fail_attempts: 1,
        });
        assert_eq!(
            a.cache_key(1),
            chaotic.cache_key(1),
            "chaos is not content-bearing"
        );
        let mut pinned = a.clone();
        pinned.engine = Some(EngineKind::DynInterpreter);
        assert_eq!(
            a.cache_key(1),
            pinned.cache_key(1),
            "engine is not content-bearing"
        );
        let mut sched = a.clone();
        sched.scheduler = Some(SchedulerKind::ReferenceHeap);
        assert_eq!(
            a.cache_key(1),
            sched.cache_key(1),
            "scheduler is not content-bearing"
        );
    }

    #[test]
    fn pinned_schedulers_produce_identical_job_digests() {
        let spec = JobSpec {
            trials: 4,
            shard_len: 2,
            sigmas: vec![0.0, 0.1],
            ..JobSpec::default()
        };
        let digests: Vec<u64> = SchedulerKind::ALL
            .into_iter()
            .map(|kind| {
                let pinned = JobSpec {
                    scheduler: Some(kind),
                    ..spec.clone()
                };
                let shards: Vec<Json> = (0..pinned.shard_count())
                    .map(|s| run_shard(&pinned, s, 0))
                    .collect();
                finalize(&pinned, &shards).expect("finalises").digest
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "schedulers are byte-identical: {digests:?}"
        );
    }

    #[test]
    fn pinned_engines_produce_identical_job_digests() {
        let spec = JobSpec {
            trials: 4,
            shard_len: 2,
            sigmas: vec![0.0, 0.1],
            ..JobSpec::default()
        };
        let digests: Vec<u64> = EngineKind::ALL
            .into_iter()
            .map(|kind| {
                let pinned = JobSpec {
                    engine: Some(kind),
                    ..spec.clone()
                };
                let shards: Vec<Json> = (0..pinned.shard_count())
                    .map(|s| run_shard(&pinned, s, 0))
                    .collect();
                finalize(&pinned, &shards).expect("finalises").digest
            })
            .collect();
        assert_eq!(digests[0], digests[1], "engines are byte-identical");
    }

    #[test]
    fn sharded_execution_finalises_to_the_engine_result() {
        let spec = JobSpec {
            trials: 5,
            shard_len: 2,
            sigmas: vec![0.0, 0.05, 0.3],
            ..JobSpec::default()
        };
        let shards: Vec<Json> = (0..spec.shard_count())
            .map(|s| run_shard(&spec, s, 0))
            .collect();
        let fin = finalize(&spec, &shards).expect("finalises");
        let reference = hiperrf::margins::yield_curve_with_threads(
            spec.design,
            spec.geometry().unwrap(),
            &spec.sigmas,
            spec.trials,
            spec.seed,
            1,
        );
        let curve = fin.result.get("curve").and_then(Json::as_arr).unwrap();
        for (point, (rs, ry)) in curve.iter().zip(reference.points) {
            let p = point.as_arr().unwrap();
            assert_eq!(p[0].as_f64(), Some(rs));
            assert_eq!(p[1].as_f64(), Some(ry));
        }
        assert!(
            fin.result
                .get("work")
                .unwrap()
                .get("events")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn chaos_panics_only_on_its_shard_and_attempts() {
        let spec = JobSpec {
            kind: JobKind::Lint,
            chaos: Some(Chaos {
                shard: 0,
                fail_attempts: 2,
            }),
            ..JobSpec::default()
        };
        assert!(std::panic::catch_unwind(|| run_shard(&spec, 0, 0)).is_err());
        assert!(std::panic::catch_unwind(|| run_shard(&spec, 0, 1)).is_err());
        assert!(std::panic::catch_unwind(|| run_shard(&spec, 0, 2)).is_ok());
    }

    #[test]
    fn lint_and_simulate_jobs_finalise() {
        for kind in [JobKind::Lint, JobKind::Simulate] {
            let spec = JobSpec {
                kind,
                ..JobSpec::default()
            };
            let shard = run_shard(&spec, 0, 0);
            let fin = finalize(&spec, &[shard]).expect("finalises");
            assert_eq!(
                fin.result.get("kind").and_then(Json::as_str),
                Some(kind.name())
            );
            assert!(fin.result.get("digest").is_some());
        }
    }
}
