//! Torn-write recovery: truncate the journal at *every* byte boundary of
//! its final records and prove recovery never panics, never double-counts
//! a shard, and — after resuming — produces the exact digest an
//! uninterrupted run produced.

use std::path::PathBuf;

use sfq_serve::json::Json;
use sfq_serve::{client, Server, ServerConfig, Wal};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sfq-serve-torn-{name}-{}", std::process::id()));
    p
}

/// A cheap multi-shard job: 4 jitter trials, one per shard.
const SPEC: &str =
    r#"{"kind":"margins","design":"hiperrf","trials":4,"shard_len":1,"seed":"3735928559"}"#;

/// Runs the spec on a fresh in-process server; returns (wal bytes, digest).
fn baseline(name: &str) -> (Vec<u8>, String) {
    let wal = tmp(name);
    let _ = std::fs::remove_file(&wal);
    let server = Server::start(ServerConfig::new(&wal)).expect("start");
    let addr = server.addr().to_string();
    let (status, body) = client::submit(&addr, SPEC).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");
    let doc = client::wait_for_job(&addr, id, 60_000).expect("completes");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    let digest = doc
        .get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();
    server.drain_and_join();
    let bytes = std::fs::read(&wal).expect("read wal");
    let _ = std::fs::remove_file(&wal);
    (bytes, digest)
}

/// Completed-job WAL layout: job, shard×4, done — each one line.
fn line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            starts.push(i + 1);
        }
    }
    starts
}

#[test]
fn every_truncation_point_recovers_and_resumes_bit_identically() {
    let (full, want_digest) = baseline("sweep-base");
    let starts = line_starts(&full);
    assert_eq!(starts.len(), 6, "job + 4 shards + done");

    // Sweep every byte boundary from the start of the last shard record
    // through the end of the file: covers a torn shard record, the
    // record boundary, and a torn done record.
    let sweep_from = starts[4];
    let wal = tmp("sweep");
    for cut in sweep_from..=full.len() {
        let _ = std::fs::remove_file(&wal);
        std::fs::write(&wal, &full[..cut]).expect("write truncated journal");

        // Raw recovery: replay heals, and the durable record count is
        // exactly the number of complete lines before the cut — no
        // double-counting, no panic.
        let (_, recovery) = Wal::open(&wal).expect("recovery must not fail");
        let durable_lines = full[..cut].iter().filter(|&&b| b == b'\n').count();
        assert_eq!(
            recovery.records.len(),
            durable_lines,
            "cut at byte {cut}: every complete line is a record"
        );

        // Server-level recovery: the journal resumes to the same digest.
        let server = Server::start(ServerConfig::new(&wal)).expect("server recovers");
        let addr = server.addr().to_string();
        let doc = client::wait_for_job(&addr, 1, 60_000).expect("job resumes");
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some("done"),
            "cut at byte {cut}"
        );
        assert_eq!(
            doc.get("result")
                .and_then(|r| r.get("digest"))
                .and_then(Json::as_str),
            Some(want_digest.as_str()),
            "cut at byte {cut}: resumed digest must match uninterrupted run"
        );
        assert_eq!(
            doc.get("shards_done").and_then(Json::as_u64),
            Some(4),
            "cut at byte {cut}: shard count must not inflate"
        );
        server.drain_and_join();
    }
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn duplicate_shard_records_replay_without_double_counting() {
    let (full, want_digest) = baseline("dup-base");
    let text = String::from_utf8(full).expect("utf8 journal");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    // A crash between append and in-memory ack can journal a shard twice.
    // Rebuild the journal with shard 2 duplicated and the done record
    // dropped (as if the crash hit right after the duplicate).
    let mut dup = String::new();
    for line in &lines[..5] {
        dup.push_str(line);
        dup.push('\n');
    }
    dup.push_str(lines[3]);
    dup.push('\n');

    let wal = tmp("dup");
    let _ = std::fs::remove_file(&wal);
    std::fs::write(&wal, dup).expect("write journal");
    let server = Server::start(ServerConfig::new(&wal)).expect("server recovers");
    let addr = server.addr().to_string();
    let doc = client::wait_for_job(&addr, 1, 60_000).expect("job resumes");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        doc.get("shards_done").and_then(Json::as_u64),
        Some(4),
        "duplicate shard must count once"
    );
    assert_eq!(
        doc.get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str),
        Some(want_digest.as_str())
    );
    server.drain_and_join();
    let _ = std::fs::remove_file(&wal);
}
