//! Kill-and-resume differential test against the *real* server binary:
//! `SIGKILL` mid-batch, restart on the same journal, and require the
//! resumed job's digest to be byte-identical to an uninterrupted run —
//! plus the cache contract: a repeated identical job is served from cache
//! with zero new shard executions.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sfq_serve::json::Json;
use sfq_serve::{client, Server, ServerConfig};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sfq-serve-kill-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

/// Six one-trial shards, each slowed to 150 ms so the kill window is wide.
const SPEC: &str =
    r#"{"kind":"margins","design":"hiperrf","trials":6,"shard_len":1,"seed":"271828182845"}"#;

/// Starts the real `sfq-serve` binary and waits until it answers.
fn spawn_server(wal: &Path, addr_file: &Path, shard_delay_ms: u64) -> (Child, String) {
    let _ = std::fs::remove_file(addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_sfq-serve"))
        .args([
            "run",
            "--wal",
            wal.to_str().expect("utf8 path"),
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf8 path"),
            "--shard-delay-ms",
            &shard_delay_ms.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sfq-serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    client::wait_healthy(&addr, 10_000).expect("server healthy");
    (child, addr)
}

#[test]
fn sigkill_mid_batch_resumes_to_the_uninterrupted_digest() {
    let dir = tmp_dir("diff");
    let wal = dir.join("jobs.wal");
    let addr_file = dir.join("addr");

    // Uninterrupted baseline, in-process on a separate journal.
    let base_wal = dir.join("baseline.wal");
    let baseline = Server::start(ServerConfig::new(&base_wal)).expect("baseline start");
    let base_addr = baseline.addr().to_string();
    let (status, body) = client::submit(&base_addr, SPEC).expect("baseline submit");
    assert_eq!(status, 202, "body: {body}");
    let base_doc = client::wait_for_job(
        &base_addr,
        body.get("id").and_then(Json::as_u64).expect("id"),
        60_000,
    )
    .expect("baseline completes");
    let want_digest = base_doc
        .get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();
    baseline.drain_and_join();

    // Real binary, slowed shards; SIGKILL once at least two shards are
    // durable but the batch is still running.
    let (mut child, addr) = spawn_server(&wal, &addr_file, 150);
    let (status, body) = client::submit(&addr, SPEC).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = client::job_status(&addr, id).expect("status");
        let done = doc.get("shards_done").and_then(Json::as_u64).unwrap_or(0);
        let state = doc.get("status").and_then(Json::as_str).unwrap_or("");
        assert_ne!(state, "done", "test must kill the server mid-batch");
        if done >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never reached two durable shards"
        );
        std::thread::sleep(Duration::from_millis(15));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Restart on the same journal: the job must resume from its durable
    // shards and finish with the baseline digest.
    let (mut child, addr) = spawn_server(&wal, &addr_file, 0);
    let health = client::health(&addr).expect("health");
    assert!(
        health.get("jobs_resumed").and_then(Json::as_u64) >= Some(1),
        "restart must re-queue the interrupted job: {health}"
    );
    assert!(
        health.get("shards_replayed").and_then(Json::as_u64) >= Some(2),
        "durable shards must replay, not re-run: {health}"
    );
    let doc = client::wait_for_job(&addr, id, 60_000).expect("resumed job completes");
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("done"),
        "{doc}"
    );
    assert_eq!(
        doc.get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str),
        Some(want_digest.as_str()),
        "resumed digest must be byte-identical to the uninterrupted run"
    );
    assert_eq!(doc.get("shards_done").and_then(Json::as_u64), Some(6));

    // Cache contract: the identical spec is now served from cache — HTTP
    // 200, same digest, and the shard-execution counter does not move.
    let before = client::health(&addr)
        .expect("health")
        .get("shards_executed")
        .and_then(Json::as_u64)
        .expect("counter");
    let (status, body) = client::submit(&addr, SPEC).expect("cached submit");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("cached"));
    assert_eq!(
        body.get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str),
        Some(want_digest.as_str())
    );
    let after = client::health(&addr)
        .expect("health")
        .get("shards_executed")
        .and_then(Json::as_u64)
        .expect("counter");
    assert_eq!(before, after, "a cache hit must run zero new shards");

    client::drain(&addr).expect("drain");
    let status = child.wait().expect("server exits after drain");
    assert!(status.success(), "drained server exits cleanly: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_server_replays_completed_jobs_into_the_cache() {
    let dir = tmp_dir("cache-replay");
    let wal = dir.join("jobs.wal");
    let addr_file = dir.join("addr");
    let spec = r#"{"kind":"lint","design":"dual"}"#;

    let (mut child, addr) = spawn_server(&wal, &addr_file, 0);
    let (status, body) = client::submit(&addr, spec).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");
    let doc = client::wait_for_job(&addr, id, 60_000).expect("completes");
    let digest = doc
        .get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .expect("digest")
        .to_string();
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // After an unclean death, the finished result must come back from the
    // journal as a cache entry — resubmission is a hit, not a re-run.
    let (mut child, addr) = spawn_server(&wal, &addr_file, 0);
    let (status, body) = client::submit(&addr, spec).expect("resubmit");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("cached"));
    assert_eq!(
        body.get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str),
        Some(digest.as_str())
    );
    client::drain(&addr).expect("drain");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
