//! HTTP contract tests: backpressure (429 + Retry-After), retry
//! supervision via chaos injection, and graceful drain.

use std::path::PathBuf;

use sfq_serve::http::roundtrip_with_headers;
use sfq_serve::json::Json;
use sfq_serve::{client, Server, ServerConfig, SupervisorPolicy};

fn tmp_wal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sfq-serve-http-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn slow_margins_spec(seed: u64) -> String {
    format!(r#"{{"kind":"margins","design":"hiperrf","trials":2,"shard_len":1,"seed":"{seed}"}}"#)
}

#[test]
fn full_queue_answers_429_with_retry_after_and_recovers() {
    let wal = tmp_wal("backpressure");
    let mut config = ServerConfig::new(&wal);
    config.workers = 1;
    config.queue_cap = 1;
    config.policy = SupervisorPolicy {
        shard_delay_ms: 200, // keep the worker busy so the queue backs up
        ..SupervisorPolicy::default()
    };
    let server = Server::start(config).expect("start");
    let addr = server.addr().to_string();

    // Job 1 is claimed by the single worker; wait until it is running so
    // the queue is empty and its depth deterministic.
    let (status, body) = client::submit(&addr, &slow_margins_spec(1)).expect("submit 1");
    assert_eq!(status, 202, "body: {body}");
    let id1 = body.get("id").and_then(Json::as_u64).expect("id");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let doc = client::job_status(&addr, id1).expect("status");
        if doc.get("status").and_then(Json::as_str) == Some("running") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job 1 never started");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Job 2 fills the queue (cap 1); job 3 must be pushed back.
    let (status, _) = client::submit(&addr, &slow_margins_spec(2)).expect("submit 2");
    assert_eq!(status, 202);
    let (status, headers, body) =
        roundtrip_with_headers(&addr, "POST", "/jobs", Some(&slow_margins_spec(3)))
            .expect("submit 3");
    assert_eq!(status, 429, "body: {body}");
    let retry_after = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .map(|(_, v)| v.clone());
    assert_eq!(
        retry_after.as_deref(),
        Some("1"),
        "429 must carry Retry-After"
    );

    // Backpressure is advisory, not fatal: retrying per the hint lands the
    // job once the queue moves.
    let (status, body) =
        client::submit_with_backoff(&addr, &slow_margins_spec(3), 30).expect("retry loop");
    assert_eq!(status, 202, "body: {body}");
    let id3 = body.get("id").and_then(Json::as_u64).expect("id");
    let doc = client::wait_for_job(&addr, id3, 60_000).expect("job 3 completes");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));

    server.drain_and_join();
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn chaos_panics_are_retried_then_contained() {
    let wal = tmp_wal("chaos");
    let mut config = ServerConfig::new(&wal);
    config.policy = SupervisorPolicy {
        max_attempts: 3,
        backoff_ms: 1,
        ..SupervisorPolicy::default()
    };
    let server = Server::start(config).expect("start");
    let addr = server.addr().to_string();

    // Two panics, then success: retries absorb the fault.
    let healing = r#"{"kind":"margins","design":"hiperrf","trials":2,"shard_len":1,
                      "seed":"41","chaos":{"shard":1,"fail_attempts":2}}"#;
    let (status, body) = client::submit(&addr, healing).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");
    let doc = client::wait_for_job(&addr, id, 60_000).expect("completes");
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("done"),
        "{doc}"
    );

    // Panics on every attempt: the job fails, the server survives.
    let hopeless = r#"{"kind":"margins","design":"hiperrf","trials":2,"shard_len":1,
                       "seed":"42","chaos":{"shard":0,"fail_attempts":4294967295}}"#;
    let (status, body) = client::submit(&addr, hopeless).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");
    let doc = client::wait_for_job(&addr, id, 60_000).expect("terminates");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("failed"));
    let error = doc.get("error").and_then(Json::as_str).expect("error");
    assert!(
        error.contains("3 attempts") && error.contains("panic"),
        "error must name the retry budget and cause: {error}"
    );

    // The process is still serving: a clean job right after the failure.
    let (status, body) =
        client::submit(&addr, r#"{"kind":"lint","design":"shift"}"#).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");
    let doc = client::wait_for_job(&addr, id, 60_000).expect("completes");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));

    server.drain_and_join();
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn drain_finishes_queued_work_then_refuses_admission() {
    let wal = tmp_wal("drain");
    let mut config = ServerConfig::new(&wal);
    config.workers = 1;
    config.policy = SupervisorPolicy {
        shard_delay_ms: 100,
        ..SupervisorPolicy::default()
    };
    let server = Server::start(config).expect("start");
    let addr = server.addr().to_string();

    let (status, body) = client::submit(&addr, &slow_margins_spec(77)).expect("submit");
    assert_eq!(status, 202, "body: {body}");
    let id = body.get("id").and_then(Json::as_u64).expect("id");

    // Drain blocks until the in-flight job is finished...
    let drained = client::drain(&addr).expect("drain");
    assert_eq!(drained.get("drained").and_then(Json::as_bool), Some(true));
    // ...so by the time it returns, the job must already be done (the
    // WAL has it; check via the journal since the listener is closing).
    let bytes = std::fs::read(&wal).expect("journal");
    let text = String::from_utf8(bytes).expect("utf8");
    assert!(
        text.lines().any(|l| l.contains(r#""t":"done""#)),
        "drain must complete admitted work first"
    );

    // Post-drain the server refuses new work: either the listener is
    // already gone (connection error) or the last connection sees 503.
    match client::submit(&addr, &slow_margins_spec(78)) {
        Err(_) => {}
        Ok((status, _)) => assert_eq!(status, 503, "draining server must refuse admission"),
    }
    server.join();
    let _ = id;
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn unknown_routes_and_jobs_are_404() {
    let wal = tmp_wal("routes");
    let server = Server::start(ServerConfig::new(&wal)).expect("start");
    let addr = server.addr().to_string();
    let (status, _, _) = roundtrip_with_headers(&addr, "GET", "/nope", None).expect("roundtrip");
    assert_eq!(status, 404);
    let (status, _, _) =
        roundtrip_with_headers(&addr, "GET", "/jobs/999", None).expect("roundtrip");
    assert_eq!(status, 404);
    let (status, _, _) =
        roundtrip_with_headers(&addr, "DELETE", "/jobs/1", None).expect("roundtrip");
    assert_eq!(status, 405);
    let (status, _, body) = roundtrip_with_headers(&addr, "GET", "/jobs", None).expect("roundtrip");
    assert_eq!(status, 200);
    assert!(body.contains("jobs"));
    server.drain_and_join();
    let _ = std::fs::remove_file(&wal);
}
