//! Run statistics: CPI and stall attribution.

use std::fmt;

use sfq_cells::timing::GATE_CYCLE_PS;

/// Why an instruction's register-file read was delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Waiting for a producer's write-back (read-after-write).
    Raw,
    /// Waiting for a loopback write to restore a just-read register.
    Loopback,
    /// Waiting for a register-file port slot (issue-interval contention).
    Port,
    /// Waiting for a control-flow instruction to resolve.
    Control,
}

/// Aggregate statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineStats {
    /// Instructions retired.
    pub retired: u64,
    /// Total gate cycles from first issue to last write-back.
    pub gate_cycles: u64,
    /// Gate cycles lost to read-after-write waits.
    pub raw_stall_cycles: u64,
    /// Gate cycles lost waiting for loopback restores.
    pub loopback_stall_cycles: u64,
    /// Gate cycles lost to port contention (issue interval).
    pub port_stall_cycles: u64,
    /// Gate cycles lost to control-flow resolution.
    pub control_stall_cycles: u64,
    /// Dynamic count of instructions whose two sources collided in a bank
    /// (dual-banked design only).
    pub bank_conflicts: u64,
    /// Dynamic count of same-register source pairs satisfied by readout
    /// duplication (the RAR-hazard fast path).
    pub rar_duplications: u64,
}

impl PipelineStats {
    /// Cycles per instruction (gate cycles).
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.gate_cycles as f64 / self.retired as f64
        }
    }

    /// Modelled wall-clock run time in nanoseconds.
    pub fn wall_ns(&self) -> f64 {
        self.gate_cycles as f64 * GATE_CYCLE_PS / 1000.0
    }

    /// CPI overhead of `self` relative to `baseline`, as a fraction
    /// (0.098 = 9.8%).
    pub fn cpi_overhead_vs(&self, baseline: &PipelineStats) -> f64 {
        self.cpi() / baseline.cpi() - 1.0
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "retired             {:>12}", self.retired)?;
        writeln!(f, "gate cycles         {:>12}", self.gate_cycles)?;
        writeln!(f, "CPI                 {:>12.2}", self.cpi())?;
        writeln!(f, "raw stalls          {:>12}", self.raw_stall_cycles)?;
        writeln!(f, "loopback stalls     {:>12}", self.loopback_stall_cycles)?;
        writeln!(f, "port stalls         {:>12}", self.port_stall_cycles)?;
        writeln!(f, "control stalls      {:>12}", self.control_stall_cycles)?;
        writeln!(f, "bank conflicts      {:>12}", self.bank_conflicts)?;
        write!(f, "rar duplications    {:>12}", self.rar_duplications)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_math() {
        let s = PipelineStats {
            retired: 10,
            gate_cycles: 300,
            ..Default::default()
        };
        assert_eq!(s.cpi(), 30.0);
        let b = PipelineStats {
            retired: 10,
            gate_cycles: 200,
            ..Default::default()
        };
        assert!((s.cpi_overhead_vs(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_cpi() {
        assert_eq!(PipelineStats::default().cpi(), 0.0);
    }

    #[test]
    fn display_contains_cpi() {
        let s = PipelineStats {
            retired: 4,
            gate_cycles: 100,
            ..Default::default()
        };
        assert!(s.to_string().contains("25.00"));
    }
}
