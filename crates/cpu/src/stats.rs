//! Run statistics: CPI and stall attribution.

use std::fmt;

use sfq_cells::timing::GATE_CYCLE_PS;

/// Why an instruction's register-file read was delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Waiting for a producer's write-back (read-after-write).
    Raw,
    /// Waiting for a loopback write to restore a just-read register.
    Loopback,
    /// Waiting for a register-file port slot (issue-interval contention).
    Port,
    /// Waiting for a control-flow instruction to resolve.
    Control,
}

impl StallKind {
    /// All stall causes, in reporting order.
    pub const ALL: [StallKind; 4] = [
        StallKind::Raw,
        StallKind::Loopback,
        StallKind::Port,
        StallKind::Control,
    ];

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::Raw => "RAW",
            StallKind::Loopback => "loopback-restore",
            StallKind::Port => "issue-interval",
            StallKind::Control => "control-redirect",
        }
    }
}

/// One row of the stall-cause histogram: how many instructions stalled on
/// a cause and how many gate cycles it cost in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallBin {
    /// The binding constraint.
    pub kind: StallKind,
    /// Instructions delayed by this cause.
    pub events: u64,
    /// Total gate cycles lost to it.
    pub cycles: u64,
}

/// Aggregate statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineStats {
    /// Instructions retired.
    pub retired: u64,
    /// Total gate cycles from first issue to last write-back.
    pub gate_cycles: u64,
    /// Gate cycles lost to read-after-write waits.
    pub raw_stall_cycles: u64,
    /// Gate cycles lost waiting for loopback restores.
    pub loopback_stall_cycles: u64,
    /// Gate cycles lost to port contention (issue interval).
    pub port_stall_cycles: u64,
    /// Gate cycles lost to control-flow resolution.
    pub control_stall_cycles: u64,
    /// Instructions delayed by a read-after-write wait.
    pub raw_stall_events: u64,
    /// Instructions delayed by a loopback restore.
    pub loopback_stall_events: u64,
    /// Instructions delayed by port contention.
    pub port_stall_events: u64,
    /// Instructions delayed by control-flow resolution.
    pub control_stall_events: u64,
    /// Dynamic count of instructions whose two sources collided in a bank
    /// (dual-banked design only).
    pub bank_conflicts: u64,
    /// Dynamic count of same-register source pairs satisfied by readout
    /// duplication (the RAR-hazard fast path).
    pub rar_duplications: u64,
}

impl PipelineStats {
    /// Cycles per instruction (gate cycles).
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.gate_cycles as f64 / self.retired as f64
        }
    }

    /// Modelled wall-clock run time in nanoseconds.
    pub fn wall_ns(&self) -> f64 {
        self.gate_cycles as f64 * GATE_CYCLE_PS / 1000.0
    }

    /// CPI overhead of `self` relative to `baseline`, as a fraction
    /// (0.098 = 9.8%).
    pub fn cpi_overhead_vs(&self, baseline: &PipelineStats) -> f64 {
        self.cpi() / baseline.cpi() - 1.0
    }

    /// The stall-cause histogram: (cause, stalled instructions, gate
    /// cycles lost) per cause, in [`StallKind::ALL`] order.
    pub fn stall_histogram(&self) -> [StallBin; 4] {
        StallKind::ALL.map(|kind| {
            let (events, cycles) = match kind {
                StallKind::Raw => (self.raw_stall_events, self.raw_stall_cycles),
                StallKind::Loopback => (self.loopback_stall_events, self.loopback_stall_cycles),
                StallKind::Port => (self.port_stall_events, self.port_stall_cycles),
                StallKind::Control => (self.control_stall_events, self.control_stall_cycles),
            };
            StallBin {
                kind,
                events,
                cycles,
            }
        })
    }

    /// Total gate cycles lost to stalls, over all causes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.raw_stall_cycles
            + self.loopback_stall_cycles
            + self.port_stall_cycles
            + self.control_stall_cycles
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "retired             {:>12}", self.retired)?;
        writeln!(f, "gate cycles         {:>12}", self.gate_cycles)?;
        writeln!(f, "CPI                 {:>12.2}", self.cpi())?;
        for bin in self.stall_histogram() {
            writeln!(
                f,
                "{:<19} {:>12} cycles / {:>9} events",
                format!("{} stalls", bin.kind.label()),
                bin.cycles,
                bin.events
            )?;
        }
        writeln!(f, "bank conflicts      {:>12}", self.bank_conflicts)?;
        write!(f, "rar duplications    {:>12}", self.rar_duplications)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_math() {
        let s = PipelineStats {
            retired: 10,
            gate_cycles: 300,
            ..Default::default()
        };
        assert_eq!(s.cpi(), 30.0);
        let b = PipelineStats {
            retired: 10,
            gate_cycles: 200,
            ..Default::default()
        };
        assert!((s.cpi_overhead_vs(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_cpi() {
        assert_eq!(PipelineStats::default().cpi(), 0.0);
    }

    #[test]
    fn display_contains_cpi() {
        let s = PipelineStats {
            retired: 4,
            gate_cycles: 100,
            ..Default::default()
        };
        assert!(s.to_string().contains("25.00"));
    }
}
