//! Pipeline configuration: synthesized stage depths and latencies.
//!
//! The paper's simulator uses a macro clock for the fetch-decode-execute-
//! writeback pipeline and micro clocks for gate-level pipelining (§VI-B).
//! qPalace synthesis of the Sodor core gives a worst-case gate cycle of
//! **28 ps** and an execute stage **28 gate-stages deep**; each register-
//! file cycle (53 ps) spans two gate cycles. All times here are in gate
//! cycles.

use sfq_cells::timing::GATE_CYCLE_PS;

/// Gate-cycle latencies of the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Execute-stage depth (gate-level pipeline stages), from qPalace
    /// synthesis of the Sodor core: 28.
    pub ex_depth: u64,
    /// Gate cycles from execute completion to the register-file write
    /// landing (one RF cycle).
    pub wb_gates: u64,
    /// Extra gate cycles for a memory access to the external 77 K memory.
    pub mem_latency: u64,
    /// Gate cycles to redirect fetch after a control-flow instruction
    /// resolves (the deep gate-level pipeline must refill).
    pub redirect_gates: u64,
    /// Extra gate cycles a dependent read must wait beyond the producer's
    /// write-back when the register file cannot internally forward
    /// (HC designs, paper §IV-D).
    pub no_forward_penalty: u64,
    /// Whether fetch speculates conditional branches as not-taken instead
    /// of stalling until they resolve. The paper's in-order SFQ core has
    /// no prediction; this switch exists for the ablation quantifying how
    /// much of the baseline CPI is control stalls.
    pub predict_not_taken: bool,
}

impl PipelineConfig {
    /// The configuration matching the paper's synthesized Sodor core.
    pub fn sodor() -> Self {
        PipelineConfig {
            ex_depth: 28,
            wb_gates: 2,
            mem_latency: 12,
            redirect_gates: 4,
            no_forward_penalty: 0,
            predict_not_taken: false,
        }
    }

    /// The Sodor configuration with not-taken branch prediction enabled.
    pub fn sodor_with_prediction() -> Self {
        PipelineConfig {
            predict_not_taken: true,
            ..Self::sodor()
        }
    }

    /// The modelled wall-clock duration of one run, in picoseconds.
    pub fn ps_of(self, gate_cycles: u64) -> f64 {
        gate_cycles as f64 * GATE_CYCLE_PS
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::sodor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sodor_defaults() {
        let c = PipelineConfig::sodor();
        assert_eq!(c.ex_depth, 28);
        assert_eq!(c, PipelineConfig::default());
    }

    #[test]
    fn ps_conversion() {
        let c = PipelineConfig::sodor();
        assert_eq!(c.ps_of(2), 56.0);
    }
}
