//! Bank-aware register reallocation.
//!
//! The paper's best Figure 14 variant assumes an "ideal situation, in
//! which all instructions read the two source registers from different
//! banks" (§VI-B) — i.e. a bank-aware compiler. This pass *implements*
//! that compiler: it renames architectural registers (a global
//! permutation) to minimize the number of dynamic two-source instructions
//! whose operands collide in one parity bank, then the dual-banked CPI can
//! be measured with a real allocation instead of an assumption.
//!
//! The permutation never touches `x0` (hard-wired), `sp`/`ra` (stack and
//! call discipline), or `a0`/`a7` (the exit-syscall ABI). Renaming is
//! applied to every instruction uniformly, so program semantics are
//! preserved exactly — asserted by differential execution.

use hiperrf::banked::bank_of;
use sfq_riscv::decode::decode;
use sfq_riscv::encode::encode;
use sfq_riscv::isa::{Instr, Reg};
use sfq_riscv::Program;

/// Registers the allocator must not rename.
fn pinned(r: usize) -> bool {
    matches!(r, 0 | 1 | 2 | 10 | 17) // x0, ra, sp, a0, a7
}

/// Statistics from one allocation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Static two-source instructions with a bank conflict before.
    pub conflicts_before: u32,
    /// Static conflicts after reallocation.
    pub conflicts_after: u32,
    /// Registers whose encoding changed.
    pub renamed: u32,
}

/// Counts static same-bank two-source instructions under a permutation.
fn conflict_count(instrs: &[Instr], perm: &[usize; 32]) -> u32 {
    instrs
        .iter()
        .filter(|i| {
            let srcs = i.sources();
            matches!(srcs.as_slice(), [a, b] if a != b
                && bank_of(perm[a.index()]) == bank_of(perm[b.index()]))
        })
        .count() as u32
}

/// Renames registers to spread two-source operands across banks.
///
/// Greedy pairwise improvement: repeatedly find the swap of two
/// non-pinned registers that removes the most conflicts, until no swap
/// helps. Returns the transformed program and statistics.
pub fn allocate_banks(program: &Program) -> (Program, AllocStats) {
    let instrs: Vec<Instr> = program
        .words
        .iter()
        .zip(&program.kinds)
        .filter(|(_, k)| **k == sfq_riscv::WordKind::Code)
        .filter_map(|(&w, _)| decode(w).ok())
        .collect();

    let mut perm: [usize; 32] = std::array::from_fn(|i| i);
    let mut stats = AllocStats {
        conflicts_before: conflict_count(&instrs, &perm),
        ..Default::default()
    };

    // `la` expands to lui+addi whose immediates encode absolute addresses;
    // renaming their registers is fine (registers are renamed everywhere),
    // but renaming must keep the *permutation* property: we swap labels.
    loop {
        let current = conflict_count(&instrs, &perm);
        let mut best: Option<(u32, usize, usize)> = None;
        for a in 0..32 {
            if pinned(a) {
                continue;
            }
            for b in a + 1..32 {
                if pinned(b) || bank_of(perm[a]) == bank_of(perm[b]) {
                    continue;
                }
                perm.swap(a, b);
                let c = conflict_count(&instrs, &perm);
                perm.swap(a, b);
                if c < current && best.is_none_or(|(bc, _, _)| c < bc) {
                    best = Some((c, a, b));
                }
            }
        }
        match best {
            Some((_, a, b)) => perm.swap(a, b),
            None => break,
        }
    }
    stats.conflicts_after = conflict_count(&instrs, &perm);
    stats.renamed = (0..32).filter(|&i| perm[i] != i).count() as u32;

    // Apply the permutation to every *code* word; data words pass through
    // untouched even if they coincidentally decode.
    let map = |r: Reg| Reg::new(perm[r.index()] as u8);
    let words: Vec<u32> = program
        .words
        .iter()
        .zip(&program.kinds)
        .map(|(&w, kind)| match (kind, decode(w)) {
            (sfq_riscv::WordKind::Code, Ok(i)) => encode(rename(i, map)),
            _ => w,
        })
        .collect();

    (
        Program {
            words,
            kinds: program.kinds.clone(),
            symbols: program.symbols.clone(),
            base: program.base,
        },
        stats,
    )
}

fn rename(i: Instr, f: impl Fn(Reg) -> Reg) -> Instr {
    match i {
        Instr::Lui { rd, imm } => Instr::Lui { rd: f(rd), imm },
        Instr::Auipc { rd, imm } => Instr::Auipc { rd: f(rd), imm },
        Instr::Jal { rd, offset } => Instr::Jal { rd: f(rd), offset },
        Instr::Jalr { rd, rs1, offset } => Instr::Jalr {
            rd: f(rd),
            rs1: f(rs1),
            offset,
        },
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => Instr::Branch {
            cond,
            rs1: f(rs1),
            rs2: f(rs2),
            offset,
        },
        Instr::Load {
            width,
            rd,
            rs1,
            offset,
        } => Instr::Load {
            width,
            rd: f(rd),
            rs1: f(rs1),
            offset,
        },
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => Instr::Store {
            width,
            rs2: f(rs2),
            rs1: f(rs1),
            offset,
        },
        Instr::AluImm { op, rd, rs1, imm } => Instr::AluImm {
            op,
            rd: f(rd),
            rs1: f(rs1),
            imm,
        },
        Instr::Alu { op, rd, rs1, rs2 } => Instr::Alu {
            op,
            rd: f(rd),
            rs1: f(rs1),
            rs2: f(rs2),
        },
        other @ (Instr::Fence | Instr::Ecall | Instr::Ebreak) => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::GateLevelCpu;
    use hiperrf::delay::RfDesign;
    use sfq_riscv::asm::assemble;
    use sfq_riscv::exec::Cpu;
    use sfq_riscv::mem::Memory;

    fn exit_code(p: &Program) -> u32 {
        let mut mem = Memory::new(1 << 20);
        mem.load_image(p.base, &p.words);
        let mut cpu = Cpu::new(p.base);
        cpu.run(&mut mem, 5_000_000).expect("runs")
    }

    #[test]
    fn removes_conflicts_on_conflicting_code() {
        // t0 (x5) and t2 (x7) share bank 0: a conflict the allocator can
        // fix by moving one operand to the even bank.
        let prog = assemble(
            "li t0, 1
             li t2, 2
             add t1, t0, t2
             add t3, t0, t2
             mv a0, t1
             li a7, 93
             ecall",
            0,
        )
        .expect("assembles");
        let (fixed, stats) = allocate_banks(&prog);
        assert!(stats.conflicts_before > 0);
        assert_eq!(stats.conflicts_after, 0, "{stats:?}");
        assert_eq!(exit_code(&prog), exit_code(&fixed), "semantics preserved");
    }

    #[test]
    fn pinned_registers_never_move() {
        let prog = assemble(
            "li a0, 7
             li t0, 1
             add a0, a0, t0
             li a7, 93
             ecall",
            0,
        )
        .expect("assembles");
        let (fixed, _) = allocate_banks(&prog);
        assert_eq!(exit_code(&fixed), 8, "a0/a7 must keep the exit protocol");
    }

    #[test]
    fn workload_suite_survives_and_improves() {
        use sfq_workloads_local::*;
        for (name, src) in sources() {
            let prog = assemble(&src, 0).expect("assembles");
            let (fixed, stats) = allocate_banks(&prog);
            assert_eq!(exit_code(&prog), exit_code(&fixed), "{name}");
            assert!(
                stats.conflicts_after <= stats.conflicts_before,
                "{name}: {stats:?}"
            );
        }
    }

    #[test]
    fn dual_banked_cpi_approaches_ideal() {
        // On conflict-heavy code the real allocation should recover most
        // of the gap between dual-banked and the ideal assumption.
        let prog = assemble(
            "    li t0, 9
                 li t2, 5
                 li s1, 200
            loop:
                 add t1, t0, t2     # same-bank pair before allocation
                 add t3, t0, t2
                 add t0, t1, t3
                 andi t0, t0, 1023
                 addi s1, s1, -1
                 bnez s1, loop
                 li a0, 1
                 li a7, 93
                 ecall",
            0,
        )
        .expect("assembles");
        let (fixed, stats) = allocate_banks(&prog);
        assert!(stats.conflicts_after < stats.conflicts_before);
        let run = |p: &Program, d| {
            let mut cpu = GateLevelCpu::new(d, PipelineConfig::sodor());
            cpu.run(p, 1 << 20, 1_000_000).expect("runs").stats.cpi()
        };
        let dual_naive = run(&prog, RfDesign::DualBanked);
        let dual_alloc = run(&fixed, RfDesign::DualBanked);
        let ideal = run(&prog, RfDesign::DualBankedIdeal);
        assert!(
            dual_alloc < dual_naive,
            "allocation must help: {dual_alloc} vs {dual_naive}"
        );
        assert!(
            dual_alloc - ideal < (dual_naive - ideal) * 0.5,
            "allocation should close most of the ideal gap: naive {dual_naive}, alloc {dual_alloc}, ideal {ideal}"
        );
    }

    /// Two small local kernels (keeps crate deps acyclic).
    mod sfq_workloads_local {
        pub fn sources() -> Vec<(&'static str, String)> {
            vec![
                (
                    "chain",
                    "li t0, 3\nli t2, 4\nadd t1, t0, t2\nadd a0, t1, t0\nsltu a0, zero, a0\nli a7, 93\necall"
                        .to_string(),
                ),
                (
                    "memory",
                    "li t0, 11\nsw t0, 64(zero)\nlw t1, 64(zero)\nsltu a0, zero, t1\nli a7, 93\necall"
                        .to_string(),
                ),
            ]
        }
    }
}
