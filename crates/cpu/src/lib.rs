//! # sfq-cpu — gate-level pipelined SFQ RISC-V CPU simulator
//!
//! The application-level evaluation substrate of the HiPerRF reproduction
//! (paper §VI-B): an in-order RV32I core with gate-level pipeline timing
//! (28 ps gate cycles, 28-deep execute stage, no branch prediction) whose
//! register file is one of the four designs of the paper — the NDRO
//! baseline, HiPerRF, dual-banked HiPerRF, or the compiler-ideal banked
//! variant. Running the same workload across the designs and comparing
//! CPI regenerates the paper's Figure 14.
//!
//! ## Example
//!
//! ```
//! use hiperrf::delay::RfDesign;
//! use sfq_cpu::config::PipelineConfig;
//! use sfq_cpu::pipeline::GateLevelCpu;
//! use sfq_riscv::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble("li a0, 1\nli a7, 93\necall", 0)?;
//! let mut cpu = GateLevelCpu::new(RfDesign::HiPerRf, PipelineConfig::sodor());
//! let out = cpu.run(&prog, 4096, 1000)?;
//! assert_eq!(out.exit_code, 1);
//! assert!(out.stats.cpi() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod bankalloc;
pub mod config;
pub mod pipeline;
pub mod reorder;
pub mod stats;

pub use config::PipelineConfig;
pub use pipeline::{GateLevelCpu, InstrTiming, RunError, RunOutcome};
pub use stats::{PipelineStats, StallBin, StallKind};
