//! The gate-level pipelined in-order CPU timing model.
//!
//! Mirrors the paper's simulator (§VI-B): a functional RV32I executor
//! (our stand-in for Spike) drives an analytic gate-level timing model.
//! Gates are clocked at 28 ps; the register file is accessed on the 53 ps
//! RF clock (two gate cycles); the execute stage is a 28-deep gate
//! pipeline, so read-after-write dependencies in a short window stall for
//! tens of gate cycles — the reason average CPI lands near 30.
//!
//! The register file plugs in through the [`RfBackend`] trait, which
//! contributes both timing and data:
//!
//! * the static issue interval (2 / 3 / 2-or-4 RF cycles, §IV-D, §V-B);
//! * the post-P&R readout latency (Table IV) on every operand read;
//! * the loopback-restore window during which a just-read register is
//!   unreadable (RAR hazards are satisfied by duplicating the readout when
//!   both sources of one instruction name the same register);
//! * whether internal write-to-read forwarding exists (baseline only);
//! * the operand *values* themselves — every architectural read and write
//!   is issued as backend traffic, so the [`hiperrf::PulseRf`] backend
//!   co-simulates the instruction stream against the structural netlists
//!   while [`hiperrf::AnalyticRf`] keeps the fast closed-form path.
//!
//! The backend's robustness counters (value corruption, timing
//! violations, degraded pulse drops) are threaded into [`RunOutcome`] so
//! injected faults surface as application-level degradation.

use hiperrf::backend::{AnalyticRf, RfBackend, RfHealth};
use hiperrf::config::RfGeometry;
use hiperrf::delay::RfDesign;
use sfq_riscv::exec::{Cpu, ExecError, StepOutcome};
use sfq_riscv::isa::Reg;
use sfq_riscv::mem::Memory;
use sfq_riscv::Program;
use sfq_sim::fault::FaultPlan;
use sfq_sim::violation::ViolationPolicy;

use crate::config::PipelineConfig;
use crate::stats::PipelineStats;

/// Error from a pipeline run.
#[derive(Debug)]
pub enum RunError {
    /// The functional model faulted.
    Exec(ExecError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "functional model: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ExecError> for RunError {
    fn from(e: ExecError) -> Self {
        RunError::Exec(e)
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// The program's exit code (from `a0` at the exit ecall).
    pub exit_code: u32,
    /// Timing statistics.
    pub stats: PipelineStats,
    /// Register-file robustness counters: value corruption, timing
    /// violations, and degraded pulse drops observed by the backend.
    pub rf: RfHealth,
}

/// Per-instruction timing record from a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Fetch address.
    pub pc: u32,
    /// The retired instruction.
    pub instr: sfq_riscv::isa::Instr,
    /// Gate cycle of the register-file access.
    pub t_rf: u64,
    /// Gate cycle the operands reached the execute stage.
    pub t_op: u64,
    /// Gate cycle the write-back completed.
    pub t_wb: u64,
}

/// The gate-level pipelined CPU.
pub struct GateLevelCpu {
    backend: Box<dyn RfBackend>,
    config: PipelineConfig,
}

impl std::fmt::Debug for GateLevelCpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateLevelCpu")
            .field("backend", &self.backend.label())
            .field("arch_design", &self.backend.arch_design())
            .field("config", &self.config)
            .finish()
    }
}

impl GateLevelCpu {
    /// Creates a CPU around the analytic model of a register-file design
    /// (32×32 RF geometry) — the fast closed-form path the CPI sweeps use.
    pub fn new(design: RfDesign, config: PipelineConfig) -> Self {
        Self::with_backend(
            Box::new(AnalyticRf::new(design, RfGeometry::paper_32x32())),
            config,
        )
    }

    /// Creates a CPU around an arbitrary register-file backend — e.g. a
    /// [`hiperrf::PulseRf`] to co-simulate against a structural netlist.
    pub fn with_backend(backend: Box<dyn RfBackend>, config: PipelineConfig) -> Self {
        GateLevelCpu { backend, config }
    }

    /// The analytic design whose schedule times accesses, if the backend
    /// has one (`None` for the bit-serial shift register).
    pub fn arch_design(&self) -> Option<RfDesign> {
        self.backend.arch_design()
    }

    /// The register-file backend.
    pub fn backend(&self) -> &dyn RfBackend {
        self.backend.as_ref()
    }

    /// The register-file backend, mutably.
    pub fn backend_mut(&mut self) -> &mut dyn RfBackend {
        self.backend.as_mut()
    }

    /// Sets how the backend reacts to timing violations (meaningful for
    /// pulse backends only).
    pub fn set_violation_policy(&mut self, policy: ViolationPolicy) {
        self.backend.set_violation_policy(policy);
    }

    /// Installs a seeded fault plan in the backend (meaningful for pulse
    /// backends only).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.backend.set_fault_plan(plan);
    }

    /// Runs `program` to completion (exit ecall) with an instruction
    /// budget, returning the exit code and timing statistics.
    ///
    /// # Errors
    ///
    /// Functional-model faults, timeouts, and (as internal assertion)
    /// schedule/hazard violations.
    pub fn run(
        &mut self,
        program: &Program,
        mem_size: usize,
        budget: u64,
    ) -> Result<RunOutcome, RunError> {
        self.run_impl(program, mem_size, budget, None)
    }

    /// Like [`GateLevelCpu::run`], additionally recording a per-instruction
    /// timeline (RF access, operand arrival, write-back) into `trace`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GateLevelCpu::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        mem_size: usize,
        budget: u64,
        trace: &mut Vec<InstrTiming>,
    ) -> Result<RunOutcome, RunError> {
        self.run_impl(program, mem_size, budget, Some(trace))
    }

    fn run_impl(
        &mut self,
        program: &Program,
        mem_size: usize,
        budget: u64,
        mut trace: Option<&mut Vec<InstrTiming>>,
    ) -> Result<RunOutcome, RunError> {
        let mut mem = Memory::new(mem_size);
        mem.load_image(program.base, &program.words);
        let mut cpu = Cpu::new(program.symbol("_start").unwrap_or(program.base));
        let mut stats = PipelineStats::default();

        // Timing state (all in gate cycles).
        let readout = self.backend.readout_gate_cycles();
        let loopback = self.backend.loopback_gate_cycles();
        let forwarding = self.backend.supports_internal_forwarding();
        let mut value_ready = [0u64; 32]; // producer write-back completion
        let mut loopback_ready = [0u64; 32]; // restore completion per register
        let mut next_port_slot = 0u64; // earliest next RF access
        let mut last_rf = 0u64; // previous instruction's RF access time
        let mut fetch_ready = 0u64; // control-flow redirect barrier
        let mut last_wb = 0u64;
        // Mirror of the functional model's architectural state *before*
        // the current instruction — the expectation handed to the backend
        // on every source read.
        let mut shadow = [0u32; 32];

        loop {
            let pc_before = cpu.pc;
            let outcome = cpu.step(&mut mem)?;
            let fell_through = cpu.pc == pc_before.wrapping_add(4);
            let instr = match outcome {
                StepOutcome::Retired(i) => i,
                StepOutcome::Halted(code) => {
                    stats.retired = cpu.retired;
                    stats.gate_cycles = last_wb.max(fetch_ready);
                    return Ok(RunOutcome {
                        exit_code: code,
                        stats,
                        rf: self.backend.health(),
                    });
                }
            };
            if cpu.retired > budget {
                return Err(RunError::Exec(ExecError::Timeout {
                    executed: cpu.retired,
                }));
            }

            // --- Timing model for this instruction ---
            let mut srcs: Vec<Reg> = instr.sources();
            srcs.sort_by_key(|r| r.index());
            if srcs.len() == 2 && srcs[0] == srcs[1] {
                // Same register read twice: duplicate the readout
                // (paper §IV-D) — a single port access.
                srcs.pop();
                stats.rar_duplications += 1;
            }
            let src_idx: Vec<usize> = srcs.iter().map(|r| r.index()).collect();

            // Issue the operand traffic through the backend: every source
            // read carries the functional model's pre-step value as the
            // expectation, and the destination write installs the
            // post-step value. The analytic backend mirrors; the pulse
            // backend drives the event simulator.
            for &r in &src_idx {
                let _ = self.backend.read(r, shadow[r]);
            }
            if let Some(rd) = instr.rd() {
                let v = cpu.reg(rd);
                self.backend.write(rd.index(), v);
                shadow[rd.index()] = v;
            }

            // Earliest time the RF read can fire, with stall attribution.
            // Port pipelining at the baseline two-RF-cycle rate is the
            // no-stall reference; anything beyond it is attributed to its
            // binding constraint.
            let mut t = next_port_slot;
            let port_wait = next_port_slot.saturating_sub(last_rf + 4);
            stats.port_stall_cycles += port_wait;
            if port_wait > 0 {
                stats.port_stall_events += 1;
            }
            if fetch_ready > t {
                stats.control_stall_cycles += fetch_ready - t;
                stats.control_stall_events += 1;
                t = fetch_ready;
            }
            let t_raw = src_idx.iter().map(|&r| value_ready[r]).max().unwrap_or(0);
            let t_loop = src_idx
                .iter()
                .map(|&r| loopback_ready[r])
                .max()
                .unwrap_or(0);
            if t_raw > t {
                stats.raw_stall_cycles += t_raw - t;
                stats.raw_stall_events += 1;
                t = t_raw;
            }
            if t_loop > t {
                stats.loopback_stall_cycles += t_loop - t;
                stats.loopback_stall_events += 1;
                t = t_loop;
            }
            let t_rf = t;
            last_rf = t_rf;

            // The loopback hazard window is enforced by construction:
            // t_rf >= loopback_ready[src] for every source read above.
            debug_assert!(src_idx.iter().all(|&r| t_rf >= loopback_ready[r]));

            // Bank-conflict accounting for the dual-banked design.
            if self.backend.arch_design() == Some(RfDesign::DualBanked)
                && src_idx.len() == 2
                && hiperrf::banked::bank_of(src_idx[0]) == hiperrf::banked::bank_of(src_idx[1])
            {
                stats.bank_conflicts += 1;
            }

            // Loopback restores begin for every register actually read.
            if let Some(lb) = loopback {
                for &r in &src_idx {
                    loopback_ready[r] = t_rf + lb;
                }
            }

            // Operand availability: the last source read fires at its
            // schedule slot, then the readout path delivers the operand.
            let gather = self.backend.operand_gather_gate_cycles(&src_idx);
            let t_op = if src_idx.is_empty() {
                t_rf
            } else {
                t_rf + gather + readout
            };
            let mem_extra = if instr.is_memory() {
                self.config.mem_latency
            } else {
                0
            };
            let t_ex_done = t_op + self.config.ex_depth + mem_extra;
            let t_wb = t_ex_done + self.config.wb_gates;

            if let Some(rd) = instr.rd() {
                let r = rd.index();
                value_ready[r] = if forwarding {
                    t_wb
                } else {
                    t_wb + self.config.no_forward_penalty
                };
                // The write's erase read happens before the new value
                // lands, so no restore is in flight afterwards; the
                // register is readable as soon as the value is.
            }
            let _ = loopback; // loopback_ready is only set by reads

            // Control-flow instructions stall fetch until they resolve —
            // the in-order SFQ core has no branch prediction — unless the
            // ablation's not-taken predictor is on, in which case
            // fall-through conditional branches cost nothing.
            let predicted = self.config.predict_not_taken
                && fell_through
                && matches!(instr, sfq_riscv::isa::Instr::Branch { .. });
            if instr.is_control_flow() && !predicted {
                fetch_ready = t_ex_done + self.config.redirect_gates;
            }

            next_port_slot = t_rf + self.backend.issue_interval_gate_cycles(&src_idx);
            last_wb = last_wb.max(t_wb);

            if let Some(t) = trace.as_deref_mut() {
                t.push(InstrTiming {
                    pc: pc_before,
                    instr,
                    t_rf,
                    t_op,
                    t_wb,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_riscv::asm::assemble;

    fn run_on(design: RfDesign, src: &str) -> RunOutcome {
        let prog = assemble(src, 0).expect("assembles");
        let mut cpu = GateLevelCpu::new(design, PipelineConfig::sodor());
        cpu.run(&prog, 1 << 20, 10_000_000).expect("runs")
    }

    const DEP_CHAIN: &str = "
        li t0, 1
        add t1, t0, t0
        add t2, t1, t1
        add t3, t2, t2
        add t4, t3, t3
        mv a0, t4
        li a7, 93
        ecall";

    const INDEPENDENT: &str = "
        li t0, 1
        li t1, 2
        li t2, 3
        li t3, 4
        li t4, 5
        li t5, 6
        li a0, 0
        li a7, 93
        ecall";

    #[test]
    fn functional_results_identical_across_designs() {
        let src = "
            li t0, 6
            li t1, 7
            li a0, 0
        loop:
            add a0, a0, t0
            addi t1, t1, -1
            bnez t1, loop
            li a7, 93
            ecall";
        let mut codes = vec![];
        for d in RfDesign::ALL {
            codes.push(run_on(d, src).exit_code);
        }
        assert!(codes.iter().all(|&c| c == 42), "codes {codes:?}");
    }

    #[test]
    fn dependent_chain_is_raw_bound() {
        let out = run_on(RfDesign::NdroBaseline, DEP_CHAIN);
        assert!(out.stats.raw_stall_cycles > 0);
        // Each dependent instruction waits for ~EX depth.
        assert!(out.stats.cpi() > 20.0, "cpi {}", out.stats.cpi());
    }

    #[test]
    fn independent_code_is_port_bound() {
        let out = run_on(RfDesign::NdroBaseline, INDEPENDENT);
        assert!(out.stats.cpi() < 15.0, "cpi {}", out.stats.cpi());
    }

    #[test]
    fn hiperrf_slower_than_baseline() {
        let base = run_on(RfDesign::NdroBaseline, DEP_CHAIN);
        let hi = run_on(RfDesign::HiPerRf, DEP_CHAIN);
        assert!(hi.stats.cpi() > base.stats.cpi());
    }

    #[test]
    fn banked_between_baseline_and_hiperrf() {
        // A mixed workload: dual-banked should land between the two.
        let src = "
            li t0, 100
            li a0, 0
        loop:
            add a0, a0, t0
            srli t1, a0, 1
            add a0, a0, t1
            andi a0, a0, 255
            addi t0, t0, -1
            bnez t0, loop
            li a7, 93
            ecall";
        let base = run_on(RfDesign::NdroBaseline, src).stats.cpi();
        let dual = run_on(RfDesign::DualBanked, src).stats.cpi();
        let hi = run_on(RfDesign::HiPerRf, src).stats.cpi();
        assert!(base <= dual, "base {base} dual {dual}");
        assert!(dual <= hi, "dual {dual} hi {hi}");
    }

    #[test]
    fn ideal_banked_no_conflicts() {
        // t0 (x5, odd bank) and t1 (x6, even bank) conflict-free; s0/s1
        // (x8/x9) likewise; but x5,x7 collide in the real banked design.
        let src = "
            li t0, 1
            li t2, 2
            add a0, t0, t2
            add a1, t0, t2
            li a7, 93
            ecall";
        let real = run_on(RfDesign::DualBanked, src);
        let ideal = run_on(RfDesign::DualBankedIdeal, src);
        assert!(real.stats.bank_conflicts > 0);
        assert_eq!(ideal.stats.bank_conflicts, 0);
        assert!(ideal.stats.gate_cycles <= real.stats.gate_cycles);
    }

    #[test]
    fn rar_duplication_counted() {
        let src = "
            li t0, 21
            add a0, t0, t0
            li a7, 93
            ecall";
        let out = run_on(RfDesign::HiPerRf, src);
        assert_eq!(out.stats.rar_duplications, 1);
        assert_eq!(out.exit_code, 42);
    }

    #[test]
    fn traced_run_records_monotone_timeline() {
        let prog = assemble(DEP_CHAIN, 0).expect("assembles");
        let mut cpu = GateLevelCpu::new(RfDesign::HiPerRf, PipelineConfig::sodor());
        let mut trace = Vec::new();
        let out = cpu
            .run_traced(&prog, 1 << 20, 10_000, &mut trace)
            .expect("runs");
        // The halting ecall is not traced; everything else is.
        assert_eq!(trace.len() as u64, out.stats.retired - 1);
        for rec in &trace {
            assert!(rec.t_rf <= rec.t_op && rec.t_op < rec.t_wb, "{rec:?}");
        }
        // RF accesses are issued in order.
        for w in trace.windows(2) {
            assert!(w[0].t_rf <= w[1].t_rf);
        }
    }

    #[test]
    fn not_taken_prediction_cuts_control_stalls() {
        // A loop whose final fall-through branch dominates: with the
        // predictor, only taken back-edges redirect.
        let src = "
            li t0, 40
            li a0, 0
        loop:
            addi a0, a0, 1
            beq a0, zero, loop   # never taken: pure prediction win
            addi t0, t0, -1
            bnez t0, loop        # taken back edge: still redirects
            li a7, 93
            ecall";
        let prog = assemble(src, 0).expect("assembles");
        let base = {
            let mut cpu = GateLevelCpu::new(RfDesign::NdroBaseline, PipelineConfig::sodor());
            cpu.run(&prog, 1 << 20, 100_000).expect("runs").stats
        };
        let pred = {
            let mut cpu = GateLevelCpu::new(
                RfDesign::NdroBaseline,
                PipelineConfig::sodor_with_prediction(),
            );
            cpu.run(&prog, 1 << 20, 100_000).expect("runs").stats
        };
        assert!(pred.control_stall_cycles < base.control_stall_cycles);
        assert!(
            pred.cpi() < base.cpi(),
            "pred {} base {}",
            pred.cpi(),
            base.cpi()
        );
    }

    #[test]
    fn stats_accumulate_consistently() {
        let out = run_on(RfDesign::HiPerRf, DEP_CHAIN);
        assert_eq!(out.stats.retired, 8);
        assert!(out.stats.gate_cycles > 0);
    }
}
