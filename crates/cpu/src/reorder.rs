//! RAW-spreading instruction scheduler.
//!
//! The paper observes (§VI-B) that conventional compilers place dependent
//! instructions close together to exploit forwarding, but deeply
//! gate-pipelined SFQ cores want the opposite: *"SFQ based CPUs require
//! quite the opposite — to spread the RAW dependency instructions as far
//! apart as possible."* This pass implements that compiler transformation
//! as a post-assembly reordering and lets the ablation harness measure its
//! CPI effect on each register-file design.
//!
//! The pass permutes instructions only **within basic blocks** (leaders =
//! every label, instructions after control flow; barriers = control flow,
//! `ecall`/`ebreak`/`fence`, PC-relative `auipc`, and undecodable data
//! words), preserves all register and memory dependencies (RAW/WAR/WAW;
//! loads may reorder with loads but never cross stores), and therefore
//! preserves program semantics — asserted by differential execution tests.

use std::collections::HashSet;

use sfq_riscv::decode::decode;
use sfq_riscv::encode::encode;
use sfq_riscv::isa::Instr;
use sfq_riscv::Program;

/// Statistics from one reordering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorderStats {
    /// Basic blocks considered.
    pub blocks: u32,
    /// Instructions moved from their original slot.
    pub moved: u32,
}

/// Applies the RAW-spreading schedule to a program, returning the new
/// program and statistics. Labels and branch targets remain valid because
/// only straight-line, non-PC-relative instructions move, and only within
/// their block.
pub fn spread_raw_dependencies(program: &Program) -> (Program, ReorderStats) {
    let leaders: HashSet<usize> = program
        .symbols
        .values()
        .filter_map(|&addr| {
            let off = addr.checked_sub(program.base)? as usize;
            (off.is_multiple_of(4)).then_some(off / 4)
        })
        .collect();

    let mut words = program.words.clone();
    let mut stats = ReorderStats::default();
    let mut block_start = 0usize;

    let flush = |range: std::ops::Range<usize>, words: &mut Vec<u32>, stats: &mut ReorderStats| {
        if range.len() >= 3 {
            stats.blocks += 1;
            let instrs: Vec<Instr> = range
                .clone()
                .map(|i| decode(words[i]).expect("block is decodable"))
                .collect();
            let order = schedule_block(&instrs);
            for (slot, &src) in order.iter().enumerate() {
                if src != slot {
                    stats.moved += 1;
                }
                words[range.start + slot] = encode(instrs[src]);
            }
        }
    };

    for i in 0..words.len() {
        let is_data = program.kinds.get(i) == Some(&sfq_riscv::WordKind::Data);
        let barrier = is_data
            || match decode(words[i]) {
                Ok(instr) => {
                    instr.is_control_flow()
                        || matches!(instr, Instr::Ecall | Instr::Ebreak | Instr::Fence)
                        || matches!(instr, Instr::Auipc { .. })
                }
                Err(_) => true, // unknown encoding: treat as a barrier
            };
        if leaders.contains(&i) && i > block_start {
            flush(block_start..i, &mut words, &mut stats);
            block_start = i;
        }
        if barrier {
            flush(block_start..i, &mut words, &mut stats);
            block_start = i + 1;
        }
    }
    flush(block_start..words.len(), &mut words, &mut stats);

    (
        Program {
            words,
            kinds: program.kinds.clone(),
            symbols: program.symbols.clone(),
            base: program.base,
        },
        stats,
    )
}

/// Dependency-respecting greedy list schedule maximizing producer-consumer
/// distance. Returns the order as indices into `instrs`.
fn schedule_block(instrs: &[Instr]) -> Vec<usize> {
    let n = instrs.len();
    // preds[i] = indices that must precede i.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_write: [Option<usize>; 32] = [None; 32];
    let mut readers_since_write: Vec<Vec<usize>> = vec![Vec::new(); 32];
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();

    for (i, instr) in instrs.iter().enumerate() {
        for src in instr.sources() {
            if let Some(w) = last_write[src.index()] {
                preds[i].push(w); // RAW
            }
            readers_since_write[src.index()].push(i);
        }
        if let Some(rd) = instr.rd() {
            let r = rd.index();
            if let Some(w) = last_write[r] {
                preds[i].push(w); // WAW
            }
            for &reader in &readers_since_write[r] {
                if reader != i {
                    preds[i].push(reader); // WAR
                }
            }
            readers_since_write[r].clear();
            last_write[r] = Some(i);
        }
        if instr.is_memory() {
            let is_store = matches!(instr, Instr::Store { .. });
            if let Some(s) = last_store {
                preds[i].push(s); // any mem op after a store
            }
            if is_store {
                preds[i].append(&mut loads_since_store); // store after loads
                last_store = Some(i);
            } else {
                loads_since_store.push(i);
            }
        }
    }

    // Greedy list scheduling: at each slot pick the ready instruction
    // whose latest predecessor was scheduled earliest (maximizing RAW
    // distance), tie-breaking on original order for determinism.
    let mut sched_slot: Vec<Option<usize>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    for slot in 0..n {
        let mut best: Option<(usize, usize)> = None; // (latest_pred_slot, index)
        for i in 0..n {
            if sched_slot[i].is_some() {
                continue;
            }
            if preds[i].iter().any(|&p| sched_slot[p].is_none()) {
                continue;
            }
            let latest = preds[i]
                .iter()
                .map(|&p| sched_slot[p].expect("scheduled"))
                .max();
            let key = latest.map_or(0, |l| l + 1);
            if best.is_none_or(|(bk, bi)| key < bk || (key == bk && i < bi)) {
                best = Some((key, i));
            }
        }
        let (_, pick) = best.expect("dependency graph is acyclic");
        sched_slot[pick] = Some(slot);
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_riscv::asm::assemble;
    use sfq_riscv::exec::Cpu;
    use sfq_riscv::mem::Memory;

    fn run(program: &Program) -> (u32, u64) {
        let mut mem = Memory::new(1 << 20);
        mem.load_image(program.base, &program.words);
        let mut cpu = Cpu::new(program.base);
        let code = cpu.run(&mut mem, 1_000_000).expect("runs");
        (code, cpu.retired)
    }

    #[test]
    fn semantics_preserved_on_straight_line_code() {
        let prog = assemble(
            "li t0, 1
             add t1, t0, t0
             li t2, 10
             li t3, 20
             add t4, t1, t1
             add t5, t2, t3
             add a0, t4, t5
             li a7, 93
             ecall",
            0,
        )
        .expect("assembles");
        let (reordered, stats) = spread_raw_dependencies(&prog);
        assert!(
            stats.moved > 0,
            "independent li's should move between the adds"
        );
        assert_eq!(run(&prog).0, run(&reordered).0);
    }

    #[test]
    fn memory_ordering_preserved() {
        let prog = assemble(
            "li t0, 5
             sw t0, 100(zero)
             li t1, 9
             sw t1, 100(zero)     # WAW to same address
             lw a0, 100(zero)
             li a7, 93
             ecall",
            0,
        )
        .expect("assembles");
        let (reordered, _) = spread_raw_dependencies(&prog);
        assert_eq!(run(&reordered).0, 9, "later store must still win");
    }

    #[test]
    fn war_hazards_respected() {
        let prog = assemble(
            "li t0, 3
             add t1, t0, t0       # reads t0
             li t0, 100           # WAR on t0: must not move above the add
             add a0, t1, zero
             li a7, 93
             ecall",
            0,
        )
        .expect("assembles");
        let (reordered, _) = spread_raw_dependencies(&prog);
        assert_eq!(run(&reordered).0, 6);
    }

    #[test]
    fn loops_and_labels_survive() {
        let prog = assemble(
            "    li t0, 0
                 li t1, 8
            loop:
                 addi t0, t0, 3
                 addi t1, t1, -1
                 bnez t1, loop
                 mv a0, t0
                 li a7, 93
                 ecall",
            0,
        )
        .expect("assembles");
        let (reordered, _) = spread_raw_dependencies(&prog);
        assert_eq!(run(&prog), run(&reordered));
        assert_eq!(run(&reordered).0, 24);
    }

    #[test]
    fn data_words_never_move() {
        let prog = assemble(
            "    la t0, data
                 lw a0, 0(t0)
                 li a7, 93
                 ecall
            data:
                 .word 77",
            0,
        )
        .expect("assembles");
        let (reordered, _) = spread_raw_dependencies(&prog);
        assert_eq!(*reordered.words.last().expect("data word"), 77);
        assert_eq!(run(&reordered).0, 77);
    }

    #[test]
    fn all_workloads_survive_reordering() {
        for w in sfq_workloads_suite() {
            let prog = assemble(&w.0, 0).expect("assembles");
            let (reordered, _) = spread_raw_dependencies(&prog);
            let mut mem = Memory::new(1 << 20);
            mem.load_image(0, &reordered.words);
            let mut cpu = Cpu::new(0);
            let code = cpu.run(&mut mem, 20_000_000).expect("runs");
            assert_eq!(code, 1, "workload {} broke under reordering", w.1);
        }
    }

    /// Local mirror of the workload suite to avoid a dev-dependency cycle
    /// (sfq-workloads does not depend on sfq-cpu, but keeping cpu's deps
    /// minimal keeps build layering clean); uses two small inline kernels.
    fn sfq_workloads_suite() -> Vec<(String, &'static str)> {
        vec![
            (
                "_start:
                    li s0, 0
                    li s1, 100
                 l: addi s0, s0, 7
                    andi s0, s0, 255
                    addi s1, s1, -1
                    bnez s1, l
                    li a0, 1
                    li a7, 93
                    ecall"
                    .to_string(),
                "inline-loop",
            ),
            (
                "_start:
                    li t0, 0
                    li t1, 64
                    li t2, 0
                 m: slli t3, t2, 2
                    sw t2, 256(t3)
                    lw t4, 256(t3)
                    add t0, t0, t4
                    addi t2, t2, 1
                    blt t2, t1, m
                    li a0, 1
                    li a7, 93
                    ecall"
                    .to_string(),
                "inline-memory",
            ),
        ]
    }
}
