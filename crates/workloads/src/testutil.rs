//! Test helpers shared by the kernel self-check tests.

use sfq_riscv::asm::assemble;
use sfq_riscv::exec::Cpu;
use sfq_riscv::mem::Memory;

use crate::workload::Workload;

/// Assembles and runs a workload on the functional simulator, returning
/// the exit code.
///
/// # Panics
///
/// Panics if the workload fails to assemble or faults.
pub fn run_functional(w: &Workload) -> u32 {
    let prog = assemble(&w.source, 0)
        .unwrap_or_else(|e| panic!("workload `{}` failed to assemble: {e}", w.name));
    let mut mem = Memory::new(w.mem_size);
    mem.load_image(prog.base, &prog.words);
    let mut cpu = Cpu::new(prog.symbol("_start").unwrap_or(0));
    cpu.run(&mut mem, w.budget)
        .unwrap_or_else(|e| panic!("workload `{}` faulted: {e}", w.name))
}
