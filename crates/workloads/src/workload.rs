//! Workload definitions and helpers.
//!
//! Each workload is an RV32I assembly kernel with embedded data, a memory
//! size, an instruction budget, and a self-check: the program exits with
//! `a0 = 1` on success (`a0 = 0` or another value signals a failed check,
//! which the test suite treats as a workload bug).
//!
//! The suite mirrors the paper's Figure 14 benchmark list: the riscv-tests
//! kernels (vvadd, multiply, median, qsort, rsort, towers, mm, spmv, plus a
//! dhrystone-like mixed kernel) and synthetic stand-ins for the four SPEC
//! CPU 2006 workloads the paper could run (429.mcf, 458.sjeng,
//! 462.libquantum, 999.specrand). The stand-ins reproduce the register
//! read/write and dependency *patterns* that drive the CPI differences —
//! pointer-chasing RAW chains for mcf, branchy tree search for sjeng,
//! streaming bit kernels for libquantum, and a pure LCG loop for specrand.

use std::fmt::Write as _;

/// Exit code a workload returns when its self-check passes.
pub const PASS: u32 = 1;

/// A runnable benchmark kernel.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (matches the paper's Figure 14 x-axis).
    pub name: &'static str,
    /// RV32I assembly source (assembled at base 0, entry `_start`).
    pub source: String,
    /// Memory size in bytes.
    pub mem_size: usize,
    /// Instruction budget for the run.
    pub budget: u64,
}

impl Workload {
    /// Creates a workload with default memory and budget.
    pub fn new(name: &'static str, source: String) -> Self {
        Workload {
            name,
            source,
            mem_size: 1 << 20,
            budget: 20_000_000,
        }
    }
}

/// Formats a `.word` directive block (16 words per line).
pub fn words(data: &[u32]) -> String {
    let mut out = String::new();
    for chunk in data.chunks(16) {
        let line: Vec<String> = chunk.iter().map(|w| format!("{w}")).collect();
        let _ = writeln!(out, "    .word {}", line.join(", "));
    }
    out
}

/// A tiny deterministic generator (32-bit LCG) for embedding reproducible
/// pseudo-random data without floating time-dependence.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u32,
}

impl Lcg {
    /// Multiplier (Numerical Recipes).
    pub const A: u32 = 1_664_525;
    /// Increment.
    pub const C: u32 = 1_013_904_223;

    /// Creates a generator from a seed.
    pub fn new(seed: u32) -> Self {
        Lcg { state: seed }
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(Self::A).wrapping_add(Self::C);
        self.state
    }

    /// Next value in `0..bound`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_formats_in_lines() {
        let d: Vec<u32> = (0..20).collect();
        let s = words(&d);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains(".word 0, 1,"));
        assert!(s.contains(".word 16, 17, 18, 19"));
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn lcg_bounds() {
        let mut g = Lcg::new(7);
        for _ in 0..1000 {
            assert!(g.next_below(100) < 100);
        }
    }
}
