//! # sfq-workloads — the benchmark suite for the HiPerRF evaluation
//!
//! RV32I kernels standing in for the paper's Figure 14 benchmarks: the
//! riscv-tests kernels (vvadd, multiply, median, qsort, rsort, towers, mm,
//! spmv, a dhrystone-like mixed kernel) and synthetic equivalents of the
//! four SPEC CPU 2006 workloads the paper ran (429.mcf, 458.sjeng,
//! 462.libquantum, 999.specrand). Every kernel self-checks and exits with
//! code 1 on success, so functional regressions in the toolchain or the
//! pipeline simulator are caught immediately.
//!
//! ```
//! use sfq_workloads::suite;
//!
//! let all = suite();
//! assert!(all.iter().any(|w| w.name == "towers"));
//! ```

pub mod kernels;
pub mod testutil;
pub mod workload;

pub use workload::{Lcg, Workload, PASS};

/// The miniature kernels sized for pulse-level co-simulation: the same
/// hazard patterns as the Figure 14 suite (ALU chains, memory round
/// trips, branchy loops) compressed into a few hundred retired
/// instructions so every access can drive the event-driven netlists.
pub fn cosim_suite() -> Vec<Workload> {
    vec![
        kernels::cosim::cosim_alu(),
        kernels::cosim::cosim_mem(),
        kernels::cosim::cosim_branch(),
    ]
}

/// The full Figure 14 benchmark suite, in the paper's display order.
pub fn suite() -> Vec<Workload> {
    vec![
        kernels::towers::towers(),
        kernels::vector::vvadd(),
        kernels::vector::multiply(),
        kernels::matrix::mm(),
        kernels::dhrystone::dhrystone(),
        kernels::filter::median(),
        kernels::sort::qsort(),
        kernels::sort::rsort(),
        kernels::matrix::spmv(),
        kernels::spec_like::mcf_like(),
        kernels::spec_like::sjeng_like(),
        kernels::spec_like::libquantum_like(),
        kernels::spec_like::specrand(),
    ]
}
