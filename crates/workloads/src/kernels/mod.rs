//! The benchmark kernels of the Figure 14 suite.

pub mod cosim;
pub mod dhrystone;
pub mod filter;
pub mod matrix;
pub mod sort;
pub mod spec_like;
pub mod towers;
pub mod vector;
