//! Matrix kernels: `mm` (dense matrix multiply) and `spmv` (CSR sparse
//! matrix-vector product), riscv-tests style. RV32I has no hardware
//! multiplier, so both use a shift-add `mul` subroutine.

use crate::workload::{words, Lcg, Workload};

const MUL_SUB: &str = "
# a0 = a1 * a2 (shift-add; clobbers t0, a1, a2)
softmul:
    li   a0, 0
sm_loop:
    andi t0, a2, 1
    beqz t0, sm_skip
    add  a0, a0, a1
sm_skip:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, sm_loop
    ret
";

/// 8×8 dense matrix multiply with checksum self-check.
pub fn mm() -> Workload {
    const DIM: usize = 8;
    let mut g = Lcg::new(0x88);
    let a: Vec<u32> = (0..DIM * DIM).map(|_| g.next_below(64)).collect();
    let b: Vec<u32> = (0..DIM * DIM).map(|_| g.next_below(64)).collect();
    let mut c = vec![0u32; DIM * DIM];
    for i in 0..DIM {
        for j in 0..DIM {
            for k in 0..DIM {
                c[i * DIM + j] =
                    c[i * DIM + j].wrapping_add(a[i * DIM + k].wrapping_mul(b[k * DIM + j]));
            }
        }
    }
    let expected = c.iter().fold(0u32, |s, &v| s.wrapping_add(v));

    let source = format!(
        "_start:
    li   sp, {sp_top}
    li   s0, 0            # i
    li   s11, 0           # checksum
row:
    li   s1, 0            # j
col:
    li   s2, 0            # k
    li   s3, 0            # acc
dot:
    # a1 = A[i*DIM + k]
    slli t0, s0, {log_dim}
    add  t0, t0, s2
    slli t0, t0, 2
    la   t1, mat_a
    add  t0, t0, t1
    lw   a1, 0(t0)
    # a2 = B[k*DIM + j]
    slli t0, s2, {log_dim}
    add  t0, t0, s1
    slli t0, t0, 2
    la   t1, mat_b
    add  t0, t0, t1
    lw   a2, 0(t0)
    call softmul
    add  s3, s3, a0
    addi s2, s2, 1
    li   t0, {dim}
    blt  s2, t0, dot
    add  s11, s11, s3     # accumulate checksum directly
    addi s1, s1, 1
    li   t0, {dim}
    blt  s1, t0, col
    addi s0, s0, 1
    li   t0, {dim}
    blt  s0, t0, row
    li   t0, {expected}
    beq  s11, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
{mul_sub}
mat_a:
{a_words}
mat_b:
{b_words}
",
        sp_top = 1 << 19,
        dim = DIM,
        log_dim = 3,
        expected = expected as i64,
        mul_sub = MUL_SUB,
        a_words = words(&a),
        b_words = words(&b),
    );
    Workload::new("mm", source)
}

/// CSR sparse matrix-vector product with checksum self-check.
pub fn spmv() -> Workload {
    const ROWS: usize = 24;
    const COLS: usize = 24;
    let mut g = Lcg::new(0x59);

    // Build a CSR matrix with ~25% density.
    let mut row_ptr = vec![0u32];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for _ in 0..ROWS {
        for c in 0..COLS {
            if g.next_below(4) == 0 {
                col_idx.push(c as u32);
                values.push(g.next_below(100));
            }
        }
        row_ptr.push(col_idx.len() as u32);
    }
    let x: Vec<u32> = (0..COLS).map(|_| g.next_below(100)).collect();

    let mut y = [0u32; ROWS];
    for r in 0..ROWS {
        for i in row_ptr[r] as usize..row_ptr[r + 1] as usize {
            y[r] = y[r].wrapping_add(values[i].wrapping_mul(x[col_idx[i] as usize]));
        }
    }
    let expected = y.iter().fold(0u32, |s, &v| s.wrapping_add(v));

    let source = format!(
        "_start:
    li   sp, {sp_top}
    li   s0, 0            # row
    li   s11, 0           # checksum
next_row:
    # bounds: i = row_ptr[r], end = row_ptr[r+1]
    la   t0, row_ptr
    slli t1, s0, 2
    add  t0, t0, t1
    lw   s1, 0(t0)        # i
    lw   s2, 4(t0)        # end
    li   s3, 0            # acc
row_loop:
    bge  s1, s2, row_done
    slli t0, s1, 2
    la   t1, col_idx
    add  t1, t1, t0
    lw   t2, 0(t1)        # column
    la   t1, vals
    add  t1, t1, t0
    lw   a1, 0(t1)        # value
    slli t2, t2, 2
    la   t1, vec_x
    add  t1, t1, t2
    lw   a2, 0(t1)        # x[col]
    call softmul
    add  s3, s3, a0
    addi s1, s1, 1
    j    row_loop
row_done:
    add  s11, s11, s3
    addi s0, s0, 1
    li   t0, {rows}
    blt  s0, t0, next_row
    li   t0, {expected}
    beq  s11, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
{mul_sub}
row_ptr:
{rp_words}
col_idx:
{ci_words}
vals:
{val_words}
vec_x:
{x_words}
",
        sp_top = 1 << 19,
        rows = ROWS,
        expected = expected as i64,
        mul_sub = MUL_SUB,
        rp_words = words(&row_ptr),
        ci_words = words(&col_idx),
        val_words = words(&values),
        x_words = words(&x),
    );
    Workload::new("spmv", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn mm_passes_self_check() {
        assert_eq!(run_functional(&mm()), 1);
    }

    #[test]
    fn spmv_passes_self_check() {
        assert_eq!(run_functional(&spmv()), 1);
    }
}
