//! `dhrystone`: a dhrystone-like mixed integer kernel.
//!
//! The original Dhrystone mixes record assignment, string comparison,
//! integer arithmetic, and branchy procedure calls. This kernel reproduces
//! that *mix* (load/store bursts, byte-string compares, call/return,
//! data-dependent branches) without copying the original source.

use crate::workload::{words, Lcg, Workload};

/// Runs a fixed number of dhrystone-like iterations; the self-check is a
/// checksum over the mutated record block.
pub fn dhrystone() -> Workload {
    const ITERS: u32 = 40;
    const REC_WORDS: usize = 16;
    let mut g = Lcg::new(0xd4);
    let rec_init: Vec<u32> = (0..REC_WORDS).map(|_| g.next_below(1000)).collect();
    let strings: Vec<u32> = (0..16).map(|_| g.next_below(26) + 97).collect(); // 'a'..'z'

    // Golden model in Rust.
    let mut rec = rec_init.clone();
    let mut acc: u32 = 0;
    for i in 0..ITERS {
        // "Proc1": copy record fields with arithmetic.
        for w in 0..REC_WORDS - 1 {
            rec[w] = rec[w + 1].wrapping_add(i);
        }
        rec[REC_WORDS - 1] = rec[0] ^ i;
        // "Func2": string-ish compare over the letters block.
        let mut eq = 0u32;
        for pair in strings.chunks(2) {
            if pair[0] == pair[1] {
                eq += 1;
            }
        }
        acc = acc.wrapping_add(eq).wrapping_add(rec[3]);
        // Branchy selection.
        acc = if acc & 1 == 0 {
            acc.wrapping_add(7)
        } else {
            acc.wrapping_sub(3)
        };
    }
    let expected = acc.wrapping_add(rec.iter().fold(0u32, |s, &v| s.wrapping_add(v)));

    let source = format!(
        "_start:
    li   sp, {sp_top}
    li   s0, 0            # i
    li   s1, 0            # acc
main_loop:
    # Proc1: shift record fields with arithmetic
    la   t0, record
    li   t1, {rec_shift}  # REC_WORDS - 1
p1: lw   t2, 4(t0)
    add  t2, t2, s0
    sw   t2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, p1
    la   t0, record
    lw   t2, 0(t0)
    xor  t2, t2, s0
    sw   t2, {last_off}(t0)
    # Func2: compare adjacent letters
    la   t0, letters
    li   t1, 8            # pairs
    li   t3, 0            # eq count
f2: lw   t4, 0(t0)
    lw   t5, 4(t0)
    bne  t4, t5, f2n
    addi t3, t3, 1
f2n:
    addi t0, t0, 8
    addi t1, t1, -1
    bnez t1, f2
    add  s1, s1, t3
    la   t0, record
    lw   t2, 12(t0)       # rec[3]
    add  s1, s1, t2
    # branchy adjust
    andi t2, s1, 1
    bnez t2, odd
    addi s1, s1, 7
    j    cont
odd:
    addi s1, s1, -3
cont:
    addi s0, s0, 1
    li   t0, {iters}
    blt  s0, t0, main_loop
    # checksum record
    la   t0, record
    li   t1, {rec_words}
cks:
    lw   t2, 0(t0)
    add  s1, s1, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, cks
    li   t0, {expected}
    beq  s1, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
record:
{rec_words_data}
letters:
{letters_data}
",
        sp_top = 1 << 19,
        rec_shift = REC_WORDS - 1,
        last_off = (REC_WORDS - 1) * 4,
        iters = ITERS,
        rec_words = REC_WORDS,
        expected = expected as i64,
        rec_words_data = words(&rec_init),
        letters_data = words(&strings),
    );
    Workload::new("dhrystone", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn dhrystone_passes_self_check() {
        assert_eq!(run_functional(&dhrystone()), 1);
    }
}
