//! Sorting kernels: `qsort` (in-place quicksort with an explicit stack)
//! and `rsort` (LSD radix sort), riscv-tests style.

use crate::workload::{words, Lcg, Workload};

/// In-place quicksort (Lomuto partition, explicit work stack), verified by
/// an in-assembly sortedness + checksum pass.
pub fn qsort() -> Workload {
    const N: usize = 64;
    let mut g = Lcg::new(0x9507);
    let data: Vec<u32> = (0..N).map(|_| g.next_below(100_000)).collect();
    let checksum = data.iter().fold(0u32, |s, &v| s.wrapping_add(v));

    // Registers: s0 = array base, stack of (lo, hi) index pairs kept on sp.
    let source = format!(
        "_start:
    la   s0, q_data
    li   sp, {sp_top}
    # push (0, n-1)
    addi sp, sp, -8
    li   t0, 0
    sw   t0, 0(sp)
    li   t0, {hi0}
    sw   t0, 4(sp)
work:
    li   t0, {sp_top}
    beq  sp, t0, verify      # stack empty -> done
    lw   s1, 0(sp)           # lo
    lw   s2, 4(sp)           # hi
    addi sp, sp, 8
    bge  s1, s2, work        # segment of <= 1 element
    # partition: pivot = a[hi]
    slli t0, s2, 2
    add  t0, t0, s0
    lw   s3, 0(t0)           # pivot value
    mv   s4, s1              # i = lo (store index)
    mv   s5, s1              # j = lo (scan index)
scan:
    bge  s5, s2, place_pivot
    slli t0, s5, 2
    add  t0, t0, s0
    lw   t1, 0(t0)           # a[j]
    bgt  t1, s3, no_swap
    # swap a[i], a[j]
    slli t2, s4, 2
    add  t2, t2, s0
    lw   t3, 0(t2)
    sw   t1, 0(t2)
    sw   t3, 0(t0)
    addi s4, s4, 1
no_swap:
    addi s5, s5, 1
    j    scan
place_pivot:
    # swap a[i], a[hi]
    slli t0, s4, 2
    add  t0, t0, s0
    slli t1, s2, 2
    add  t1, t1, s0
    lw   t2, 0(t0)
    lw   t3, 0(t1)
    sw   t3, 0(t0)
    sw   t2, 0(t1)
    # push (lo, i-1) and (i+1, hi)
    addi t4, s4, -1
    blt  t4, s1, skip_left
    addi sp, sp, -8
    sw   s1, 0(sp)
    sw   t4, 4(sp)
skip_left:
    addi t4, s4, 1
    bgt  t4, s2, work
    addi sp, sp, -8
    sw   t4, 0(sp)
    sw   s2, 4(sp)
    j    work
verify:
    la   s0, q_data
    li   s1, {n_minus_1}
    li   a0, 0               # checksum
    lw   t0, 0(s0)
    add  a0, a0, t0
chk:
    lw   t0, 0(s0)
    lw   t1, 4(s0)
    bgt  t0, t1, fail        # must be non-decreasing
    add  a0, a0, t1
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, chk
    li   t2, {checksum}
    beq  a0, t2, pass
fail:
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
q_data:
{data_words}
",
        sp_top = 1 << 19,
        hi0 = N - 1,
        n_minus_1 = N - 1,
        checksum = checksum as i64,
        data_words = words(&data),
    );
    Workload::new("qsort", source)
}

/// LSD radix sort, 8 bits per pass over 16-bit keys (two counting passes),
/// verified like `qsort`.
pub fn rsort() -> Workload {
    const N: usize = 64;
    let mut g = Lcg::new(0x4450);
    let data: Vec<u32> = (0..N).map(|_| g.next_below(1 << 16)).collect();
    let checksum = data.iter().fold(0u32, |s, &v| s.wrapping_add(v));

    // Two passes: digit = (key >> shift) & 0xff; counting sort into the
    // scratch buffer, then swap roles.
    let source = format!(
        "_start:
    li   s10, 0              # shift = 0, then 8
    la   s0, r_src           # current source
    la   s1, r_dst           # current destination
radix_pass:
    # zero the 256 counters
    la   t0, r_count
    li   t1, 256
zc: sw   zero, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, zc
    # count digits
    mv   t0, s0
    li   t1, {n}
count:
    lw   t2, 0(t0)
    srl  t3, t2, s10
    andi t3, t3, 255
    slli t3, t3, 2
    la   t4, r_count
    add  t4, t4, t3
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, count
    # prefix sums -> start offsets
    la   t0, r_count
    li   t1, 256
    li   t2, 0               # running total
prefix:
    lw   t3, 0(t0)
    sw   t2, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, prefix
    # scatter
    mv   t0, s0
    li   t1, {n}
scatter:
    lw   t2, 0(t0)
    srl  t3, t2, s10
    andi t3, t3, 255
    slli t3, t3, 2
    la   t4, r_count
    add  t4, t4, t3
    lw   t5, 0(t4)           # output index
    addi t6, t5, 1
    sw   t6, 0(t4)
    slli t5, t5, 2
    add  t5, t5, s1
    sw   t2, 0(t5)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, scatter
    # next pass: swap src/dst, shift += 8
    mv   t0, s0
    mv   s0, s1
    mv   s1, t0
    addi s10, s10, 8
    li   t1, 16
    blt  s10, t1, radix_pass
    # two passes done; sorted data is back in r_src
    la   s0, r_src
    li   s1, {n_minus_1}
    li   a0, 0
    lw   t0, 0(s0)
    add  a0, a0, t0
chk:
    lw   t0, 0(s0)
    lw   t1, 4(s0)
    bgt  t0, t1, fail
    add  a0, a0, t1
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, chk
    li   t2, {checksum}
    beq  a0, t2, pass
fail:
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
r_src:
{data_words}
r_dst:
    .space {space}
r_count:
    .space 1024
",
        n = N,
        n_minus_1 = N - 1,
        checksum = checksum as i64,
        data_words = words(&data),
        space = N * 4,
    );
    Workload::new("rsort", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn qsort_passes_self_check() {
        assert_eq!(run_functional(&qsort()), 1);
    }

    #[test]
    fn rsort_passes_self_check() {
        assert_eq!(run_functional(&rsort()), 1);
    }
}
