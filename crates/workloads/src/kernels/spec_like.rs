//! Synthetic stand-ins for the four SPEC CPU 2006 workloads the paper
//! could run (429.mcf, 458.sjeng, 462.libquantum, 999.specrand).
//!
//! We cannot ship SPEC sources or binaries; these original kernels
//! reproduce the *register-dependency patterns* that make each workload's
//! CPI behave the way it does on the SFQ pipeline: mcf is dominated by
//! pointer-chasing loads whose address depends on the previous load (long
//! RAW chains), sjeng by data-dependent branches over a search tree,
//! libquantum by long streaming passes of independent bitwise updates, and
//! specrand by a tight LCG recurrence.

use crate::workload::{words, Lcg, Workload};

/// mcf-like: pointer chasing over a shuffled singly-linked ring with cost
/// accumulation — every load address depends on the previous load.
pub fn mcf_like() -> Workload {
    const NODES: usize = 128;
    const STEPS: u32 = 1500;
    let mut g = Lcg::new(0x429);

    // A random permutation cycle: next[i] gives the following node.
    let mut perm: Vec<usize> = (0..NODES).collect();
    for i in (1..NODES).rev() {
        let j = g.next_below(i as u32 + 1) as usize;
        perm.swap(i, j);
    }
    let mut next = vec![0u32; NODES];
    for w in 0..NODES {
        next[perm[w]] = perm[(w + 1) % NODES] as u32;
    }
    let costs: Vec<u32> = (0..NODES).map(|_| g.next_below(1000)).collect();

    // Golden walk.
    let mut node = perm[0] as u32;
    let mut acc = 0u32;
    for _ in 0..STEPS {
        acc = acc.wrapping_add(costs[node as usize]);
        node = next[node as usize];
    }
    let expected = acc;

    let source = format!(
        "_start:
    li   s0, {start}      # current node
    li   s1, {steps}
    li   s2, 0            # cost accumulator
    la   s3, next_tbl
    la   s4, cost_tbl
walk:
    slli t0, s0, 2
    add  t1, s4, t0
    lw   t2, 0(t1)        # cost[node]
    add  s2, s2, t2
    add  t1, s3, t0
    lw   s0, 0(t1)        # node = next[node]  (RAW chain)
    addi s1, s1, -1
    bnez s1, walk
    li   t0, {expected}
    beq  s2, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
next_tbl:
{next_words}
cost_tbl:
{cost_words}
",
        start = perm[0],
        steps = STEPS,
        expected = expected as i64,
        next_words = words(&next),
        cost_words = words(&costs),
    );
    Workload::new("429.mcf", source)
}

/// sjeng-like: branchy evaluation over a precomputed game tree — nested
/// data-dependent branches pick a child by score comparison.
pub fn sjeng_like() -> Workload {
    const NODES: usize = 255; // complete binary tree of depth 8
    const PLIES: u32 = 400;
    let mut g = Lcg::new(0x458);
    let scores: Vec<u32> = (0..NODES).map(|_| g.next_below(4096)).collect();

    // Golden model: repeated descents from the root; at each node pick the
    // child by comparing child scores, accumulating a branchy hash.
    let mut acc = 0u32;
    let mut salt = 1u32;
    for _ in 0..PLIES {
        let mut n = 0usize;
        while 2 * n + 2 < NODES {
            let l = scores[2 * n + 1].wrapping_add(salt & 0xff);
            let r = scores[2 * n + 2];
            if l > r {
                n = 2 * n + 1;
                acc = acc.wrapping_add(l);
            } else {
                n = 2 * n + 2;
                acc = acc.wrapping_sub(r) ^ 0x5a;
            }
        }
        salt = salt.wrapping_mul(Lcg::A).wrapping_add(Lcg::C);
        acc = acc.wrapping_add(salt >> 24);
    }
    let expected = acc;

    let source = format!(
        "_start:
    li   s1, {plies}
    li   s2, 0            # acc
    li   s3, 1            # salt
    la   s4, score_tbl
    li   s5, {limit}      # 2*n+2 < NODES bound
ply:
    li   s0, 0            # node = root
descend:
    slli t0, s0, 1
    addi t1, t0, 2        # 2n+2
    bge  t1, s5, leaf_chk
    addi t2, t0, 1        # 2n+1
    slli t3, t2, 2
    add  t3, t3, s4
    lw   t4, 0(t3)        # scores[2n+1]
    andi t5, s3, 255
    add  t4, t4, t5       # l = score + (salt & 0xff)
    slli t3, t1, 2
    add  t3, t3, s4
    lw   t6, 0(t3)        # r = scores[2n+2]
    ble  t4, t6, go_right
    mv   s0, t2
    add  s2, s2, t4
    j    descend
go_right:
    mv   s0, t1
    sub  s2, s2, t6
    xori s2, s2, 0x5a
    j    descend
leaf_chk:
    # salt = salt * A + C  (software multiply by constant via shift-add)
    li   a1, {lcg_a}
    mv   a2, s3
    li   a0, 0
salt_mul:
    andi t0, a2, 1
    beqz t0, salt_skip
    add  a0, a0, a1
salt_skip:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, salt_mul
    li   t0, {lcg_c}
    add  s3, a0, t0
    srli t0, s3, 24
    add  s2, s2, t0
    addi s1, s1, -1
    bnez s1, ply
    li   t0, {expected}
    beq  s2, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
score_tbl:
{score_words}
",
        plies = PLIES,
        limit = NODES,
        lcg_a = Lcg::A,
        lcg_c = Lcg::C as i64,
        expected = expected as i64,
        score_words = words(&scores),
    );
    Workload::new("458.sjeng", source)
}

/// libquantum-like: streaming passes over a register array applying
/// Toffoli/CNOT-style bitwise updates — long runs of independent
/// load-modify-store operations.
pub fn libquantum_like() -> Workload {
    const QSTATES: usize = 192;
    const PASSES: u32 = 12;
    let mut g = Lcg::new(0x462);
    let init: Vec<u32> = (0..QSTATES).map(|_| g.next_u32()).collect();

    // Golden: each pass applies cnot(control=bit p, target=bit (p+7)&31)
    // and a phase-ish xor.
    let mut state = init.clone();
    for p in 0..PASSES {
        let cbit = p % 32;
        let tbit = (p + 7) % 32;
        for s in state.iter_mut() {
            if *s >> cbit & 1 == 1 {
                *s ^= 1 << tbit;
            }
            *s = s.wrapping_add(0x9e37);
        }
    }
    let expected = state.iter().fold(0u32, |s, &v| s.wrapping_add(v));

    let source = format!(
        "_start:
    li   s0, 0            # pass
passes:
    # control/target masks for this pass
    andi t0, s0, 31
    li   t1, 1
    sll  s2, t1, t0       # control mask
    addi t0, s0, 7
    andi t0, t0, 31
    sll  s3, t1, t0       # target mask
    la   s4, qstate
    li   s5, {n}
apply:
    lw   t2, 0(s4)
    and  t3, t2, s2
    beqz t3, no_flip
    xor  t2, t2, s3
no_flip:
    li   t3, 0x9e37
    add  t2, t2, t3
    sw   t2, 0(s4)
    addi s4, s4, 4
    addi s5, s5, -1
    bnez s5, apply
    addi s0, s0, 1
    li   t0, {passes}
    blt  s0, t0, passes
    # checksum
    la   s4, qstate
    li   s5, {n}
    li   a0, 0
cks:
    lw   t2, 0(s4)
    add  a0, a0, t2
    addi s4, s4, 4
    addi s5, s5, -1
    bnez s5, cks
    li   t0, {expected}
    beq  a0, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
qstate:
{state_words}
",
        n = QSTATES,
        passes = PASSES,
        expected = expected as i64,
        state_words = words(&init),
    );
    Workload::new("462.libquantum", source)
}

/// specrand: the pure LCG recurrence — the tightest possible RAW chain.
pub fn specrand() -> Workload {
    const DRAWS: u32 = 1200;
    let mut state = 0x999u32;
    let mut acc = 0u32;
    for _ in 0..DRAWS {
        state = state.wrapping_mul(Lcg::A).wrapping_add(Lcg::C);
        acc = acc.wrapping_add(state >> 16);
    }
    let expected = acc;

    let source = format!(
        "_start:
    li   s0, 0x999        # state
    li   s1, {draws}
    li   s2, 0            # acc
draw:
    # state = state * A + C by shift-add
    li   a1, {lcg_a}
    mv   a2, s0
    li   a0, 0
rmul:
    andi t0, a2, 1
    beqz t0, rskip
    add  a0, a0, a1
rskip:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, rmul
    li   t0, {lcg_c}
    add  s0, a0, t0
    srli t0, s0, 16
    add  s2, s2, t0
    addi s1, s1, -1
    bnez s1, draw
    li   t0, {expected}
    beq  s2, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
",
        draws = DRAWS,
        lcg_a = Lcg::A,
        lcg_c = Lcg::C as i64,
        expected = expected as i64,
    );
    Workload::new("999.specrand", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn mcf_like_passes_self_check() {
        assert_eq!(run_functional(&mcf_like()), 1);
    }

    #[test]
    fn sjeng_like_passes_self_check() {
        assert_eq!(run_functional(&sjeng_like()), 1);
    }

    #[test]
    fn libquantum_like_passes_self_check() {
        assert_eq!(run_functional(&libquantum_like()), 1);
    }

    #[test]
    fn specrand_passes_self_check() {
        assert_eq!(run_functional(&specrand()), 1);
    }
}
