//! Miniature self-checking kernels for pulse-level co-simulation.
//!
//! Driving the event-driven register-file netlists costs on the order of
//! half a millisecond of host time per architectural access at the 32×32
//! geometry, so the Figure 14 suite (tens of thousands of retired
//! instructions per kernel) is out of reach for routine co-simulation.
//! These kernels compress the same hazard patterns — dependent ALU
//! chains, memory round trips, branchy loops — into one to three hundred
//! retired instructions each, small enough to run against every
//! structural design in seconds while still exercising reads, writes,
//! RAR duplication, and loopback restores.

use crate::workload::Workload;

/// Shrinks a workload's memory/budget to co-simulation scale.
fn cosim(name: &'static str, source: String) -> Workload {
    let mut w = Workload::new(name, source);
    w.mem_size = 1 << 16;
    w.budget = 50_000;
    w
}

/// Dependent ALU chain: shift-add multiply of two constants plus logic
/// ops, every instruction feeding the next (RAW/loopback heavy).
pub fn cosim_alu() -> Workload {
    const A: u32 = 201;
    const B: u32 = 113;
    let expected = A.wrapping_mul(B) ^ (A.wrapping_mul(B) >> 3);
    let source = format!(
        "_start:
    li   a1, {a}          # multiplicand
    li   a2, {b}          # multiplier
    li   a3, 0            # product
mul_loop:
    andi t0, a2, 1
    beqz t0, no_add
    add  a3, a3, a1
no_add:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, mul_loop
    srli t1, a3, 3
    xor  a0, a3, t1
    li   t2, {expected}
    beq  a0, t2, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
",
        a = A,
        b = B,
        expected = expected,
    );
    cosim("cosim-alu", source)
}

/// Memory round trip: store an arithmetic sequence, read it back in
/// reverse, checksum (load/store traffic plus pointer-increment RAW).
pub fn cosim_mem() -> Workload {
    const N: u32 = 12;
    const STEP: u32 = 37;
    let vals: Vec<u32> = (0..N).map(|i| 5 + i * STEP).collect();
    // The kernel folds last-to-first: s = s + (v ^ s).
    let expected: u32 = vals.iter().rev().fold(0u32, |s, v| s.wrapping_add(*v ^ s));
    let source = format!(
        "_start:
    la   t0, buf
    li   t1, {n}
    li   t2, 5
store:
    sw   t2, 0(t0)
    addi t2, t2, {step}
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, store
    # read back in reverse, folding s = s + (v ^ s)
    li   t1, {n}
    li   a0, 0
load:
    addi t0, t0, -4
    lw   t3, 0(t0)
    xor  t3, t3, a0
    add  a0, a0, t3
    addi t1, t1, -1
    bnez t1, load
    li   t4, {expected}
    beq  a0, t4, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
buf:
    .space {space}
",
        n = N,
        step = STEP,
        expected = expected,
        space = N * 4,
    );
    cosim("cosim-mem", source)
}

/// Branchy control flow: a Collatz trajectory with its step count
/// self-checked (taken/not-taken mix plus a data-dependent loop bound).
pub fn cosim_branch() -> Workload {
    const SEED: u32 = 7;
    let mut n = SEED;
    let mut steps = 0u32;
    while n != 1 {
        n = if n.is_multiple_of(2) {
            n / 2
        } else {
            3 * n + 1
        };
        steps += 1;
    }
    let source = format!(
        "_start:
    li   t0, {seed}       # n
    li   t1, 0            # steps
    li   t2, 1
collatz:
    beq  t0, t2, done
    andi t3, t0, 1
    beqz t3, even
    add  t4, t0, t0       # 3n + 1, no mul in RV32I
    add  t0, t4, t0
    addi t0, t0, 1
    j    next
even:
    srli t0, t0, 1
next:
    addi t1, t1, 1
    j    collatz
done:
    li   t5, {steps}
    beq  t1, t5, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
",
        seed = SEED,
        steps = steps,
    );
    cosim("cosim-branch", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn cosim_kernels_pass_self_checks() {
        for w in [cosim_alu(), cosim_mem(), cosim_branch()] {
            assert_eq!(run_functional(&w), 1, "{}", w.name);
        }
    }

    #[test]
    fn cosim_kernels_are_small() {
        use sfq_riscv::asm::assemble;
        use sfq_riscv::exec::Cpu;
        use sfq_riscv::mem::Memory;
        for w in [cosim_alu(), cosim_mem(), cosim_branch()] {
            let prog = assemble(&w.source, 0).expect("assembles");
            let mut mem = Memory::new(w.mem_size);
            mem.load_image(prog.base, &prog.words);
            let mut cpu = Cpu::new(prog.symbol("_start").unwrap_or(0));
            cpu.run(&mut mem, w.budget).expect("runs");
            assert!(
                cpu.retired <= 400,
                "{} retired {} — too big for pulse co-sim",
                w.name,
                cpu.retired
            );
        }
    }
}
