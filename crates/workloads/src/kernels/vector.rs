//! Streaming vector kernels: `vvadd` and `multiply` (riscv-tests style).

use crate::workload::{words, Lcg, Workload};

/// Element-wise vector add with checksum self-check.
pub fn vvadd() -> Workload {
    const N: u32 = 96;
    let mut g = Lcg::new(0xbeef);
    let a: Vec<u32> = (0..N).map(|_| g.next_below(10_000)).collect();
    let b: Vec<u32> = (0..N).map(|_| g.next_below(10_000)).collect();
    let expected: u32 = a
        .iter()
        .zip(&b)
        .map(|(x, y)| x.wrapping_add(*y))
        .fold(0u32, |s, v| s.wrapping_add(v));

    let source = format!(
        "_start:
    la   t0, vec_a
    la   t1, vec_b
    la   t2, vec_c
    li   t3, {n}
loop:
    lw   t4, 0(t0)
    lw   t5, 0(t1)
    add  t6, t4, t5
    sw   t6, 0(t2)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, 4
    addi t3, t3, -1
    bnez t3, loop
    # checksum pass
    la   t2, vec_c
    li   t3, {n}
    li   a0, 0
sum:
    lw   t4, 0(t2)
    add  a0, a0, t4
    addi t2, t2, 4
    addi t3, t3, -1
    bnez t3, sum
    li   t5, {expected}
    beq  a0, t5, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
vec_a:
{a_words}
vec_b:
{b_words}
vec_c:
    .space {space}
",
        n = N,
        expected = expected as i64,
        a_words = words(&a),
        b_words = words(&b),
        space = N * 4,
    );
    Workload::new("vvadd", source)
}

/// Software multiply (shift-add) over random pairs, checksum-checked —
/// RV32I has no `mul`, matching the paper's ISA limitations.
pub fn multiply() -> Workload {
    const N: u32 = 48;
    let mut g = Lcg::new(0xa11ce);
    let a: Vec<u32> = (0..N).map(|_| g.next_below(1 << 12)).collect();
    let b: Vec<u32> = (0..N).map(|_| g.next_below(1 << 12)).collect();
    let expected = a
        .iter()
        .zip(&b)
        .map(|(x, y)| x.wrapping_mul(*y))
        .fold(0u32, |s, v| s.wrapping_add(v));

    let source = format!(
        "_start:
    la   s0, mul_a
    la   s1, mul_b
    li   s2, {n}
    li   s3, 0            # checksum
outer:
    lw   a1, 0(s0)        # multiplicand
    lw   a2, 0(s1)        # multiplier
    li   a3, 0            # product
mul_loop:
    andi t0, a2, 1
    beqz t0, no_add
    add  a3, a3, a1
no_add:
    slli a1, a1, 1
    srli a2, a2, 1
    bnez a2, mul_loop
    add  s3, s3, a3
    addi s0, s0, 4
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, outer
    li   t1, {expected}
    beq  s3, t1, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
mul_a:
{a_words}
mul_b:
{b_words}
",
        n = N,
        expected = expected as i64,
        a_words = words(&a),
        b_words = words(&b),
    );
    Workload::new("multiply", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn vvadd_passes_self_check() {
        assert_eq!(run_functional(&vvadd()), 1);
    }

    #[test]
    fn multiply_passes_self_check() {
        assert_eq!(run_functional(&multiply()), 1);
    }
}
