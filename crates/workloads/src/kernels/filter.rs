//! `median`: three-point median filter (riscv-tests style).

use crate::workload::{words, Lcg, Workload};

/// Computes the median of each sliding window of three elements and
/// checksums the result.
pub fn median() -> Workload {
    const N: usize = 80;
    let mut g = Lcg::new(0x3d1a);
    let input: Vec<u32> = (0..N).map(|_| g.next_below(256)).collect();

    // Golden result computed in Rust: out[i] = median(in[i-1], in[i], in[i+1]),
    // edges copied through.
    let mut out = input.clone();
    for i in 1..N - 1 {
        let mut w = [input[i - 1], input[i], input[i + 1]];
        w.sort_unstable();
        out[i] = w[1];
    }
    let expected = out.iter().fold(0u32, |s, &v| s.wrapping_add(v));

    let source = format!(
        "_start:
    la   s0, med_in
    la   s1, med_out
    li   s2, {inner}        # number of interior points
    # edges copy through
    lw   t0, 0(s0)
    sw   t0, 0(s1)
    lw   t0, {last_off}(s0)
    sw   t0, {last_off}(s1)
    addi s0, s0, 4          # point at in[1]
    addi s1, s1, 4
loop:
    lw   t0, -4(s0)         # a = in[i-1]
    lw   t1, 0(s0)          # b = in[i]
    lw   t2, 4(s0)          # c = in[i+1]
    # median of three by explicit compares:
    # if a > b swap(a,b); if b > c swap(b,c); if a > b swap(a,b) -> b
    ble  t0, t1, m1
    mv   t3, t0
    mv   t0, t1
    mv   t1, t3
m1: ble  t1, t2, m2
    mv   t3, t1
    mv   t1, t2
    mv   t2, t3
m2: ble  t0, t1, m3
    mv   t1, t0
m3: sw   t1, 0(s1)
    addi s0, s0, 4
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, loop
    # checksum
    la   s1, med_out
    li   s2, {n}
    li   a0, 0
sum:
    lw   t0, 0(s1)
    add  a0, a0, t0
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, sum
    li   t1, {expected}
    beq  a0, t1, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
med_in:
{in_words}
med_out:
    .space {space}
",
        inner = N - 2,
        last_off = (N - 1) * 4,
        n = N,
        expected = expected as i64,
        in_words = words(&input),
        space = N * 4,
    );
    Workload::new("median", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn median_passes_self_check() {
        assert_eq!(run_functional(&median()), 1);
    }
}
