//! `towers`: recursive Towers of Hanoi (riscv-tests style).

use crate::workload::Workload;

/// Solves 7-disc Towers of Hanoi recursively, counting moves; checks the
/// count equals `2^7 - 1 = 127`. Exercises the call stack and a deep chain
//  of dependent call/return sequences.
pub fn towers() -> Workload {
    const DISCS: u32 = 7;
    let expected = (1u32 << DISCS) - 1;

    // hanoi(n) { if n == 0 return; hanoi(n-1); moves++; hanoi(n-1); }
    let source = format!(
        "_start:
    li   sp, {sp_top}
    li   s0, 0            # move counter
    li   a0, {discs}
    call hanoi
    li   t0, {expected}
    beq  s0, t0, pass
    li   a0, 0
    li   a7, 93
    ecall
pass:
    li   a0, 1
    li   a7, 93
    ecall
hanoi:
    beqz a0, hret
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   a0, 4(sp)
    addi a0, a0, -1
    call hanoi            # move n-1 to spare
    addi s0, s0, 1        # move the base disc
    lw   a0, 4(sp)
    addi a0, a0, -1
    call hanoi            # move n-1 onto it
    lw   ra, 0(sp)
    addi sp, sp, 8
hret:
    ret
",
        sp_top = 1 << 19,
        discs = DISCS,
        expected = expected,
    );
    Workload::new("towers", source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_functional;

    #[test]
    fn towers_passes_self_check() {
        assert_eq!(run_functional(&towers()), 1);
    }
}
