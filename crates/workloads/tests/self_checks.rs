//! Every kernel in the crate — the full Figure 14 suite and the
//! miniature co-simulation kernels — must pass its embedded `a0 = 1`
//! self-check on the functional executor, so workload bugs fail tier-1
//! instead of polluting the CPI figures.

use sfq_workloads::testutil::run_functional;
use sfq_workloads::{cosim_suite, suite, PASS};

#[test]
fn every_figure14_kernel_passes_its_self_check() {
    let all = suite();
    assert_eq!(all.len(), 13, "the Figure 14 suite has 13 kernels");
    for w in &all {
        assert_eq!(run_functional(w), PASS, "{} failed its self-check", w.name);
    }
}

#[test]
fn every_cosim_kernel_passes_its_self_check() {
    for w in &cosim_suite() {
        assert_eq!(run_functional(w), PASS, "{} failed its self-check", w.name);
    }
}
