//! One-bit counter stage used by the HC-READ circuit.
//!
//! The HC-READ circuit of the paper (§IV-A, Fig. 10c/d) converts the 0–3
//! serial pulses popped out of an HC-DRO cell into a parallel two-bit value
//! using a two-bit counter built from two one-bit counters \[22\]. Each stage
//! is a T-flip-flop that toggles on every input pulse and emits a carry on
//! wrap-around, plus a readable/reset-able state.

use sfq_sim::compiled::{CellOp, Lowered};
use sfq_sim::component::{Component, PulseContext};
use sfq_sim::time::{Duration, Time};

use crate::timing::{COUNTER_CARRY_PS, COUNTER_READ_PS};

/// One counter bit: T-flip-flop with non-destructive readout and reset.
///
/// Pins: input `IN = 0` (toggle), `READ = 1`, `RESET = 2`;
/// outputs `CARRY = 0` (emitted on 1→0 wrap) and `VALUE = 1` (emitted on
/// READ iff the stored bit is 1).
#[derive(Debug, Clone, Default)]
pub struct CounterBit {
    state: bool,
}

impl CounterBit {
    /// Toggle input pin.
    pub const IN: u8 = 0;
    /// Read-enable input pin.
    pub const READ: u8 = 1;
    /// Reset input pin.
    pub const RESET: u8 = 2;
    /// Carry output pin (fires on 1→0 wrap-around).
    pub const CARRY: u8 = 0;
    /// Value output pin (fires on READ iff state is 1).
    pub const VALUE: u8 = 1;

    /// Creates a cleared counter bit.
    pub fn new() -> Self {
        CounterBit::default()
    }
}

impl Component for CounterBit {
    fn kind(&self) -> &'static str {
        "counter_bit"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::IN => {
                if self.state {
                    self.state = false;
                    ctx.emit_after(Self::CARRY, now, Duration::from_ps(COUNTER_CARRY_PS));
                } else {
                    self.state = true;
                }
            }
            Self::READ => {
                if self.state {
                    ctx.emit_after(Self::VALUE, now, Duration::from_ps(COUNTER_READ_PS));
                }
            }
            Self::RESET => self.state = false,
            other => ctx.violation(now, "pin", format!("counter_bit has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.state = false;
    }

    fn stored(&self) -> Option<u8> {
        Some(self.state as u8)
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(COUNTER_CARRY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::CounterBit {
                carry: Duration::from_ps(COUNTER_CARRY_PS),
                read: Duration::from_ps(COUNTER_READ_PS),
            },
            bits: self.state as u8,
            time_a: None,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.state = state.bits != 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::netlist::{Netlist, Pin};
    use sfq_sim::simulator::Simulator;

    fn single() -> (Simulator, sfq_sim::netlist::ComponentId) {
        let mut n = Netlist::new();
        let id = n.add("cb", Box::new(CounterBit::new()) as _);
        (Simulator::new(n), id)
    }

    #[test]
    fn toggles_and_carries() {
        let (mut sim, id) = single();
        let carry = sim.probe(Pin::new(id, CounterBit::CARRY), "carry");
        for i in 0..4 {
            sim.inject(Pin::new(id, CounterBit::IN), Time::from_ps(10.0 * i as f64));
        }
        sim.run();
        // Four toggles wrap twice.
        assert_eq!(sim.probe_trace(carry).len(), 2);
        assert_eq!(sim.netlist().component(id).stored(), Some(0));
    }

    #[test]
    fn read_reports_state_nondestructively() {
        let (mut sim, id) = single();
        let value = sim.probe(Pin::new(id, CounterBit::VALUE), "value");
        sim.inject(Pin::new(id, CounterBit::IN), Time::from_ps(0.0));
        sim.inject(Pin::new(id, CounterBit::READ), Time::from_ps(10.0));
        sim.inject(Pin::new(id, CounterBit::READ), Time::from_ps(20.0));
        sim.run();
        assert_eq!(sim.probe_trace(value).len(), 2);
        assert_eq!(sim.netlist().component(id).stored(), Some(1));
    }

    #[test]
    fn reset_clears_state() {
        let (mut sim, id) = single();
        let value = sim.probe(Pin::new(id, CounterBit::VALUE), "value");
        sim.inject(Pin::new(id, CounterBit::IN), Time::from_ps(0.0));
        sim.inject(Pin::new(id, CounterBit::RESET), Time::from_ps(10.0));
        sim.inject(Pin::new(id, CounterBit::READ), Time::from_ps(20.0));
        sim.run();
        assert!(sim.probe_trace(value).is_empty());
    }
}
