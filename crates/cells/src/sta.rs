//! Static timing analysis over netlists (the qSTA \[21\] stand-in).
//!
//! Computes arrival times from a set of start pins by path relaxation over
//! the component graph, using each cell's nominal
//! [`propagation_delay`](sfq_sim::component::Component::propagation_delay)
//! plus the wire delays. Two graph models are offered:
//!
//! * [`arrival_times`] — the original worst-case (longest-path) pass in
//!   which *every* input pin propagates. SFQ register files contain real
//!   feedback (the HiPerRF loopback), so this pass takes an explicit set
//!   of *cut* components at which propagation stops; an uncut cycle is
//!   reported with a witness path and a suggested cut set.
//! * [`trigger_arrival_times`] / [`min_arrival_times`] — the pin-aware
//!   variant in which paths propagate only through *triggering* input pins
//!   (the pins whose pulse can actually produce an output: a DRO's `CLK`
//!   launches, its `D` merely stores). Paths are thereby segmented at
//!   clocked elements, which renders every registry design acyclic without
//!   manual cuts, and supports both a longest- and a shortest-path
//!   ([`Sense::Earliest`]) relaxation — the basis of the static
//!   separation-slack rule in `sfq-lint`.

use std::collections::HashSet;

use sfq_sim::netlist::{ComponentId, Netlist, Pin};

/// Error from a timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// The graph contains a cycle not covered by the cut set; arrival
    /// times would be unbounded.
    UncutCycle {
        /// The components of one offending cycle, in propagation order
        /// (the last element feeds back into the first).
        witness: Vec<ComponentId>,
        /// Cycle components whose state-holding behaviour makes them the
        /// natural places to cut (storage cells and coincidence gates);
        /// falls back to the whole witness if the cycle is pure transport.
        suggested_cuts: Vec<ComponentId>,
    },
}

impl std::fmt::Display for StaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaError::UncutCycle {
                witness,
                suggested_cuts,
            } => {
                let path = witness
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let cuts = suggested_cuts
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(
                    f,
                    "netlist cycle [{path}] not covered by the cut set; suggested cuts: [{cuts}]"
                )
            }
        }
    }
}

impl std::error::Error for StaError {}

/// Which extreme of the path distribution a relaxation computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Shortest-path (earliest possible) arrival times.
    Earliest,
    /// Longest-path (latest possible) arrival times.
    Latest,
}

/// The input pins through which a pulse can propagate to the cell's
/// outputs. Data/select/reset pins store or steer without emitting, so
/// pin-aware passes segment paths there; unknown kinds conservatively
/// propagate through every pin (matching the legacy all-pin pass).
pub fn trigger_pins(kind: &str) -> &'static [u8] {
    match kind {
        "jtl" | "splitter" => &[0],
        "merger" | "dand" | "counter_bit" => &[0, 1],
        // Clocked storage: D/SET/RESET store, CLK launches.
        "dro" | "hcdro" => &[1],
        "ndro" | "ndroc" => &[2],
        // Clocked logic: operand pins store, CLK launches.
        "and" | "xor" => &[2],
        "not" | "sync" => &[1],
        _ => &[0, 1, 2, 3],
    }
}

/// Arrival times per component (input reference), in ps.
///
/// Carries the real [`ComponentId`]s of the analysed netlist so that
/// endpoints are reported as ids obtained from that netlist, never
/// reconstructed from raw indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTimes {
    arrivals: Vec<Option<f64>>,
    ids: Vec<ComponentId>,
}

impl ArrivalTimes {
    /// Arrival time at a component's inputs, if reachable.
    pub fn at(&self, id: ComponentId) -> Option<f64> {
        self.arrivals.get(id.index()).copied().flatten()
    }

    /// The overall critical-path delay (latest arrival anywhere).
    pub fn critical_path_ps(&self) -> Option<f64> {
        self.arrivals
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Components whose arrival equals the critical path (within 1 fs).
    pub fn critical_endpoints(&self) -> Vec<ComponentId> {
        let Some(cp) = self.critical_path_ps() else {
            return Vec::new();
        };
        self.arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some_and(|v| (v - cp).abs() < 1e-3))
            .map(|(i, _)| self.ids[i])
            .collect()
    }
}

/// A directed timing edge: `src` component output to `dst` component
/// input, with the total delay (cell + wire) and the destination pin.
struct TimedEdge {
    src: usize,
    dst: usize,
    dst_pin: u8,
    delay_ps: f64,
}

/// Collects timing edges, skipping components in `cuts` (their outputs do
/// not propagate) and components without a nominal delay (test doubles).
fn timed_edges(netlist: &Netlist, cuts: &HashSet<ComponentId>) -> Vec<TimedEdge> {
    let mut edges = Vec::new();
    for (id, _, comp) in netlist.iter() {
        let Some(cell_delay) = comp.propagation_delay() else {
            continue;
        };
        if cuts.contains(&id) {
            continue;
        }
        // A component may emit on several output pins; enumerate the ones
        // that have fanout (probe pins index space is small, scan 0..4).
        for out_pin in 0..4u8 {
            for &(to, wire) in netlist.fanout(Pin::new(id, out_pin)) {
                edges.push(TimedEdge {
                    src: id.index(),
                    dst: to.component.index(),
                    dst_pin: to.index,
                    delay_ps: cell_delay.as_ps() + wire.as_ps(),
                });
            }
        }
    }
    edges
}

fn relax(
    netlist: &Netlist,
    starts: &[Pin],
    edges: &[TimedEdge],
    sense: Sense,
) -> Result<ArrivalTimes, StaError> {
    let n = netlist.component_count();
    let ids: Vec<ComponentId> = netlist.iter().map(|(id, _, _)| id).collect();
    let mut arrivals: Vec<Option<f64>> = vec![None; n];
    for pin in starts {
        let slot = &mut arrivals[pin.component.index()];
        *slot = Some(slot.unwrap_or(0.0).max(0.0));
    }

    // Path relaxation; at most n rounds for an acyclic reachable subgraph.
    for round in 0..=n {
        let mut changed = false;
        for e in edges {
            if let Some(a) = arrivals[e.src] {
                let candidate = a + e.delay_ps;
                let improves = match (sense, arrivals[e.dst]) {
                    (_, None) => true,
                    (Sense::Latest, Some(cur)) => candidate > cur + 1e-9,
                    (Sense::Earliest, Some(cur)) => candidate < cur - 1e-9,
                };
                if improves {
                    arrivals[e.dst] = Some(candidate);
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(ArrivalTimes { arrivals, ids });
        }
        if round == n {
            // Non-convergence implies an uncut cycle; report one with a
            // witness path over the same edge set.
            let cycles = cycles_in(netlist, edges);
            let witness = cycles.into_iter().next().unwrap_or_default();
            let suggested_cuts = suggest_cuts(netlist, &witness);
            return Err(StaError::UncutCycle {
                witness,
                suggested_cuts,
            });
        }
    }
    Ok(ArrivalTimes { arrivals, ids })
}

/// Computes worst-case arrival times from `starts` (input pins injected at
/// t = 0), stopping at components in `cuts`. Every input pin propagates —
/// the conservative structural view (see [`trigger_arrival_times`] for the
/// pin-aware one).
///
/// # Errors
///
/// [`StaError::UncutCycle`] if relaxation has not converged after `n`
/// rounds, which implies a cycle outside the cut set.
pub fn arrival_times(
    netlist: &Netlist,
    starts: &[Pin],
    cuts: &HashSet<ComponentId>,
) -> Result<ArrivalTimes, StaError> {
    let edges = timed_edges(netlist, cuts);
    relax(netlist, starts, &edges, Sense::Latest)
}

/// Pin-aware arrival times: pulses propagate only through each cell's
/// [`trigger_pins`], so paths are segmented at clocked elements (a wire
/// into a DRO's `D` pin terminates its path; the `CLK` pin launches a new
/// one). Supports both relaxation senses.
///
/// # Errors
///
/// [`StaError::UncutCycle`] if the trigger graph still contains an uncut
/// cycle — a pulse loop that no clocked element interrupts.
pub fn trigger_arrival_times(
    netlist: &Netlist,
    starts: &[Pin],
    cuts: &HashSet<ComponentId>,
    sense: Sense,
) -> Result<ArrivalTimes, StaError> {
    let ids: Vec<ComponentId> = netlist.iter().map(|(id, _, _)| id).collect();
    let edges: Vec<TimedEdge> = timed_edges(netlist, cuts)
        .into_iter()
        .filter(|e| {
            let kind = netlist.component(ids[e.dst]).kind();
            trigger_pins(kind).contains(&e.dst_pin)
        })
        .collect();
    relax(netlist, starts, &edges, sense)
}

/// Shortest-path (earliest possible) arrival times over the trigger
/// graph — the min-path companion of [`arrival_times`] used for static
/// separation slack.
///
/// # Errors
///
/// Propagates [`StaError`] from [`trigger_arrival_times`].
pub fn min_arrival_times(
    netlist: &Netlist,
    starts: &[Pin],
    cuts: &HashSet<ComponentId>,
) -> Result<ArrivalTimes, StaError> {
    trigger_arrival_times(netlist, starts, cuts, Sense::Earliest)
}

/// Enumerates elementary cycles of the full (all-pin) timing graph, up to
/// one witness per back edge of a depth-first traversal. Each cycle is a
/// component path in propagation order; components in `cuts` are excluded.
pub fn find_cycles(netlist: &Netlist, cuts: &HashSet<ComponentId>) -> Vec<Vec<ComponentId>> {
    let edges = timed_edges(netlist, cuts);
    cycles_in(netlist, &edges)
}

fn cycles_in(netlist: &Netlist, edges: &[TimedEdge]) -> Vec<Vec<ComponentId>> {
    let n = netlist.component_count();
    let ids: Vec<ComponentId> = netlist.iter().map(|(id, _, _)| id).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        if !adj[e.src].contains(&e.dst) {
            adj[e.src].push(e.dst);
        }
    }

    // Iterative DFS with colouring; a back edge to a grey node yields the
    // cycle as the stack suffix starting at that node.
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; n];
    let mut cycles = Vec::new();
    for root in 0..n {
        if colour[root] != WHITE {
            continue;
        }
        // Stack of (node, next-neighbour index) plus the grey path.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = GREY;
        let mut path: Vec<usize> = vec![root];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let dst = adj[node][*next];
                *next += 1;
                match colour[dst] {
                    WHITE => {
                        colour[dst] = GREY;
                        stack.push((dst, 0));
                        path.push(dst);
                    }
                    GREY => {
                        let start = path
                            .iter()
                            .position(|&p| p == dst)
                            .expect("grey node is on the path");
                        cycles.push(path[start..].iter().map(|&i| ids[i]).collect());
                    }
                    _ => {}
                }
            } else {
                colour[node] = BLACK;
                stack.pop();
                path.pop();
            }
        }
    }
    cycles
}

/// The natural cut candidates on a cycle: state-holding cells (those with
/// a [`stored`](sfq_sim::component::Component::stored) view) and
/// coincidence gates, which interrupt free pulse circulation. Falls back
/// to the entire witness for pure-transport cycles, which have no natural
/// cut and must be restructured.
pub fn suggest_cuts(netlist: &Netlist, cycle: &[ComponentId]) -> Vec<ComponentId> {
    let natural: Vec<ComponentId> = cycle
        .iter()
        .copied()
        .filter(|&id| {
            let c = netlist.component(id);
            c.stored().is_some() || c.kind() == "dand"
        })
        .collect();
    if natural.is_empty() {
        cycle.to_vec()
    } else {
        natural
    }
}

/// Convenience: the worst-case delay from `start` to a specific component.
///
/// # Errors
///
/// Propagates [`StaError`] from [`arrival_times`].
pub fn path_delay_ps(
    netlist: &Netlist,
    start: Pin,
    end: ComponentId,
    cuts: &HashSet<ComponentId>,
) -> Result<Option<f64>, StaError> {
    Ok(arrival_times(netlist, &[start], cuts)?.at(end))
}

/// Checks that every NDROC in the netlist would see enable pulses no
/// closer than the re-arm interval, given an operation issue period: the
/// static analogue of the dynamic re-arm violation check.
pub fn min_issue_period_ok(issue_period_ps: f64) -> bool {
    issue_period_ps >= crate::timing::NDROC_REARM_PS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::storage::Dro;
    use crate::transport::Jtl;
    use sfq_sim::simulator::Simulator;
    use sfq_sim::time::{Duration, Time};

    #[test]
    fn chain_arrival_matches_simulation() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl_with_delay(Duration::from_ps(2.0));
        let c = b.jtl_with_delay(Duration::from_ps(5.0));
        let d = b.jtl_with_delay(Duration::from_ps(1.5));
        b.connect_delayed(
            Pin::new(a, Jtl::OUT),
            Pin::new(c, Jtl::IN),
            Duration::from_ps(0.5),
        );
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(d, Jtl::IN));
        let netlist = b.finish();

        let times =
            arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).expect("acyclic");
        assert_eq!(times.at(d), Some(7.5)); // 2 + 0.5 + 5

        // Dynamic check: the pulse reaches d's input at the same time, so
        // its output fires one instance delay later.
        let mut sim = Simulator::new(netlist);
        let p = sim.probe(Pin::new(d, Jtl::OUT), "end");
        sim.inject(Pin::new(a, Jtl::IN), Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(p).pulses()[0], Time::from_ps(9.0)); // + d's own 1.5
    }

    #[test]
    fn reconvergent_paths_take_the_longest() {
        // a splits; one branch is slow; both merge at m.
        let mut b = CircuitBuilder::new();
        let s = b.splitter();
        let fast = b.jtl_with_delay(Duration::from_ps(1.0));
        let slow = b.jtl_with_delay(Duration::from_ps(9.0));
        let m = b.merger();
        b.connect(
            Pin::new(s, crate::transport::Splitter::OUT0),
            Pin::new(fast, Jtl::IN),
        );
        b.connect(
            Pin::new(s, crate::transport::Splitter::OUT1),
            Pin::new(slow, Jtl::IN),
        );
        b.connect(
            Pin::new(fast, Jtl::OUT),
            Pin::new(m, crate::transport::Merger::IN_A),
        );
        b.connect(
            Pin::new(slow, Jtl::OUT),
            Pin::new(m, crate::transport::Merger::IN_B),
        );
        let netlist = b.finish();
        let times = arrival_times(
            &netlist,
            &[Pin::new(s, crate::transport::Splitter::IN)],
            &HashSet::new(),
        )
        .expect("acyclic");
        // splitter 3 + slow 9 = 12 at the merger input.
        assert_eq!(times.at(m), Some(12.0));
    }

    #[test]
    fn min_paths_take_the_shortest() {
        // Same reconvergence as above, shortest-path sense: 3 + 1 = 4.
        let mut b = CircuitBuilder::new();
        let s = b.splitter();
        let fast = b.jtl_with_delay(Duration::from_ps(1.0));
        let slow = b.jtl_with_delay(Duration::from_ps(9.0));
        let m = b.merger();
        b.connect(
            Pin::new(s, crate::transport::Splitter::OUT0),
            Pin::new(fast, Jtl::IN),
        );
        b.connect(
            Pin::new(s, crate::transport::Splitter::OUT1),
            Pin::new(slow, Jtl::IN),
        );
        b.connect(
            Pin::new(fast, Jtl::OUT),
            Pin::new(m, crate::transport::Merger::IN_A),
        );
        b.connect(
            Pin::new(slow, Jtl::OUT),
            Pin::new(m, crate::transport::Merger::IN_B),
        );
        let netlist = b.finish();
        let starts = [Pin::new(s, crate::transport::Splitter::IN)];
        let min = min_arrival_times(&netlist, &starts, &HashSet::new()).expect("acyclic");
        assert_eq!(min.at(m), Some(4.0));
        let max = trigger_arrival_times(&netlist, &starts, &HashSet::new(), Sense::Latest)
            .expect("acyclic");
        assert_eq!(max.at(m), Some(12.0));
    }

    #[test]
    fn cycles_are_detected() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let c = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        let netlist = b.finish();
        let err = arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).unwrap_err();
        assert!(matches!(err, StaError::UncutCycle { .. }));
        let StaError::UncutCycle {
            witness,
            suggested_cuts,
        } = err;
        // The witness names both JTLs in order; pure transport has no
        // natural cut, so the suggestion falls back to the whole cycle.
        assert_eq!(witness.len(), 2);
        assert!(witness.contains(&a) && witness.contains(&c));
        assert_eq!(suggested_cuts, witness);
    }

    #[test]
    fn suggested_cuts_prefer_storage_cells() {
        // jtl -> dro -> jtl -> back: the DRO is the natural cut.
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let d = b.dro();
        let c = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(d, Dro::CLK));
        b.connect(Pin::new(d, Dro::Q), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        let netlist = b.finish();
        let err = arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).unwrap_err();
        let StaError::UncutCycle {
            witness,
            suggested_cuts,
        } = err;
        assert_eq!(witness.len(), 3);
        assert_eq!(suggested_cuts, vec![d]);

        // The same loop enters the DRO through CLK (its trigger pin), so
        // even the pin-aware graph is cyclic here.
        let trig = trigger_arrival_times(
            &netlist,
            &[Pin::new(a, Jtl::IN)],
            &HashSet::new(),
            Sense::Latest,
        );
        assert!(trig.is_err());
    }

    #[test]
    fn trigger_graph_segments_paths_at_data_pins() {
        // jtl -> dro.D -> (dro.Q -> jtl): entering through the data pin
        // does not launch, so the loop vanishes from the trigger graph and
        // the DRO's arrival is defined by its CLK only.
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let d = b.dro();
        let c = b.jtl();
        let clk = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(d, Dro::D));
        b.connect(Pin::new(d, Dro::Q), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        b.connect(Pin::new(clk, Jtl::OUT), Pin::new(d, Dro::CLK));
        let netlist = b.finish();
        // All-pin analysis needs a cut...
        assert!(arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).is_err());
        // ...the trigger-aware one does not.
        let starts = [Pin::new(a, Jtl::IN), Pin::new(clk, Jtl::IN)];
        let times = trigger_arrival_times(&netlist, &starts, &HashSet::new(), Sense::Latest)
            .expect("trigger graph is acyclic");
        // d launches from clk: jtl 2 + wire 0 = 2.
        assert_eq!(times.at(d), Some(2.0));
        // c hears the popped pulse: 2 + dro 4 = 6; the loop re-enters a
        // through its (triggering) input but dies at the DRO's data pin.
        assert_eq!(times.at(c), Some(6.0));
        assert_eq!(times.at(a), Some(8.0));
    }

    #[test]
    fn find_cycles_reports_witnesses() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let c = b.jtl();
        let lonely = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        let netlist = b.finish();
        let cycles = find_cycles(&netlist, &HashSet::new());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        assert!(!cycles[0].contains(&lonely));
        // Cutting a cycle member removes it.
        let cuts: HashSet<_> = [a].into_iter().collect();
        assert!(find_cycles(&netlist, &cuts).is_empty());
    }

    #[test]
    fn cuts_break_cycles() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let c = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        let netlist = b.finish();
        let cuts: HashSet<_> = [c].into_iter().collect();
        let times = arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &cuts).expect("cut");
        assert_eq!(times.at(c), Some(2.0));
        assert_eq!(times.critical_path_ps(), Some(2.0));
        assert_eq!(times.critical_endpoints(), vec![c]);
    }

    #[test]
    fn unreachable_components_have_no_arrival() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let lonely = b.jtl();
        let netlist = b.finish();
        let times =
            arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).expect("acyclic");
        assert_eq!(times.at(lonely), None);
        assert_eq!(times.at(a), Some(0.0));
    }

    #[test]
    fn issue_period_check() {
        assert!(min_issue_period_ok(53.0));
        assert!(!min_issue_period_ok(40.0));
    }
}
