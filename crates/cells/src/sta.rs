//! Static timing analysis over netlists (the qSTA \[21\] stand-in).
//!
//! Computes worst-case arrival times from a set of start pins by
//! longest-path relaxation over the component graph, using each cell's
//! nominal [`propagation_delay`](sfq_sim::component::Component::propagation_delay)
//! plus the wire delays. SFQ register files contain real feedback (the
//! HiPerRF loopback), so the analysis takes an explicit set of *cut*
//! components at which propagation stops; an uncut positive cycle is
//! reported as an error rather than silently iterated.

use std::collections::HashSet;

use sfq_sim::netlist::{ComponentId, Netlist, Pin};

/// Error from a timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// The graph contains a cycle not covered by the cut set; arrival
    /// times would be unbounded.
    UncutCycle {
        /// A component on the offending cycle.
        witness: ComponentId,
    },
}

impl std::fmt::Display for StaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaError::UncutCycle { witness } => {
                write!(
                    f,
                    "netlist cycle through {witness} not covered by the cut set"
                )
            }
        }
    }
}

impl std::error::Error for StaError {}

/// Worst-case arrival times per component (input reference), in ps.
///
/// Carries the real [`ComponentId`]s of the analysed netlist so that
/// endpoints are reported as ids obtained from that netlist, never
/// reconstructed from raw indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTimes {
    arrivals: Vec<Option<f64>>,
    ids: Vec<ComponentId>,
}

impl ArrivalTimes {
    /// Arrival time at a component's inputs, if reachable.
    pub fn at(&self, id: ComponentId) -> Option<f64> {
        self.arrivals.get(id.index()).copied().flatten()
    }

    /// The overall critical-path delay (latest arrival anywhere).
    pub fn critical_path_ps(&self) -> Option<f64> {
        self.arrivals
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Components whose arrival equals the critical path (within 1 fs).
    pub fn critical_endpoints(&self) -> Vec<ComponentId> {
        let Some(cp) = self.critical_path_ps() else {
            return Vec::new();
        };
        self.arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some_and(|v| (v - cp).abs() < 1e-3))
            .map(|(i, _)| self.ids[i])
            .collect()
    }
}

/// Computes worst-case arrival times from `starts` (input pins injected at
/// t = 0), stopping at components in `cuts`.
///
/// # Errors
///
/// [`StaError::UncutCycle`] if relaxation has not converged after `n`
/// rounds, which implies a cycle outside the cut set.
pub fn arrival_times(
    netlist: &Netlist,
    starts: &[Pin],
    cuts: &HashSet<ComponentId>,
) -> Result<ArrivalTimes, StaError> {
    let n = netlist.component_count();
    let ids: Vec<ComponentId> = netlist.iter().map(|(id, _, _)| id).collect();
    let mut arrivals: Vec<Option<f64>> = vec![None; n];
    for pin in starts {
        let slot = &mut arrivals[pin.component.index()];
        *slot = Some(slot.unwrap_or(0.0).max(0.0));
    }

    // Collect edges once: (src component, dst component, delay ps).
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for (id, _, comp) in netlist.iter() {
        let Some(cell_delay) = comp.propagation_delay() else {
            continue;
        };
        if cuts.contains(&id) {
            continue;
        }
        // A component may emit on several output pins; enumerate the ones
        // that have fanout (probe pins index space is small, scan 0..4).
        for out_pin in 0..4u8 {
            for &(to, wire) in netlist.fanout(Pin::new(id, out_pin)) {
                edges.push((
                    id.index(),
                    to.component.index(),
                    cell_delay.as_ps() + wire.as_ps(),
                ));
            }
        }
    }

    // Longest-path relaxation; at most n rounds for an acyclic reachable
    // subgraph.
    for _round in 0..=n {
        let mut changed = None;
        for &(src, dst, delay) in &edges {
            if let Some(a) = arrivals[src] {
                let candidate = a + delay;
                if arrivals[dst].is_none_or(|cur| candidate > cur + 1e-9) {
                    arrivals[dst] = Some(candidate);
                    changed = Some(dst);
                }
            }
        }
        if changed.is_none() {
            return Ok(ArrivalTimes { arrivals, ids });
        }
        if _round == n {
            return Err(StaError::UncutCycle {
                witness: ids[changed.expect("changed in final round")],
            });
        }
    }
    Ok(ArrivalTimes { arrivals, ids })
}

/// Convenience: the worst-case delay from `start` to a specific component.
///
/// # Errors
///
/// Propagates [`StaError`] from [`arrival_times`].
pub fn path_delay_ps(
    netlist: &Netlist,
    start: Pin,
    end: ComponentId,
    cuts: &HashSet<ComponentId>,
) -> Result<Option<f64>, StaError> {
    Ok(arrival_times(netlist, &[start], cuts)?.at(end))
}

/// Checks that every NDROC in the netlist would see enable pulses no
/// closer than the re-arm interval, given an operation issue period: the
/// static analogue of the dynamic re-arm violation check.
pub fn min_issue_period_ok(issue_period_ps: f64) -> bool {
    issue_period_ps >= crate::timing::NDROC_REARM_PS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::transport::Jtl;
    use sfq_sim::simulator::Simulator;
    use sfq_sim::time::{Duration, Time};

    #[test]
    fn chain_arrival_matches_simulation() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl_with_delay(Duration::from_ps(2.0));
        let c = b.jtl_with_delay(Duration::from_ps(5.0));
        let d = b.jtl_with_delay(Duration::from_ps(1.5));
        b.connect_delayed(
            Pin::new(a, Jtl::OUT),
            Pin::new(c, Jtl::IN),
            Duration::from_ps(0.5),
        );
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(d, Jtl::IN));
        let netlist = b.finish();

        let times =
            arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).expect("acyclic");
        assert_eq!(times.at(d), Some(7.5)); // 2 + 0.5 + 5

        // Dynamic check: the pulse reaches d's input at the same time, so
        // its output fires one instance delay later.
        let mut sim = Simulator::new(netlist);
        let p = sim.probe(Pin::new(d, Jtl::OUT), "end");
        sim.inject(Pin::new(a, Jtl::IN), Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(p).pulses()[0], Time::from_ps(9.0)); // + d's own 1.5
    }

    #[test]
    fn reconvergent_paths_take_the_longest() {
        // a splits; one branch is slow; both merge at m.
        let mut b = CircuitBuilder::new();
        let s = b.splitter();
        let fast = b.jtl_with_delay(Duration::from_ps(1.0));
        let slow = b.jtl_with_delay(Duration::from_ps(9.0));
        let m = b.merger();
        b.connect(
            Pin::new(s, crate::transport::Splitter::OUT0),
            Pin::new(fast, Jtl::IN),
        );
        b.connect(
            Pin::new(s, crate::transport::Splitter::OUT1),
            Pin::new(slow, Jtl::IN),
        );
        b.connect(
            Pin::new(fast, Jtl::OUT),
            Pin::new(m, crate::transport::Merger::IN_A),
        );
        b.connect(
            Pin::new(slow, Jtl::OUT),
            Pin::new(m, crate::transport::Merger::IN_B),
        );
        let netlist = b.finish();
        let times = arrival_times(
            &netlist,
            &[Pin::new(s, crate::transport::Splitter::IN)],
            &HashSet::new(),
        )
        .expect("acyclic");
        // splitter 3 + slow 9 = 12 at the merger input.
        assert_eq!(times.at(m), Some(12.0));
    }

    #[test]
    fn cycles_are_detected() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let c = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        let netlist = b.finish();
        let err = arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).unwrap_err();
        assert!(matches!(err, StaError::UncutCycle { .. }));
    }

    #[test]
    fn cuts_break_cycles() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let c = b.jtl();
        b.connect(Pin::new(a, Jtl::OUT), Pin::new(c, Jtl::IN));
        b.connect(Pin::new(c, Jtl::OUT), Pin::new(a, Jtl::IN));
        let netlist = b.finish();
        let cuts: HashSet<_> = [c].into_iter().collect();
        let times = arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &cuts).expect("cut");
        assert_eq!(times.at(c), Some(2.0));
        assert_eq!(times.critical_path_ps(), Some(2.0));
        assert_eq!(times.critical_endpoints(), vec![c]);
    }

    #[test]
    fn unreachable_components_have_no_arrival() {
        let mut b = CircuitBuilder::new();
        let a = b.jtl();
        let lonely = b.jtl();
        let netlist = b.finish();
        let times =
            arrival_times(&netlist, &[Pin::new(a, Jtl::IN)], &HashSet::new()).expect("acyclic");
        assert_eq!(times.at(lonely), None);
        assert_eq!(times.at(a), Some(0.0));
    }

    #[test]
    fn issue_period_check() {
        assert!(min_issue_period_ok(53.0));
        assert!(!min_issue_period_ok(40.0));
    }
}
