//! Logic gates: dynamic AND (DAND) and clocked AND / NOT / XOR.
//!
//! SFQ logic gates are clocked at the gate level (paper §II-A): inputs are
//! latched until a clock pulse evaluates them. The dynamic AND \[13\] is the
//! exception the register-file write port exploits — it has no clock and
//! instead fires only when both inputs coincide within a hold window
//! (paper §III-C), which eliminates clock distribution in the port.

use sfq_sim::compiled::{CellOp, GateFunc, Lowered};
use sfq_sim::component::{Component, PulseContext};
use sfq_sim::time::{Duration, Time};

use crate::timing::{DAND_DELAY_PS, DAND_WINDOW_PS, SYNC_HOLD_PS, SYNC_SETUP_PS, SYNC_TRACK_PS};

/// Per-gate propagation delay of clocked gates (CLK → OUT), ps.
pub const CLOCKED_GATE_DELAY_PS: f64 = 6.0;

/// Dynamic AND: fires iff both inputs arrive within the hold window.
///
/// Pins: input `A = 0`, `B = 1`; output `OUT = 0`. Each input pulse can
/// pair with at most one pulse of the other input.
#[derive(Debug, Clone, Default)]
pub struct Dand {
    pending_a: Option<Time>,
    pending_b: Option<Time>,
}

impl Dand {
    /// First input pin.
    pub const A: u8 = 0;
    /// Second input pin.
    pub const B: u8 = 1;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates a dynamic AND gate.
    pub fn new() -> Self {
        Dand::default()
    }

    fn try_fire(
        &mut self,
        now: Time,
        other: &mut Option<Time>,
        ctx: &mut PulseContext<'_>,
    ) -> bool {
        if let Some(t) = *other {
            if now.abs_diff(t) <= Duration::from_ps(DAND_WINDOW_PS) {
                *other = None;
                ctx.emit_after(Self::OUT, now, Duration::from_ps(DAND_DELAY_PS));
                return true;
            }
            // The earlier pulse fell out of the window; it is lost.
            *other = None;
        }
        false
    }
}

impl Component for Dand {
    fn kind(&self) -> &'static str {
        "dand"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::A => {
                let mut b = self.pending_b.take();
                let fired = self.try_fire(now, &mut b, ctx);
                self.pending_b = b;
                if !fired {
                    self.pending_a = Some(now);
                }
            }
            Self::B => {
                let mut a = self.pending_a.take();
                let fired = self.try_fire(now, &mut a, ctx);
                self.pending_a = a;
                if !fired {
                    self.pending_b = Some(now);
                }
            }
            other => ctx.violation(now, "pin", format!("dand has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.pending_a = None;
        self.pending_b = None;
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(DAND_DELAY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Dand {
                window: Duration::from_ps(DAND_WINDOW_PS),
                delay: Duration::from_ps(DAND_DELAY_PS),
            },
            bits: 0,
            time_a: self.pending_a,
            time_b: self.pending_b,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.pending_a = state.time_a;
        self.pending_b = state.time_b;
    }
}

/// Clocked two-input gate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateFn {
    And,
    Xor,
}

/// Clocked AND gate: latches input pulses and evaluates on CLK
/// (paper Fig. 5; costs 12 JJs).
///
/// Pins: input `A = 0`, `B = 1`, `CLK = 2`; output `OUT = 0`.
#[derive(Debug, Clone)]
pub struct AndGate {
    a: bool,
    b: bool,
    f: GateFn,
}

impl AndGate {
    /// First input pin.
    pub const A: u8 = 0;
    /// Second input pin.
    pub const B: u8 = 1;
    /// Clock pin.
    pub const CLK: u8 = 2;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates a clocked AND gate.
    pub fn new() -> Self {
        AndGate {
            a: false,
            b: false,
            f: GateFn::And,
        }
    }
}

impl Default for AndGate {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for AndGate {
    fn kind(&self) -> &'static str {
        match self.f {
            GateFn::And => "and",
            GateFn::Xor => "xor",
        }
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::A => self.a = true,
            Self::B => self.b = true,
            Self::CLK => {
                let fire = match self.f {
                    GateFn::And => self.a && self.b,
                    GateFn::Xor => self.a ^ self.b,
                };
                self.a = false;
                self.b = false;
                if fire {
                    ctx.emit_after(Self::OUT, now, Duration::from_ps(CLOCKED_GATE_DELAY_PS));
                }
            }
            other => ctx.violation(now, "pin", format!("gate has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.a = false;
        self.b = false;
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(CLOCKED_GATE_DELAY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Gate {
                func: match self.f {
                    GateFn::And => GateFunc::And,
                    GateFn::Xor => GateFunc::Xor,
                },
                delay: Duration::from_ps(CLOCKED_GATE_DELAY_PS),
            },
            bits: self.a as u8 | (self.b as u8) << 1,
            time_a: None,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.a = state.bits & 1 != 0;
        self.b = state.bits & 2 != 0;
    }
}

/// Clocked XOR gate (same latching discipline as [`AndGate`]).
#[derive(Debug, Clone)]
pub struct XorGate(AndGate);

impl XorGate {
    /// First input pin.
    pub const A: u8 = 0;
    /// Second input pin.
    pub const B: u8 = 1;
    /// Clock pin.
    pub const CLK: u8 = 2;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates a clocked XOR gate.
    pub fn new() -> Self {
        XorGate(AndGate {
            a: false,
            b: false,
            f: GateFn::Xor,
        })
    }
}

impl Default for XorGate {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for XorGate {
    fn kind(&self) -> &'static str {
        "xor"
    }
    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        self.0.pulse(pin, now, ctx);
    }
    fn power_on_reset(&mut self) {
        self.0.power_on_reset();
    }

    fn propagation_delay(&self) -> Option<Duration> {
        self.0.propagation_delay()
    }

    fn lower(&self) -> Option<Lowered> {
        self.0.lower()
    }

    fn restore(&mut self, state: &Lowered) {
        self.0.restore(state);
    }
}

/// Clocked sampling element — the margin engine's *clocked baseline*
/// reference for the §II-D comparison.
///
/// Pins: input `D = 0`, `CLK = 1`; output `OUT = 0`.
///
/// Models the timing discipline of a globally-clocked capture point: a data
/// pulse is sampled by a clock pulse iff it arrives at least
/// [`SYNC_SETUP_PS`] before the edge and no more than
/// [`SYNC_SETUP_PS`]` + `[`SYNC_TRACK_PS`] before it (dynamic retention —
/// a generic clocked sampler holds its input for only a few ps, unlike the
/// DAND whose engineered 8 ps hold window is what makes the clock-less
/// port possible). Data falling inside the setup/hold aperture around the
/// edge records a `setup` violation (metastable capture); under the
/// `Degrade` policy the capture produces nothing.
#[derive(Debug, Clone, Default)]
pub struct SyncSampler {
    pending_d: Option<Time>,
    last_clk: Option<Time>,
}

impl SyncSampler {
    /// Data input pin.
    pub const D: u8 = 0;
    /// Clock input pin.
    pub const CLK: u8 = 1;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates an idle sampler.
    pub fn new() -> Self {
        SyncSampler::default()
    }
}

impl Component for SyncSampler {
    fn kind(&self) -> &'static str {
        "sync"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::D => {
                if let Some(tc) = self.last_clk {
                    // Data racing in just after an edge is a hold upset.
                    if now.abs_diff(tc) <= Duration::from_ps(SYNC_HOLD_PS)
                        && ctx.violation_degrades(
                            now,
                            "setup",
                            format!(
                                "data {} after the clock edge, hold is {SYNC_HOLD_PS}ps",
                                now.abs_diff(tc)
                            ),
                        )
                    {
                        return; // degraded: the racing pulse is destroyed
                    }
                }
                self.pending_d = Some(now);
            }
            Self::CLK => {
                self.last_clk = Some(now);
                if let Some(td) = self.pending_d.take() {
                    let lead = now.abs_diff(td);
                    if lead < Duration::from_ps(SYNC_SETUP_PS) {
                        // Inside the aperture: metastable capture.
                        if ctx.violation_degrades(
                            now,
                            "setup",
                            format!("data leads the clock by {lead}, setup is {SYNC_SETUP_PS}ps"),
                        ) {
                            return; // degraded: no clean output forms
                        }
                    } else if lead > Duration::from_ps(SYNC_SETUP_PS + SYNC_TRACK_PS) {
                        // Dynamic retention expired; the datum decayed.
                        return;
                    }
                    ctx.emit_after(Self::OUT, now, Duration::from_ps(CLOCKED_GATE_DELAY_PS));
                }
            }
            other => ctx.violation(now, "pin", format!("sync has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.pending_d = None;
        self.last_clk = None;
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(CLOCKED_GATE_DELAY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Sync {
                setup: Duration::from_ps(SYNC_SETUP_PS),
                track: Duration::from_ps(SYNC_TRACK_PS),
                hold: Duration::from_ps(SYNC_HOLD_PS),
                delay: Duration::from_ps(CLOCKED_GATE_DELAY_PS),
            },
            bits: 0,
            time_a: self.pending_d,
            time_b: self.last_clk,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.pending_d = state.time_a;
        self.last_clk = state.time_b;
    }
}

/// Clocked NOT gate: emits on CLK iff no input pulse was latched
/// (costs 10 JJs, paper §III-A).
///
/// Pins: input `A = 0`, `CLK = 1`; output `OUT = 0`.
#[derive(Debug, Clone, Default)]
pub struct NotGate {
    a: bool,
}

impl NotGate {
    /// Data input pin.
    pub const A: u8 = 0;
    /// Clock pin.
    pub const CLK: u8 = 1;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates a clocked NOT gate.
    pub fn new() -> Self {
        NotGate::default()
    }
}

impl Component for NotGate {
    fn kind(&self) -> &'static str {
        "not"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::A => self.a = true,
            Self::CLK => {
                if !self.a {
                    ctx.emit_after(Self::OUT, now, Duration::from_ps(CLOCKED_GATE_DELAY_PS));
                }
                self.a = false;
            }
            other => ctx.violation(now, "pin", format!("not has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.a = false;
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(CLOCKED_GATE_DELAY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Not {
                delay: Duration::from_ps(CLOCKED_GATE_DELAY_PS),
            },
            bits: self.a as u8,
            time_a: None,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.a = state.bits != 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::netlist::{Netlist, Pin};
    use sfq_sim::simulator::Simulator;

    fn single(cell: Box<dyn Component>) -> (Simulator, sfq_sim::netlist::ComponentId) {
        let mut n = Netlist::new();
        let id = n.add("g", cell);
        (Simulator::new(n), id)
    }

    #[test]
    fn dand_fires_on_coincidence() {
        let (mut sim, id) = single(Box::new(Dand::new()));
        let p = sim.probe(Pin::new(id, Dand::OUT), "out");
        sim.inject(Pin::new(id, Dand::A), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Dand::B), Time::from_ps(3.0));
        sim.run();
        assert_eq!(
            sim.probe_trace(p).pulses(),
            &[Time::from_ps(3.0 + DAND_DELAY_PS)]
        );
    }

    #[test]
    fn dand_misses_outside_window() {
        let (mut sim, id) = single(Box::new(Dand::new()));
        let p = sim.probe(Pin::new(id, Dand::OUT), "out");
        sim.inject(Pin::new(id, Dand::A), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Dand::B), Time::from_ps(20.0));
        sim.run();
        assert!(sim.probe_trace(p).is_empty());
    }

    #[test]
    fn dand_pairs_each_pulse_once() {
        let (mut sim, id) = single(Box::new(Dand::new()));
        let p = sim.probe(Pin::new(id, Dand::OUT), "out");
        // One A pulse, two B pulses nearby: only one output.
        sim.inject(Pin::new(id, Dand::A), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Dand::B), Time::from_ps(2.0));
        sim.inject(Pin::new(id, Dand::B), Time::from_ps(5.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn dand_serial_train_gated() {
        // Three aligned pulse pairs, 10 ps apart: three outputs — this is
        // how the HiPerRF write port gates HC-DRO pulse trains.
        let (mut sim, id) = single(Box::new(Dand::new()));
        let p = sim.probe(Pin::new(id, Dand::OUT), "out");
        for i in 0..3 {
            let t = 10.0 * i as f64;
            sim.inject(Pin::new(id, Dand::A), Time::from_ps(t));
            sim.inject(Pin::new(id, Dand::B), Time::from_ps(t + 1.0));
        }
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 3);
    }

    #[test]
    fn and_gate_truth_table() {
        let (mut sim, id) = single(Box::new(AndGate::new()));
        let p = sim.probe(Pin::new(id, AndGate::OUT), "out");
        // 1&1 -> 1
        sim.inject(Pin::new(id, AndGate::A), Time::from_ps(0.0));
        sim.inject(Pin::new(id, AndGate::B), Time::from_ps(1.0));
        sim.inject(Pin::new(id, AndGate::CLK), Time::from_ps(10.0));
        // 1&0 -> 0
        sim.inject(Pin::new(id, AndGate::A), Time::from_ps(20.0));
        sim.inject(Pin::new(id, AndGate::CLK), Time::from_ps(30.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn xor_gate_truth_table() {
        let (mut sim, id) = single(Box::new(XorGate::new()));
        let p = sim.probe(Pin::new(id, XorGate::OUT), "out");
        // 1^0 -> 1
        sim.inject(Pin::new(id, XorGate::A), Time::from_ps(0.0));
        sim.inject(Pin::new(id, XorGate::CLK), Time::from_ps(10.0));
        // 1^1 -> 0
        sim.inject(Pin::new(id, XorGate::A), Time::from_ps(20.0));
        sim.inject(Pin::new(id, XorGate::B), Time::from_ps(21.0));
        sim.inject(Pin::new(id, XorGate::CLK), Time::from_ps(30.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn not_gate_inverts() {
        let (mut sim, id) = single(Box::new(NotGate::new()));
        let p = sim.probe(Pin::new(id, NotGate::OUT), "out");
        // no input -> 1
        sim.inject(Pin::new(id, NotGate::CLK), Time::from_ps(10.0));
        // input -> 0
        sim.inject(Pin::new(id, NotGate::A), Time::from_ps(20.0));
        sim.inject(Pin::new(id, NotGate::CLK), Time::from_ps(30.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
        assert_eq!(
            sim.probe_trace(p).pulses()[0],
            Time::from_ps(10.0 + CLOCKED_GATE_DELAY_PS)
        );
    }

    #[test]
    fn sync_sampler_captures_in_its_window() {
        let (mut sim, id) = single(Box::new(SyncSampler::new()));
        let p = sim.probe(Pin::new(id, SyncSampler::OUT), "out");
        // Data 5 ps before the edge: inside [setup, setup+track] = [3, 7].
        sim.inject(Pin::new(id, SyncSampler::D), Time::from_ps(10.0));
        sim.inject(Pin::new(id, SyncSampler::CLK), Time::from_ps(15.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn sync_sampler_misses_stale_data() {
        let (mut sim, id) = single(Box::new(SyncSampler::new()));
        let p = sim.probe(Pin::new(id, SyncSampler::OUT), "out");
        // Data 12 ps before the edge: dynamic retention (7 ps) expired.
        sim.inject(Pin::new(id, SyncSampler::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, SyncSampler::CLK), Time::from_ps(12.0));
        sim.run();
        assert!(sim.probe_trace(p).is_empty());
        assert!(
            sim.violations().is_empty(),
            "a decayed datum is a miss, not a violation"
        );
    }

    #[test]
    fn sync_sampler_setup_violation_degrades_to_nothing() {
        use sfq_sim::violation::ViolationPolicy;
        for (policy, expect_out) in [(ViolationPolicy::Record, 1), (ViolationPolicy::Degrade, 0)] {
            let (mut sim, id) = single(Box::new(SyncSampler::new()));
            sim.set_violation_policy(policy);
            let p = sim.probe(Pin::new(id, SyncSampler::OUT), "out");
            // Data only 1 ps before the edge: inside the 3 ps setup aperture.
            sim.inject(Pin::new(id, SyncSampler::D), Time::from_ps(10.0));
            sim.inject(Pin::new(id, SyncSampler::CLK), Time::from_ps(11.0));
            sim.run();
            assert_eq!(sim.violations().len(), 1, "{policy:?}");
            assert_eq!(sim.violations()[0].kind, "setup");
            assert_eq!(sim.probe_trace(p).len(), expect_out, "{policy:?}");
        }
    }

    #[test]
    fn gate_state_clears_after_clock() {
        let (mut sim, id) = single(Box::new(AndGate::new()));
        let p = sim.probe(Pin::new(id, AndGate::OUT), "out");
        sim.inject(Pin::new(id, AndGate::A), Time::from_ps(0.0));
        sim.inject(Pin::new(id, AndGate::B), Time::from_ps(0.5));
        sim.inject(Pin::new(id, AndGate::CLK), Time::from_ps(5.0));
        // Latches were consumed; a bare clock produces nothing.
        sim.inject(Pin::new(id, AndGate::CLK), Time::from_ps(15.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }
}
