//! Ergonomic netlist construction.
//!
//! [`CircuitBuilder`] wraps a [`Netlist`] with labeled-instance helpers for
//! every library cell plus the fan-out/fan-in tree builders that SFQ
//! designs need everywhere (explicit splitters for fan-out, mergers for
//! fan-in, paper §II-F).

use std::collections::VecDeque;

use sfq_sim::component::Component;
use sfq_sim::netlist::{ComponentId, Netlist, Pin};
use sfq_sim::time::Duration;

use crate::counter::CounterBit;
use crate::logic::{AndGate, Dand, NotGate, SyncSampler};
use crate::storage::{Dro, HcDro, Ndro, Ndroc};
use crate::transport::{Jtl, Merger, Splitter};

/// Builder over a netlist with hierarchical instance scopes.
///
/// Scopes live on the [`Netlist`] itself: every cell added between
/// [`CircuitBuilder::push_scope`] and the matching
/// [`CircuitBuilder::pop_scope`] lands in that named region, so structural
/// analyses can later attribute it via
/// [`Netlist::scope_of`]/[`Netlist::iter_scope`].
#[derive(Debug)]
pub struct CircuitBuilder {
    netlist: Netlist,
    counter: u64,
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBuilder {
    /// Creates a builder over an empty netlist.
    pub fn new() -> Self {
        CircuitBuilder {
            netlist: Netlist::new(),
            counter: 0,
        }
    }

    /// Finishes building and returns the netlist.
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    /// Returns the netlist built so far.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Exclusive access to the netlist under construction — the typed
    /// layer routes its binds through [`Netlist::try_connect`] here.
    pub(crate) fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Opens an instance scope (e.g. `"readport"`); cells added until the
    /// matching [`CircuitBuilder::pop_scope`] belong to it.
    pub fn push_scope(&mut self, scope: impl Into<String>) {
        self.netlist.push_scope(scope);
    }

    /// Closes the innermost instance scope.
    pub fn pop_scope(&mut self) {
        self.netlist.pop_scope();
    }

    /// Runs `f` inside an instance scope.
    pub fn scoped<R>(&mut self, scope: impl Into<String>, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope(scope);
        let r = f(self);
        self.pop_scope();
        r
    }

    fn label(&mut self, kind: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{kind}{n}")
    }

    /// Adds an arbitrary component in the current scope.
    pub fn add(&mut self, kind_label: &str, c: Box<dyn Component>) -> ComponentId {
        let label = self.label(kind_label);
        self.netlist.add(label, c)
    }

    /// Adds a nominal-delay JTL.
    pub fn jtl(&mut self) -> ComponentId {
        self.add("jtl", Box::new(Jtl::new()))
    }

    /// Adds a JTL tuned to `delay`.
    pub fn jtl_with_delay(&mut self, delay: Duration) -> ComponentId {
        self.add("jtl", Box::new(Jtl::with_delay(delay)))
    }

    /// Adds a splitter.
    pub fn splitter(&mut self) -> ComponentId {
        self.add("sp", Box::new(Splitter::new()))
    }

    /// Adds a merger.
    pub fn merger(&mut self) -> ComponentId {
        self.add("mg", Box::new(Merger::new()))
    }

    /// Adds a DRO cell.
    pub fn dro(&mut self) -> ComponentId {
        self.add("dro", Box::new(Dro::new()))
    }

    /// Adds a 2-bit HC-DRO cell.
    pub fn hcdro(&mut self) -> ComponentId {
        self.add("hcdro", Box::new(HcDro::new()))
    }

    /// Adds an HC-DRO cell with explicit fluxon capacity.
    pub fn hcdro_with_capacity(&mut self, capacity: u8) -> ComponentId {
        self.add("hcdro", Box::new(HcDro::with_capacity(capacity)))
    }

    /// Adds an NDRO cell.
    pub fn ndro(&mut self) -> ComponentId {
        self.add("ndro", Box::new(Ndro::new()))
    }

    /// Adds an NDROC (complementary-output) cell.
    pub fn ndroc(&mut self) -> ComponentId {
        self.add("ndroc", Box::new(Ndroc::new()))
    }

    /// Adds a dynamic AND gate.
    pub fn dand(&mut self) -> ComponentId {
        self.add("dand", Box::new(Dand::new()))
    }

    /// Adds a clocked AND gate.
    pub fn and_gate(&mut self) -> ComponentId {
        self.add("and", Box::new(AndGate::new()))
    }

    /// Adds a clocked NOT gate.
    pub fn not_gate(&mut self) -> ComponentId {
        self.add("not", Box::new(NotGate::new()))
    }

    /// Adds a clocked sampling element (margin-engine reference cell).
    pub fn sync_sampler(&mut self) -> ComponentId {
        self.add("sync", Box::new(SyncSampler::new()))
    }

    /// Adds a counter bit.
    pub fn counter_bit(&mut self) -> ComponentId {
        self.add("cb", Box::new(CounterBit::new()))
    }

    /// Connects an output pin to an input pin with zero wire delay.
    pub fn connect(&mut self, from: Pin, to: Pin) {
        self.netlist.connect(from, to, Duration::ZERO);
    }

    /// Connects with an explicit wire delay (PTL segment).
    pub fn connect_delayed(&mut self, from: Pin, to: Pin, delay: Duration) {
        self.netlist.connect(from, to, delay);
    }

    /// Builds a balanced splitter tree from `root` (an output pin) to
    /// `leaves` output pins. Uses `leaves - 1` splitters; with `leaves == 1`
    /// the root is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn splitter_tree(&mut self, root: Pin, leaves: usize) -> Vec<Pin> {
        assert!(leaves > 0, "splitter tree needs at least one leaf");
        let mut q: VecDeque<Pin> = VecDeque::from([root]);
        while q.len() < leaves {
            let src = q.pop_front().expect("queue never empty");
            let s = self.splitter();
            self.connect(src, Pin::new(s, Splitter::IN));
            q.push_back(Pin::new(s, Splitter::OUT0));
            q.push_back(Pin::new(s, Splitter::OUT1));
        }
        q.into_iter().collect()
    }

    /// Builds a balanced merger tree combining `inputs` (output pins of the
    /// sources) into a single output pin. Uses `inputs.len() - 1` mergers.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn merger_tree(&mut self, inputs: &[Pin]) -> Pin {
        assert!(!inputs.is_empty(), "merger tree needs at least one input");
        let mut level: Vec<Pin> = inputs.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.chunks(2);
            for pair in &mut it {
                match pair {
                    [a, b] => {
                        let m = self.merger();
                        self.connect(*a, Pin::new(m, Merger::IN_A));
                        self.connect(*b, Pin::new(m, Merger::IN_B));
                        next.push(Pin::new(m, Merger::OUT));
                    }
                    [a] => next.push(*a),
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            }
            level = next;
        }
        level[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::simulator::Simulator;
    use sfq_sim::time::Time;

    #[test]
    fn splitter_tree_fans_out() {
        let mut b = CircuitBuilder::new();
        let src = b.jtl();
        let leaves = b.splitter_tree(Pin::new(src, Jtl::OUT), 5);
        assert_eq!(leaves.len(), 5);
        // 4 splitters for 5 leaves.
        let mut sim = Simulator::new(b.finish());
        let probes: Vec<_> = leaves
            .iter()
            .map(|&p| sim.probe(p, format!("leaf{}", p.index)))
            .collect();
        sim.inject(Pin::new(src, Jtl::IN), Time::ZERO);
        sim.run();
        for p in probes {
            assert_eq!(sim.probe_trace(p).len(), 1);
        }
    }

    #[test]
    fn splitter_tree_single_leaf_is_identity() {
        let mut b = CircuitBuilder::new();
        let src = b.jtl();
        let leaves = b.splitter_tree(Pin::new(src, Jtl::OUT), 1);
        assert_eq!(leaves, vec![Pin::new(src, Jtl::OUT)]);
        assert_eq!(b.netlist().component_count(), 1);
    }

    #[test]
    fn merger_tree_fans_in() {
        let mut b = CircuitBuilder::new();
        let srcs: Vec<_> = (0..7).map(|_| b.jtl()).collect();
        let inputs: Vec<_> = srcs.iter().map(|&s| Pin::new(s, Jtl::OUT)).collect();
        let out = b.merger_tree(&inputs);
        let mut sim = Simulator::new(b.finish());
        let p = sim.probe(out, "out");
        // One pulse into a single source propagates to the root.
        sim.inject(Pin::new(srcs[3], Jtl::IN), Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn tree_cell_counts() {
        let mut b = CircuitBuilder::new();
        let src = b.jtl();
        let leaves = b.splitter_tree(Pin::new(src, Jtl::OUT), 32);
        assert_eq!(leaves.len(), 32);
        let n_before = b.netlist().component_count();
        assert_eq!(n_before, 1 + 31); // jtl + 31 splitters
        let out = b.merger_tree(&leaves);
        assert_eq!(b.netlist().component_count(), n_before + 31); // 31 mergers
        let _ = out;
    }

    #[test]
    fn scoped_labels() {
        let mut b = CircuitBuilder::new();
        let id = b.scoped("rf", |b| b.scoped("readport", |b| b.ndroc()));
        assert!(b.netlist().label(id).starts_with("rf/readport/ndroc"));
    }

    #[test]
    fn scopes_recorded_on_netlist() {
        let mut b = CircuitBuilder::new();
        let id = b.scoped("rf", |b| b.scoped("readport", |b| b.ndroc()));
        let outside = b.jtl();
        let n = b.finish();
        assert_eq!(n.scope_of(id), "rf/readport");
        assert_eq!(n.scope_of(outside), "");
        assert_eq!(n.iter_scope("rf").count(), 1);
        assert_eq!(n.iter_scope("rf/readport").count(), 1);
        assert_eq!(
            n.iter_scope("readport").count(),
            0,
            "scope paths are rooted"
        );
    }
}
