//! Calibrated timing constants for the SFQ cell library.
//!
//! These are the single source of truth for every delay in the workspace.
//! Values come from the HiPerRF paper (HPCA 2022) where stated, and from
//! the paper's published design tables where they had to be inferred:
//!
//! * The NDROC demux element needs **53 ps** between successive enable
//!   pulses (`Hold_RESET + Critical_RESET→SET + Setup_SET`), which sets the
//!   register-file cycle time (paper §III-E).
//! * NDROC propagation (IN→OUT) is **24 ps** (paper §III-E).
//! * HC-DRO cells need **10 ps** separation between successive stored or
//!   read pulses (setup/hold, paper §IV-A).
//! * The critical time between a register RESET and the next data pulse is
//!   **10 ps** (paper §III-E).
//! * The mean placed-and-routed wire is **262 µm** of PTL at
//!   **1 ps / 100 µm**, i.e. **2.62 ps per hop** (paper §VI-C).
//! * The synthesized Sodor core has a worst-case gate-level cycle of
//!   **28 ps**; each register-file cycle (53 ps) spans two gate cycles
//!   (paper §VI-B).
//!
//! The remaining primitive delays (splitter, merger, JTL, cell read-out
//! delays) are not individually printed in the paper; they are calibrated
//! so that the composed read-path latency reproduces the paper's Table III
//! readout delays *exactly* (see `hiperrf::delay` for the composition).

use sfq_sim::time::Duration;

/// Josephson transmission line default propagation delay (ps).
pub const JTL_DELAY_PS: f64 = 2.0;
/// Splitter propagation delay (ps).
pub const SPLITTER_DELAY_PS: f64 = 3.0;
/// Merger (confluence buffer) propagation delay (ps).
pub const MERGER_DELAY_PS: f64 = 5.0;
/// Merger dead time: a second pulse arriving within this window of the
/// previous *output* is dissipated (paper §II-F).
pub const MERGER_DEAD_PS: f64 = 3.0;

/// NDROC (complementary-output NDRO demux element) propagation delay,
/// IN → OUT (paper §III-E).
pub const NDROC_PROP_PS: f64 = 24.0;
/// Minimum separation of two successive NDROC enable pulses; this is the
/// register-file cycle time (paper §III-E).
pub const NDROC_REARM_PS: f64 = 53.0;

/// NDRO cell CLK → OUT delay.
pub const NDRO_CLK_TO_OUT_PS: f64 = 5.0;
/// DRO cell CLK → OUT delay.
pub const DRO_CLK_TO_OUT_PS: f64 = 4.0;
/// HC-DRO cell CLK → OUT delay.
pub const HCDRO_CLK_TO_OUT_PS: f64 = 5.0;
/// Minimum separation between successive pulses written into or read out of
/// an HC-DRO cell (setup/hold, paper §IV-A).
pub const HCDRO_PULSE_SEP_PS: f64 = 10.0;
/// Maximum fluxons a 2-bit HC-DRO cell can hold (paper §II-D).
pub const HCDRO_CAPACITY: u8 = 3;
/// Physical misbehavior threshold of the HC-DRO (ps): below this
/// separation a pulse is actually lost in the junctions. Not printed in
/// the paper — inferred. [`HCDRO_PULSE_SEP_PS`] is the *design-rule*
/// separation (the spacing the HC-CLK/HC-WRITE serializers generate); the
/// gap between the two is the cell's guard band, which is what the margin
/// engine's delay-variation sweeps consume before data is corrupted.
pub const HCDRO_HARD_SEP_PS: f64 = 7.0;

/// Dynamic-AND coincidence window: both inputs must arrive within this hold
/// window for an output pulse (paper §III-C, \[13\]).
pub const DAND_WINDOW_PS: f64 = 8.0;
/// Dynamic-AND propagation delay from the *later* input.
pub const DAND_DELAY_PS: f64 = 4.0;

/// Critical time from a register RESET pulse to the first data pulse on its
/// input (paper §III-E).
pub const RESET_TO_WRITE_PS: f64 = 10.0;

/// Clocked sampling element: minimum data-before-clock setup time (ps).
///
/// Not printed in the paper; inferred as typical of RSFQ clocked-gate
/// apertures (a few ps) from behavioral SFQ gate-modeling practice. Used
/// only by the margin engine's *clocked baseline* reference port — the
/// discipline a globally-clocked write port must meet, against which the
/// clock-less DAND window (§II-D) is compared.
pub const SYNC_SETUP_PS: f64 = 3.0;
/// Clocked sampling element: dynamic tracking window (ps) — how much
/// earlier than `clk - SYNC_SETUP_PS` the data pulse may arrive and still
/// be sampled. Unlike the DAND, whose \[13\] design engineers a wide 8 ps
/// hold window precisely so the port can be clock-less, a generic clocked
/// sampler retains its input for only a few ps.
pub const SYNC_TRACK_PS: f64 = 4.0;
/// Clocked sampling element: hold margin after the clock edge (ps). Data
/// arriving inside `(clk - SYNC_SETUP_PS, clk + SYNC_HOLD_PS]` is a setup
/// violation (metastable capture).
pub const SYNC_HOLD_PS: f64 = 2.0;

/// Counter bit (T-flip-flop based, used by HC-READ) toggle → carry delay.
pub const COUNTER_CARRY_PS: f64 = 4.0;
/// Counter bit READ → VALUE delay.
pub const COUNTER_READ_PS: f64 = 4.0;

/// PTL propagation: 1 ps per 100 µm (paper §VI-C).
pub const PTL_PS_PER_100UM: f64 = 1.0;
/// Mean placed-and-routed wire length between two gates (µm, paper §VI-C).
pub const MEAN_HOP_UM: f64 = 262.0;
/// Mean PTL wire delay per gate-to-gate hop (ps).
pub const PTL_HOP_PS: f64 = PTL_PS_PER_100UM * MEAN_HOP_UM / 100.0;

/// Worst-case synthesized gate-level cycle time of the Sodor core (ps).
pub const GATE_CYCLE_PS: f64 = 28.0;
/// Register-file cycle time (ps); equals [`NDROC_REARM_PS`].
pub const RF_CYCLE_PS: f64 = NDROC_REARM_PS;
/// Gate cycles consumed by one register-file cycle (53 ps at 28 ps/gate
/// rounds up to 2, paper §VI-B: "each read or write operation takes two
/// cycles").
pub const GATE_CYCLES_PER_RF_CYCLE: u64 = 2;

/// [`Duration`] convenience constructors for the constants above.
pub mod durations {
    use super::*;

    /// Minimum HC-DRO pulse separation as a [`Duration`].
    pub fn hcdro_pulse_sep() -> Duration {
        Duration::from_ps(HCDRO_PULSE_SEP_PS)
    }

    /// NDROC re-arm time (register-file cycle) as a [`Duration`].
    pub fn rf_cycle() -> Duration {
        Duration::from_ps(RF_CYCLE_PS)
    }

    /// Mean PTL hop delay as a [`Duration`].
    pub fn ptl_hop() -> Duration {
        Duration::from_ps(PTL_HOP_PS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptl_hop_matches_paper() {
        // 262 µm at 1 ps / 100 µm = 2.62 ps (paper §VI-C).
        assert!((PTL_HOP_PS - 2.62).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn rf_cycle_spans_two_gate_cycles() {
        assert!(RF_CYCLE_PS <= GATE_CYCLE_PS * GATE_CYCLES_PER_RF_CYCLE as f64);
        assert!(RF_CYCLE_PS > GATE_CYCLE_PS);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn merger_dead_time_passes_hc_pulse_trains() {
        // Serial HC-DRO pulse trains are 10 ps apart and must survive mergers.
        assert!(MERGER_DEAD_PS < HCDRO_PULSE_SEP_PS);
    }

    #[test]
    fn duration_helpers() {
        assert_eq!(durations::rf_cycle().as_ps(), 53.0);
        assert_eq!(durations::hcdro_pulse_sep().as_ps(), 10.0);
        assert!((durations::ptl_hop().as_ps() - 2.62).abs() < 1e-9);
    }
}
