//! Cell specifications: JJ counts, static power, and census over netlists.
//!
//! In SFQ technology the Josephson-junction (JJ) count is the primary
//! manufacturing and density metric (paper §II-E, §VI-A), and static power
//! is dominated by the bias network, so both are per-cell constants.
//!
//! JJ counts stated in the paper: NDRO **11**, 2-bit HC-DRO **3** (7.3×
//! density advantage), NDROC **33** \[19\], clocked AND **12**, clocked NOT
//! **10**. The remaining counts (splitter 3, merger 5, JTL 2, DRO 6,
//! DAND 5, counter bit 14) follow the RSFQ cell library the paper builds on.
//!
//! Static power values are calibrated so the whole-register-file totals
//! track the paper's Table II (see `EXPERIMENTS.md` for measured-vs-paper).

use std::collections::BTreeMap;
use std::fmt;

use sfq_sim::component::Component;
use sfq_sim::netlist::Netlist;

/// The cell kinds of the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum CellKind {
    /// Josephson transmission line segment (delay element).
    Jtl,
    /// 1→2 pulse splitter.
    Splitter,
    /// 2→1 merger (confluence buffer).
    Merger,
    /// Destructive-readout cell (1 bit).
    Dro,
    /// High-capacity destructive-readout cell (2 bits in ≤3 fluxons).
    HcDro,
    /// Non-destructive readout cell.
    Ndro,
    /// NDRO with complementary outputs (demux element).
    Ndroc,
    /// Dynamic AND (clock-less coincidence gate).
    Dand,
    /// Clocked AND gate.
    AndGate,
    /// Clocked NOT (inverter) gate.
    NotGate,
    /// Clocked XOR gate.
    XorGate,
    /// One-bit counter stage (T-flip-flop with readout), used by HC-READ.
    CounterBit,
}

impl CellKind {
    /// All kinds, in census display order.
    pub const ALL: [CellKind; 12] = [
        CellKind::Jtl,
        CellKind::Splitter,
        CellKind::Merger,
        CellKind::Dro,
        CellKind::HcDro,
        CellKind::Ndro,
        CellKind::Ndroc,
        CellKind::Dand,
        CellKind::AndGate,
        CellKind::NotGate,
        CellKind::XorGate,
        CellKind::CounterBit,
    ];

    /// The canonical lowercase name (matches `Component::kind`).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Jtl => "jtl",
            CellKind::Splitter => "splitter",
            CellKind::Merger => "merger",
            CellKind::Dro => "dro",
            CellKind::HcDro => "hcdro",
            CellKind::Ndro => "ndro",
            CellKind::Ndroc => "ndroc",
            CellKind::Dand => "dand",
            CellKind::AndGate => "and",
            CellKind::NotGate => "not",
            CellKind::XorGate => "xor",
            CellKind::CounterBit => "counter_bit",
        }
    }

    /// Parses a `Component::kind` name back to a [`CellKind`].
    pub fn from_name(name: &str) -> Option<CellKind> {
        CellKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Returns the cell's specification.
    pub fn spec(self) -> CellSpec {
        match self {
            CellKind::Jtl => CellSpec::new(self, 2, 0.40),
            CellKind::Splitter => CellSpec::new(self, 3, 0.55),
            CellKind::Merger => CellSpec::new(self, 5, 1.00),
            CellKind::Dro => CellSpec::new(self, 6, 1.20),
            // Higher critical currents (J1≈115µA, J2≈111µA) give the 3-JJ
            // HC-DRO a higher per-JJ bias power than ordinary cells.
            CellKind::HcDro => CellSpec::new(self, 3, 2.00),
            CellKind::Ndro => CellSpec::new(self, 11, 2.20),
            CellKind::Ndroc => CellSpec::new(self, 33, 7.90),
            CellKind::Dand => CellSpec::new(self, 5, 1.00),
            CellKind::AndGate => CellSpec::new(self, 12, 2.40),
            CellKind::NotGate => CellSpec::new(self, 10, 2.00),
            CellKind::XorGate => CellSpec::new(self, 11, 2.20),
            CellKind::CounterBit => CellSpec::new(self, 14, 2.80),
        }
    }

    /// JJ count of this cell kind.
    pub fn jj_count(self) -> u64 {
        self.spec().jj_count
    }

    /// Static power of this cell kind in µW.
    pub fn static_power_uw(self) -> f64 {
        self.spec().static_power_uw
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cell manufacturing/power specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The cell kind.
    pub kind: CellKind,
    /// Josephson junction count.
    pub jj_count: u64,
    /// Static (bias) power in microwatts.
    pub static_power_uw: f64,
}

impl CellSpec {
    const fn new(kind: CellKind, jj_count: u64, static_power_uw: f64) -> Self {
        CellSpec {
            kind,
            jj_count,
            static_power_uw,
        }
    }
}

/// Aggregate census of a netlist: instance counts, JJ total, power total.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Census {
    counts: BTreeMap<CellKind, u64>,
    unknown: u64,
}

impl Census {
    /// Builds a census by walking a netlist and classifying each component
    /// by its `kind()` name.
    pub fn of(netlist: &Netlist) -> Census {
        Census::of_components(netlist.iter().map(|(_, _, c)| c))
    }

    /// Builds a census of one instance-scope subtree (see
    /// [`Netlist::iter_scope`]) — the structural basis for per-section
    /// JJ/power budgets derived from the elaborated netlist.
    pub fn of_scope(netlist: &Netlist, scope: &str) -> Census {
        Census::of_components(netlist.iter_scope(scope).map(|(_, _, c)| c))
    }

    /// Builds a census over any stream of components (e.g. a scope-filtered
    /// iteration).
    pub fn of_components<'a>(components: impl IntoIterator<Item = &'a dyn Component>) -> Census {
        let mut census = Census::default();
        for comp in components {
            match CellKind::from_name(comp.kind()) {
                Some(kind) => *census.counts.entry(kind).or_insert(0) += 1,
                None => census.unknown += 1,
            }
        }
        census
    }

    /// Adds `n` instances of `kind` (for closed-form budgets that do not
    /// build a physical netlist).
    pub fn add(&mut self, kind: CellKind, n: u64) {
        *self.counts.entry(kind).or_insert(0) += n;
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &Census) {
        for (&k, &n) in &other.counts {
            self.add(k, n);
        }
        self.unknown += other.unknown;
    }

    /// Instance count of a kind.
    pub fn count(&self, kind: CellKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Number of components whose kind was not in the library.
    pub fn unknown(&self) -> u64 {
        self.unknown
    }

    /// Total cell instances (excluding unknown).
    pub fn total_cells(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total Josephson junction count.
    pub fn jj_total(&self) -> u64 {
        self.counts.iter().map(|(k, n)| k.jj_count() * n).sum()
    }

    /// Total static power in µW.
    pub fn static_power_uw(&self) -> f64 {
        self.counts
            .iter()
            .map(|(k, n)| k.static_power_uw() * *n as f64)
            .sum()
    }

    /// Iterates `(kind, count)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &n)| (k, n))
    }
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>12}",
            "cell", "count", "JJs", "power/µW"
        )?;
        for (kind, n) in self.iter() {
            writeln!(
                f,
                "{:<12} {:>8} {:>10} {:>12.2}",
                kind.name(),
                n,
                kind.jj_count() * n,
                kind.static_power_uw() * n as f64
            )?;
        }
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>12.2}",
            "TOTAL",
            self.total_cells(),
            self.jj_total(),
            self.static_power_uw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stated_jj_counts() {
        // Values the paper states explicitly.
        assert_eq!(CellKind::Ndro.jj_count(), 11);
        assert_eq!(CellKind::HcDro.jj_count(), 3);
        assert_eq!(CellKind::Ndroc.jj_count(), 33);
        assert_eq!(CellKind::AndGate.jj_count(), 12);
        assert_eq!(CellKind::NotGate.jj_count(), 10);
    }

    #[test]
    fn hcdro_density_advantage() {
        // 2-bit NDRO storage = 22 JJs vs 3 JJs: the paper's 7.3×.
        let ratio = (2 * CellKind::Ndro.jj_count()) as f64 / CellKind::HcDro.jj_count() as f64;
        assert!((ratio - 7.33).abs() < 0.01);
    }

    #[test]
    fn name_round_trip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CellKind::from_name("bogus"), None);
    }

    #[test]
    fn census_add_and_totals() {
        let mut c = Census::default();
        c.add(CellKind::Ndro, 4);
        c.add(CellKind::Splitter, 2);
        assert_eq!(c.jj_total(), 4 * 11 + 2 * 3);
        assert_eq!(c.total_cells(), 6);
        assert!((c.static_power_uw() - (4.0 * 2.2 + 2.0 * 0.55)).abs() < 1e-9);
    }

    #[test]
    fn census_merge() {
        let mut a = Census::default();
        a.add(CellKind::Jtl, 1);
        let mut b = Census::default();
        b.add(CellKind::Jtl, 2);
        b.add(CellKind::Merger, 1);
        a.merge(&b);
        assert_eq!(a.count(CellKind::Jtl), 3);
        assert_eq!(a.count(CellKind::Merger), 1);
    }

    #[test]
    fn display_includes_total() {
        let mut c = Census::default();
        c.add(CellKind::Ndroc, 1);
        let s = c.to_string();
        assert!(s.contains("ndroc"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("33"));
    }
}
