//! Storage cells: DRO, HC-DRO, NDRO, NDROC.
//!
//! These are the memory elements of SFQ technology (paper §II-C..§II-E):
//!
//! * **DRO** stores at most one fluxon; a clock pulse reads it out and
//!   resets the loop (destructive read).
//! * **HC-DRO** accumulates up to three fluxons in one loop — the paper's
//!   dual-bit dense-storage cell. Each clock pulse pops one fluxon.
//! * **NDRO** keeps its fluxon across reads; a separate RESET input clears
//!   it.
//! * **NDROC** is an NDRO with complementary outputs, used as the 1-to-2
//!   demux element of the clock-less register-file ports (paper §III-A).

use sfq_sim::compiled::{CellOp, Lowered};
use sfq_sim::component::{Component, PulseContext};
use sfq_sim::time::{Duration, Time};

use crate::timing::{
    DRO_CLK_TO_OUT_PS, HCDRO_CAPACITY, HCDRO_CLK_TO_OUT_PS, HCDRO_HARD_SEP_PS, HCDRO_PULSE_SEP_PS,
    NDROC_PROP_PS, NDROC_REARM_PS, NDRO_CLK_TO_OUT_PS,
};

/// Destructive-readout cell (one fluxon).
///
/// Pins: input `D = 0`, `CLK = 1`; output `Q = 0`.
#[derive(Debug, Clone, Default)]
pub struct Dro {
    stored: bool,
}

impl Dro {
    /// Data input pin.
    pub const D: u8 = 0;
    /// Read (clock) input pin.
    pub const CLK: u8 = 1;
    /// Output pin.
    pub const Q: u8 = 0;

    /// Creates an empty DRO cell.
    pub fn new() -> Self {
        Dro::default()
    }
}

impl Component for Dro {
    fn kind(&self) -> &'static str {
        "dro"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::D => {
                // A second incoming fluxon dissipates through the buffer
                // junction J0 (paper §II-C).
                self.stored = true;
            }
            Self::CLK => {
                if self.stored {
                    self.stored = false;
                    ctx.emit_after(Self::Q, now, Duration::from_ps(DRO_CLK_TO_OUT_PS));
                }
            }
            other => ctx.violation(now, "pin", format!("dro has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.stored = false;
    }

    fn stored(&self) -> Option<u8> {
        Some(self.stored as u8)
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(DRO_CLK_TO_OUT_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Dro {
                q_delay: Duration::from_ps(DRO_CLK_TO_OUT_PS),
            },
            bits: self.stored as u8,
            time_a: None,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.stored = state.bits != 0;
    }
}

/// High-capacity destructive-readout cell: up to [`HCDRO_CAPACITY`] fluxons
/// in one storage loop, i.e. two bits per cell (paper §II-D).
///
/// Pins: input `D = 0`, `CLK = 1`; output `Q = 0`.
///
/// Successive pulses on either input must be separated by at least the
/// HC-DRO setup/hold window (10 ps); closer spacing records a timing
/// violation. Under [`ViolationPolicy::Record`](sfq_sim::violation::ViolationPolicy)
/// the pulse is still counted (marginal operation); under `Degrade` the
/// offending pulse is lost in the storage loop — a write does not add its
/// fluxon and a read does not pop one.
#[derive(Debug, Clone)]
pub struct HcDro {
    count: u8,
    capacity: u8,
    last_d: Option<Time>,
    last_clk: Option<Time>,
}

impl HcDro {
    /// Data input pin.
    pub const D: u8 = 0;
    /// Read (clock) input pin.
    pub const CLK: u8 = 1;
    /// Output pin.
    pub const Q: u8 = 0;

    /// Creates an empty 2-bit HC-DRO cell (capacity 3 fluxons).
    pub fn new() -> Self {
        Self::with_capacity(HCDRO_CAPACITY)
    }

    /// Creates a cell with a non-standard fluxon capacity (for the
    /// capacity-sweep ablation).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: u8) -> Self {
        assert!(capacity >= 1, "capacity must be at least one fluxon");
        HcDro {
            count: 0,
            capacity,
            last_d: None,
            last_clk: None,
        }
    }

    /// The fluxon capacity of this instance.
    pub fn capacity(&self) -> u8 {
        self.capacity
    }

    /// Checks inter-pulse spacing; returns `true` if the pulse must be
    /// dropped (violation under the `Degrade` policy).
    fn check_sep(
        last: &mut Option<Time>,
        now: Time,
        what: &str,
        ctx: &mut PulseContext<'_>,
    ) -> bool {
        let mut degrade = false;
        if let Some(prev) = *last {
            let sep = now.abs_diff(prev);
            if sep < Duration::from_ps(HCDRO_PULSE_SEP_PS) {
                // Design-rule separation violated; the pulse is only
                // physically lost once the guard band is exhausted too.
                if sep < Duration::from_ps(HCDRO_HARD_SEP_PS) {
                    degrade = ctx.violation_degrades(
                        now,
                        "hold",
                        format!("hc-dro {what} pulses {sep} apart, need {HCDRO_PULSE_SEP_PS}ps"),
                    );
                } else {
                    ctx.violation(
                        now,
                        "hold",
                        format!(
                            "hc-dro {what} pulses {sep} apart inside the design-rule \
                             {HCDRO_PULSE_SEP_PS}ps (guard band holds)"
                        ),
                    );
                }
            }
        }
        *last = Some(now);
        degrade
    }
}

impl Default for HcDro {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for HcDro {
    fn kind(&self) -> &'static str {
        "hcdro"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::D => {
                if Self::check_sep(&mut self.last_d, now, "write", ctx) {
                    return; // degraded: the fluxon is lost in the junction
                }
                if self.count < self.capacity {
                    self.count += 1;
                } // else: dissipated, the loop is full.
            }
            Self::CLK => {
                if Self::check_sep(&mut self.last_clk, now, "read", ctx) {
                    return; // degraded: nothing pops
                }
                if self.count > 0 {
                    self.count -= 1;
                    ctx.emit_after(Self::Q, now, Duration::from_ps(HCDRO_CLK_TO_OUT_PS));
                }
            }
            other => ctx.violation(now, "pin", format!("hcdro has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.count = 0;
        self.last_d = None;
        self.last_clk = None;
    }

    fn stored(&self) -> Option<u8> {
        Some(self.count)
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(HCDRO_CLK_TO_OUT_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::HcDro {
                capacity: self.capacity,
                q_delay: Duration::from_ps(HCDRO_CLK_TO_OUT_PS),
                sep: Duration::from_ps(HCDRO_PULSE_SEP_PS),
                hard_sep: Duration::from_ps(HCDRO_HARD_SEP_PS),
            },
            bits: self.count,
            time_a: self.last_d,
            time_b: self.last_clk,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.count = state.bits;
        self.last_d = state.time_a;
        self.last_clk = state.time_b;
    }
}

/// Non-destructive readout cell (paper §II-E).
///
/// Pins: input `SET = 0`, `RESET = 1`, `CLK = 2`; output `OUT = 0`.
/// A CLK pulse emits an output pulse iff a fluxon is stored, and the fluxon
/// stays.
#[derive(Debug, Clone, Default)]
pub struct Ndro {
    stored: bool,
}

impl Ndro {
    /// Set (data) input pin.
    pub const SET: u8 = 0;
    /// Reset input pin.
    pub const RESET: u8 = 1;
    /// Read (clock) input pin.
    pub const CLK: u8 = 2;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates an empty NDRO cell.
    pub fn new() -> Self {
        Ndro::default()
    }

    /// Creates an NDRO holding a fluxon (for driver initialization).
    pub fn holding() -> Self {
        Ndro { stored: true }
    }
}

impl Component for Ndro {
    fn kind(&self) -> &'static str {
        "ndro"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::SET => self.stored = true, // duplicate SET dissipates via J2
            Self::RESET => self.stored = false, // empty RESET dissipates via J5
            Self::CLK => {
                if self.stored {
                    ctx.emit_after(Self::OUT, now, Duration::from_ps(NDRO_CLK_TO_OUT_PS));
                }
            }
            other => ctx.violation(now, "pin", format!("ndro has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.stored = false;
    }

    fn stored(&self) -> Option<u8> {
        Some(self.stored as u8)
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(NDRO_CLK_TO_OUT_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Ndro {
                out_delay: Duration::from_ps(NDRO_CLK_TO_OUT_PS),
            },
            bits: self.stored as u8,
            time_a: None,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.stored = state.bits != 0;
    }
}

/// NDRO with complementary outputs — the 1-to-2 demux element (paper §III-A).
///
/// Pins: input `SET = 0`, `RESET = 1`, `CLK = 2`; outputs `OUT0 = 0`
/// (selected when a fluxon is stored) and `OUT1 = 1` (complement).
///
/// Successive CLK (enable) pulses must be at least the re-arm time apart
/// (53 ps, paper §III-E); closer spacing records a `re-arm` violation.
/// Under the `Degrade` policy the not-yet-re-armed cell routes the enable
/// to *neither* output — the pulse vanishes rather than misroutes, which is
/// what the un-recovered junctions of a real NDROC do.
#[derive(Debug, Clone, Default)]
pub struct Ndroc {
    stored: bool,
    last_clk: Option<Time>,
}

impl Ndroc {
    /// Set (select) input pin.
    pub const SET: u8 = 0;
    /// Reset input pin.
    pub const RESET: u8 = 1;
    /// Enable (clock) input pin.
    pub const CLK: u8 = 2;
    /// Output taken when the select fluxon is present.
    pub const OUT0: u8 = 0;
    /// Complementary output (select fluxon absent).
    pub const OUT1: u8 = 1;

    /// Creates an unselected NDROC.
    pub fn new() -> Self {
        Ndroc::default()
    }
}

impl Component for Ndroc {
    fn kind(&self) -> &'static str {
        "ndroc"
    }

    fn pulse(&mut self, pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        match pin {
            Self::SET => self.stored = true,
            Self::RESET => self.stored = false,
            Self::CLK => {
                if let Some(prev) = self.last_clk {
                    let sep = now.abs_diff(prev);
                    if sep < Duration::from_ps(NDROC_REARM_PS)
                        && ctx.violation_degrades(
                            now,
                            "re-arm",
                            format!("ndroc enables {sep} apart, need {NDROC_REARM_PS}ps"),
                        )
                    {
                        // Degraded: the enable is lost in the un-recovered
                        // junctions; it routes to neither output. The cell
                        // still saw the pulse for re-arm bookkeeping.
                        self.last_clk = Some(now);
                        return;
                    }
                }
                self.last_clk = Some(now);
                let out = if self.stored { Self::OUT0 } else { Self::OUT1 };
                ctx.emit_after(out, now, Duration::from_ps(NDROC_PROP_PS));
            }
            other => ctx.violation(now, "pin", format!("ndroc has no input pin {other}")),
        }
    }

    fn power_on_reset(&mut self) {
        self.stored = false;
        self.last_clk = None;
    }

    fn stored(&self) -> Option<u8> {
        Some(self.stored as u8)
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(NDROC_PROP_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Ndroc {
                prop: Duration::from_ps(NDROC_PROP_PS),
                rearm: Duration::from_ps(NDROC_REARM_PS),
            },
            bits: self.stored as u8,
            time_a: self.last_clk,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.stored = state.bits != 0;
        self.last_clk = state.time_a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::netlist::{Netlist, Pin};
    use sfq_sim::simulator::Simulator;

    fn single(cell: Box<dyn Component>) -> (Simulator, sfq_sim::netlist::ComponentId) {
        let mut n = Netlist::new();
        let id = n.add("cell", cell);
        (Simulator::new(n), id)
    }

    #[test]
    fn dro_read_is_destructive() {
        let (mut sim, id) = single(Box::new(Dro::new()));
        let p = sim.probe(Pin::new(id, Dro::Q), "q");
        sim.inject(Pin::new(id, Dro::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Dro::CLK), Time::from_ps(20.0));
        sim.inject(Pin::new(id, Dro::CLK), Time::from_ps(40.0));
        sim.run();
        // Second read finds nothing.
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn dro_extra_write_dissipates() {
        let (mut sim, id) = single(Box::new(Dro::new()));
        let p = sim.probe(Pin::new(id, Dro::Q), "q");
        sim.inject(Pin::new(id, Dro::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Dro::D), Time::from_ps(15.0));
        sim.inject(Pin::new(id, Dro::CLK), Time::from_ps(30.0));
        sim.inject(Pin::new(id, Dro::CLK), Time::from_ps(90.0));
        sim.run();
        assert_eq!(
            sim.probe_trace(p).len(),
            1,
            "a DRO holds at most one fluxon"
        );
    }

    #[test]
    fn hcdro_stores_three_fluxons() {
        let (mut sim, id) = single(Box::new(HcDro::new()));
        let p = sim.probe(Pin::new(id, HcDro::Q), "q");
        for i in 0..3 {
            sim.inject(Pin::new(id, HcDro::D), Time::from_ps(10.0 * i as f64));
        }
        for i in 0..4 {
            sim.inject(
                Pin::new(id, HcDro::CLK),
                Time::from_ps(100.0 + 10.0 * i as f64),
            );
        }
        sim.run();
        // Three pulses out; the fourth clock finds an empty loop.
        assert_eq!(sim.probe_trace(p).len(), 3);
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn hcdro_overflow_dissipates() {
        let (mut sim, id) = single(Box::new(HcDro::new()));
        let p = sim.probe(Pin::new(id, HcDro::Q), "q");
        for i in 0..5 {
            sim.inject(Pin::new(id, HcDro::D), Time::from_ps(10.0 * i as f64));
        }
        for i in 0..5 {
            sim.inject(
                Pin::new(id, HcDro::CLK),
                Time::from_ps(200.0 + 10.0 * i as f64),
            );
        }
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 3, "capacity is three fluxons");
    }

    #[test]
    fn hcdro_close_pulses_violate_hold() {
        let (mut sim, id) = single(Box::new(HcDro::new()));
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(4.0));
        sim.run();
        assert_eq!(sim.violations().len(), 1);
        assert_eq!(sim.violations()[0].kind, "hold");
    }

    #[test]
    fn hcdro_capacity_one_behaves_like_dro() {
        let (mut sim, id) = single(Box::new(HcDro::with_capacity(1)));
        let p = sim.probe(Pin::new(id, HcDro::Q), "q");
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(20.0));
        sim.inject(Pin::new(id, HcDro::CLK), Time::from_ps(50.0));
        sim.inject(Pin::new(id, HcDro::CLK), Time::from_ps(70.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn ndro_read_is_non_destructive() {
        let (mut sim, id) = single(Box::new(Ndro::new()));
        let p = sim.probe(Pin::new(id, Ndro::OUT), "out");
        sim.inject(Pin::new(id, Ndro::SET), Time::from_ps(0.0));
        for i in 0..5 {
            sim.inject(
                Pin::new(id, Ndro::CLK),
                Time::from_ps(20.0 + 60.0 * i as f64),
            );
        }
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 5);
    }

    #[test]
    fn ndro_reset_clears() {
        let (mut sim, id) = single(Box::new(Ndro::new()));
        let p = sim.probe(Pin::new(id, Ndro::OUT), "out");
        sim.inject(Pin::new(id, Ndro::SET), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Ndro::RESET), Time::from_ps(10.0));
        sim.inject(Pin::new(id, Ndro::CLK), Time::from_ps(20.0));
        sim.run();
        assert!(sim.probe_trace(p).is_empty());
    }

    #[test]
    fn ndro_reset_on_empty_is_harmless() {
        let (mut sim, id) = single(Box::new(Ndro::new()));
        sim.inject(Pin::new(id, Ndro::RESET), Time::from_ps(0.0));
        sim.run();
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn ndroc_routes_by_select() {
        let (mut sim, id) = single(Box::new(Ndroc::new()));
        let p0 = sim.probe(Pin::new(id, Ndroc::OUT0), "o0");
        let p1 = sim.probe(Pin::new(id, Ndroc::OUT1), "o1");
        // Unselected: complement output.
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(0.0));
        // Selected: primary output.
        sim.inject(Pin::new(id, Ndroc::SET), Time::from_ps(30.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(60.0));
        sim.run();
        assert_eq!(sim.probe_trace(p0).len(), 1);
        assert_eq!(sim.probe_trace(p1).len(), 1);
        assert_eq!(
            sim.probe_trace(p0).pulses()[0],
            Time::from_ps(60.0 + NDROC_PROP_PS)
        );
    }

    #[test]
    fn ndroc_rearm_violation() {
        let (mut sim, id) = single(Box::new(Ndroc::new()));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(40.0));
        sim.run();
        assert_eq!(sim.violations().len(), 1);
        assert_eq!(sim.violations()[0].kind, "re-arm");
    }

    #[test]
    fn ndroc_retains_select_until_reset() {
        let (mut sim, id) = single(Box::new(Ndroc::new()));
        let p0 = sim.probe(Pin::new(id, Ndroc::OUT0), "o0");
        sim.inject(Pin::new(id, Ndroc::SET), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(10.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(70.0));
        sim.inject(Pin::new(id, Ndroc::RESET), Time::from_ps(100.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(130.0));
        sim.run();
        // Two selected reads, third goes to the complement.
        assert_eq!(sim.probe_trace(p0).len(), 2);
    }

    #[test]
    fn hcdro_degrade_loses_the_close_fluxon() {
        use sfq_sim::violation::ViolationPolicy;
        let (mut sim, id) = single(Box::new(HcDro::new()));
        sim.set_violation_policy(ViolationPolicy::Degrade);
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(4.0)); // violates, lost
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(20.0));
        sim.run();
        assert_eq!(sim.violations().len(), 1);
        assert_eq!(
            sim.netlist().component(id).stored(),
            Some(2),
            "middle fluxon lost"
        );
        assert_eq!(sim.degraded_drops(), 1);
    }

    #[test]
    fn hcdro_degrade_read_pops_nothing() {
        use sfq_sim::violation::ViolationPolicy;
        let (mut sim, id) = single(Box::new(HcDro::new()));
        sim.set_violation_policy(ViolationPolicy::Degrade);
        let p = sim.probe(Pin::new(id, HcDro::Q), "q");
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(0.0));
        sim.inject(Pin::new(id, HcDro::D), Time::from_ps(10.0));
        sim.inject(Pin::new(id, HcDro::CLK), Time::from_ps(100.0));
        sim.inject(Pin::new(id, HcDro::CLK), Time::from_ps(104.0)); // violates, lost
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1, "violated pop emits nothing");
        assert_eq!(
            sim.netlist().component(id).stored(),
            Some(1),
            "count untouched"
        );
    }

    #[test]
    fn ndroc_degrade_routes_to_neither_output() {
        use sfq_sim::violation::ViolationPolicy;
        let (mut sim, id) = single(Box::new(Ndroc::new()));
        sim.set_violation_policy(ViolationPolicy::Degrade);
        let p0 = sim.probe(Pin::new(id, Ndroc::OUT0), "o0");
        let p1 = sim.probe(Pin::new(id, Ndroc::OUT1), "o1");
        sim.inject(Pin::new(id, Ndroc::SET), Time::from_ps(0.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(10.0));
        sim.inject(Pin::new(id, Ndroc::CLK), Time::from_ps(40.0)); // 30 ps < 53 ps
        sim.run();
        assert_eq!(sim.violations().len(), 1);
        assert_eq!(sim.violations()[0].kind, "re-arm");
        // The violated enable is *dropped*, not misrouted: exactly one
        // pulse total, from the first (clean) enable.
        assert_eq!(sim.probe_trace(p0).len(), 1);
        assert_eq!(sim.probe_trace(p1).len(), 0);
    }

    #[test]
    fn stored_peek() {
        let mut h = HcDro::new();
        assert_eq!(h.stored(), Some(0));
        h.count = 2;
        assert_eq!(h.stored(), Some(2));
        h.power_on_reset();
        assert_eq!(h.stored(), Some(0));
    }
}
