//! # sfq-cells — behavioral SFQ cell library
//!
//! The cell library underneath the HiPerRF reproduction. Every cell of the
//! paper's designs is modelled behaviorally on top of the `sfq-sim`
//! event-driven pulse simulator, together with its Josephson-junction count
//! and static-power specification:
//!
//! * transport: [`transport::Jtl`], [`transport::Splitter`],
//!   [`transport::Merger`]
//! * storage: [`storage::Dro`], [`storage::HcDro`] (the dual-bit
//!   dense-storage cell), [`storage::Ndro`], [`storage::Ndroc`] (the demux
//!   element)
//! * logic: [`logic::Dand`] (dynamic AND), [`logic::AndGate`],
//!   [`logic::NotGate`], [`logic::XorGate`]
//! * counting: [`counter::CounterBit`]
//! * composites: [`composite::build_hc_clk`], [`composite::build_hc_write`],
//!   [`composite::build_hc_read`]
//! * typed elaboration: [`typed::TypedBuilder`] — affine [`typed::Wire`] /
//!   [`typed::Sink`] handles that make SFQ fan-out/fan-in legality a
//!   compile-time property ([`builder::CircuitBuilder`] stays available as
//!   the raw escape hatch)
//!
//! The [`spec`] module carries the JJ/power database and a census over
//! netlists; [`timing`] is the single source of truth for every delay.
//!
//! ## Example: storing a dual-bit value
//!
//! ```
//! use sfq_cells::builder::CircuitBuilder;
//! use sfq_cells::composite::build_hc_write;
//! use sfq_cells::storage::HcDro;
//! use sfq_sim::netlist::Pin;
//! use sfq_sim::prelude::*;
//!
//! let mut b = CircuitBuilder::new();
//! let write = build_hc_write(&mut b);
//! let cell = b.hcdro();
//! b.connect(write.output, Pin::new(cell, HcDro::D));
//! let mut sim = Simulator::new(b.finish());
//! // Write the value 0b11: both bit pulses at t = 0.
//! sim.inject(write.b0, Time::ZERO);
//! sim.inject(write.b1, Time::ZERO);
//! sim.run();
//! assert_eq!(sim.netlist().component(cell).stored(), Some(3));
//! ```

pub mod builder;
pub mod composite;
pub mod counter;
pub mod logic;
pub mod spec;
pub mod sta;
pub mod storage;
pub mod timing;
pub mod transport;
pub mod typed;

pub use builder::CircuitBuilder;
pub use spec::{CellKind, CellSpec, Census};
