//! Typed elaboration: SFQ wiring legality *by construction*.
//!
//! SFQ's wiring discipline — every cell output consumed exactly once,
//! explicit splitters at fan-out points, explicit mergers at fan-in points
//! (paper §II-F) — is an affine-type rule, and it maps directly onto
//! Rust's move semantics (RustSFQ). This module retrofits
//! [`CircuitBuilder`] with that mapping:
//!
//! * every cell constructor returns its endpoints as move-only handles —
//!   a [`Wire`] per output pin and a [`Sink`] per input pin;
//! * [`TypedBuilder::bind`] consumes one `Wire` and one `Sink`, so
//!   consuming a wire twice (electrical fan-out without a splitter) or
//!   driving a sink twice (fan-in without a merger) is a **compile
//!   error**, not a lint finding;
//! * fan-out is explicit: [`TypedBuilder::fork`] consumes one wire and
//!   returns `n`, inserting the balanced splitter tree automatically;
//!   fan-in is [`TypedBuilder::join`], which inserts the merger tree;
//! * endpoints that leave the netlist are declared: [`TypedBuilder::external`]
//!   marks a sink as externally driven (the simulator injects there) and
//!   [`TypedBuilder::expose`] marks a wire as externally observed (a probe
//!   or chip pad). Anything else left unconsumed is *tracked*: it comes
//!   back from [`TypedBuilder::elaborate`] in [`Elaboration::dropped_wires`] /
//!   [`Elaboration::dangling_sinks`] so nothing silently disappears, and
//!   `sfq-lint`'s `dropped-wire` / `dangling-input` rules are the
//!   post-elaboration backstop over the same invariant.
//!
//! Handles are *branded*: the `'brand` lifetime parameter on
//! [`TypedBuilder`], [`Wire`], and [`Sink`] is invariant and unique to one
//! [`TypedBuilder::elaborate`] call, so a wire can only ever be bound into
//! the builder that issued it — cross-builder use does not compile either.
//!
//! The raw [`CircuitBuilder`] API stays available as the escape hatch for
//! code that must construct *illegal* netlists on purpose (the
//! mutation-based lint tests); production elaborations go through this
//! layer.
//!
//! # Examples
//!
//! A one-to-two fan-out with the splitter inserted by `fork`:
//!
//! ```
//! use sfq_cells::typed::TypedBuilder;
//!
//! let (elab, out_pins) = TypedBuilder::elaborate(|b| {
//!     let j = b.jtl();
//!     let src = b.external(j.input);
//!     let leaves = b.fork(j.out, 2);
//!     let _ = src;
//!     leaves.into_iter().map(|w| b.expose(w)).collect::<Vec<_>>()
//! });
//! assert_eq!(out_pins.len(), 2);
//! assert_eq!(elab.netlist.component_count(), 2); // jtl + 1 splitter
//! assert!(elab.dropped_wires.is_empty());
//! assert!(elab.dangling_sinks.is_empty());
//! ```
//!
//! Consuming a wire twice is a compile error (`Wire` is move-only):
//!
//! ```compile_fail,E0382
//! use sfq_cells::typed::TypedBuilder;
//!
//! TypedBuilder::elaborate(|b| {
//!     let j = b.jtl();
//!     let s = b.splitter();
//!     let m = b.merger();
//!     b.bind(j.out, s.input);
//!     b.bind(j.out, m.in_a); // error: `j.out` was already consumed
//!     let _ = (j.input, s.out0, s.out1, m.in_b, m.out);
//! });
//! ```
//!
//! So is driving a sink twice:
//!
//! ```compile_fail,E0382
//! use sfq_cells::typed::TypedBuilder;
//!
//! TypedBuilder::elaborate(|b| {
//!     let a = b.jtl();
//!     let x = b.jtl();
//!     let y = b.jtl();
//!     b.bind(x.out, a.input);
//!     b.bind(y.out, a.input); // error: `a.input` was already driven
//!     let _ = (a.out, x.input, y.input);
//! });
//! ```
//!
//! And so is smuggling a wire from one builder into another — the brand
//! lifetimes don't unify:
//!
//! ```compile_fail
//! use sfq_cells::typed::TypedBuilder;
//!
//! TypedBuilder::elaborate(|outer| {
//!     let j = outer.jtl();
//!     TypedBuilder::elaborate(move |inner| {
//!         let s = inner.splitter();
//!         inner.bind(j.out, s.input); // error: wire from a different builder
//!         let _ = (j.input, s.out0, s.out1);
//!     });
//! });
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;

use sfq_sim::component::Component;
use sfq_sim::netlist::{ComponentId, Netlist, Pin};
use sfq_sim::time::Duration;

use crate::builder::CircuitBuilder;
use crate::counter::CounterBit;
use crate::logic::Dand;
use crate::storage::{Dro, HcDro, Ndro, Ndroc};
use crate::transport::{Jtl, Merger, Splitter};

/// Invariant lifetime marker: makes `'brand` neither covariant nor
/// contravariant, so two distinct `elaborate` calls can never exchange
/// handles.
type Brand<'brand> = PhantomData<fn(&'brand ()) -> &'brand ()>;

/// A cell output pin that must be consumed exactly once.
///
/// Move-only: binding, forking, joining, or exposing a wire consumes it,
/// and a second use is a compile error. A wire that is simply dropped is
/// reported in [`Elaboration::dropped_wires`].
#[derive(Debug)]
#[must_use = "an SFQ output must be consumed exactly once; bind, fork, join, or expose it"]
pub struct Wire<'brand> {
    pin: Pin,
    token: usize,
    _brand: Brand<'brand>,
}

impl Wire<'_> {
    /// The underlying output pin, without consuming the wire — for
    /// bookkeeping (probe labels, port tables). Only
    /// [`TypedBuilder::bind`]-style consumption wires it up.
    pub fn pin(&self) -> Pin {
        self.pin
    }
}

/// A cell input pin that must be driven exactly once.
///
/// Move-only like [`Wire`]: a sink is either bound to a wire or declared
/// [`TypedBuilder::external`]; driving it twice is a compile error, and a
/// sink dropped undriven is reported in [`Elaboration::dangling_sinks`].
#[derive(Debug)]
#[must_use = "an SFQ input must be driven exactly once; bind it or declare it external"]
pub struct Sink<'brand> {
    pin: Pin,
    token: usize,
    _brand: Brand<'brand>,
}

impl Sink<'_> {
    /// The underlying input pin, without consuming the sink.
    pub fn pin(&self) -> Pin {
        self.pin
    }
}

/// The result of a typed elaboration: the finished netlist plus the
/// endpoint ledger the builder tracked.
#[derive(Debug)]
pub struct Elaboration {
    /// The elaborated netlist.
    pub netlist: Netlist,
    /// Input pins declared externally driven ([`TypedBuilder::external`]),
    /// in declaration order — feeds `sfq-lint`'s `LintPorts`.
    pub external_inputs: Vec<Pin>,
    /// Output pins declared externally observed ([`TypedBuilder::expose`]),
    /// in declaration order.
    pub external_outputs: Vec<Pin>,
    /// Output pins whose wires were dropped without being consumed —
    /// pulses that would silently disappear.
    pub dropped_wires: Vec<Pin>,
    /// Input pins whose sinks were dropped without being driven or
    /// declared external.
    pub dangling_sinks: Vec<Pin>,
}

impl Elaboration {
    /// `true` when every issued endpoint was accounted for: no dropped
    /// wires, no dangling sinks.
    pub fn is_total(&self) -> bool {
        self.dropped_wires.is_empty() && self.dangling_sinks.is_empty()
    }

    /// Asserts totality, listing the leaked endpoints.
    ///
    /// # Panics
    ///
    /// Panics if any wire was dropped or any sink left dangling.
    pub fn assert_total(&self) {
        assert!(
            self.is_total(),
            "typed elaboration leaked endpoints: dropped wires {:?}, dangling sinks {:?}",
            self.dropped_wires,
            self.dangling_sinks
        );
    }
}

/// Ports of a typed JTL: one sink in, one wire out.
#[derive(Debug)]
pub struct TypedJtl<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Jtl::IN`.
    pub input: Sink<'brand>,
    /// `Jtl::OUT`.
    pub out: Wire<'brand>,
}

/// Ports of a typed splitter: one sink in, two wires out.
#[derive(Debug)]
pub struct TypedSplitter<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Splitter::IN`.
    pub input: Sink<'brand>,
    /// `Splitter::OUT0`.
    pub out0: Wire<'brand>,
    /// `Splitter::OUT1`.
    pub out1: Wire<'brand>,
}

/// Ports of a typed merger: two sinks in, one wire out.
#[derive(Debug)]
pub struct TypedMerger<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Merger::IN_A`.
    pub in_a: Sink<'brand>,
    /// `Merger::IN_B`.
    pub in_b: Sink<'brand>,
    /// `Merger::OUT`.
    pub out: Wire<'brand>,
}

/// Ports of a typed DRO cell.
#[derive(Debug)]
pub struct TypedDro<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Dro::D`.
    pub d: Sink<'brand>,
    /// `Dro::CLK`.
    pub clk: Sink<'brand>,
    /// `Dro::Q`.
    pub q: Wire<'brand>,
}

/// Ports of a typed HC-DRO cell.
#[derive(Debug)]
pub struct TypedHcDro<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `HcDro::D`.
    pub d: Sink<'brand>,
    /// `HcDro::CLK`.
    pub clk: Sink<'brand>,
    /// `HcDro::Q`.
    pub q: Wire<'brand>,
}

/// Ports of a typed NDRO cell.
#[derive(Debug)]
pub struct TypedNdro<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Ndro::SET`.
    pub set: Sink<'brand>,
    /// `Ndro::RESET`.
    pub reset: Sink<'brand>,
    /// `Ndro::CLK`.
    pub clk: Sink<'brand>,
    /// `Ndro::OUT`.
    pub out: Wire<'brand>,
}

/// Ports of a typed NDROC (complementary-output) cell.
#[derive(Debug)]
pub struct TypedNdroc<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Ndroc::SET`.
    pub set: Sink<'brand>,
    /// `Ndroc::RESET`.
    pub reset: Sink<'brand>,
    /// `Ndroc::CLK`.
    pub clk: Sink<'brand>,
    /// `Ndroc::OUT0` (true output).
    pub out0: Wire<'brand>,
    /// `Ndroc::OUT1` (complement output).
    pub out1: Wire<'brand>,
}

/// Ports of a typed dynamic AND gate.
#[derive(Debug)]
pub struct TypedDand<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `Dand::A`.
    pub a: Sink<'brand>,
    /// `Dand::B`.
    pub b: Sink<'brand>,
    /// `Dand::OUT`.
    pub out: Wire<'brand>,
}

/// Ports of a typed counter bit.
#[derive(Debug)]
pub struct TypedCounterBit<'brand> {
    /// The cell.
    pub id: ComponentId,
    /// `CounterBit::IN`.
    pub input: Sink<'brand>,
    /// `CounterBit::READ`.
    pub read: Sink<'brand>,
    /// `CounterBit::RESET`.
    pub reset: Sink<'brand>,
    /// `CounterBit::CARRY`.
    pub carry: Wire<'brand>,
    /// `CounterBit::VALUE`.
    pub value: Wire<'brand>,
}

/// Endpoint ledger entry: what happened to an issued handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndpointState {
    Open,
    Consumed,
}

/// Affine-typed facade over [`CircuitBuilder`].
///
/// Created only through [`TypedBuilder::elaborate`], which brands the
/// builder and every handle it issues with a unique invariant lifetime.
/// Cells are created through the same labeled-instance helpers as the raw
/// builder (identical labels, scopes, and creation order), so a typed
/// elaboration of a design digests identically to its raw twin.
#[derive(Debug)]
pub struct TypedBuilder<'brand> {
    b: CircuitBuilder,
    wires: Vec<(Pin, EndpointState)>,
    sinks: Vec<(Pin, EndpointState)>,
    external_inputs: Vec<Pin>,
    external_outputs: Vec<Pin>,
    _brand: Brand<'brand>,
}

impl<'brand> TypedBuilder<'brand> {
    /// Runs a typed construction closure over a fresh branded builder and
    /// finishes the netlist.
    ///
    /// The closure must be generic over the brand (`for<'b> FnOnce`), which
    /// is what prevents handles from escaping or crossing builders. The
    /// closure's own result `R` (typically a struct of plain [`Pin`]s
    /// collected via [`TypedBuilder::external`] / [`TypedBuilder::expose`])
    /// is returned alongside the [`Elaboration`].
    pub fn elaborate<R>(f: impl for<'b> FnOnce(&mut TypedBuilder<'b>) -> R) -> (Elaboration, R) {
        let mut tb = TypedBuilder {
            b: CircuitBuilder::new(),
            wires: Vec::new(),
            sinks: Vec::new(),
            external_inputs: Vec::new(),
            external_outputs: Vec::new(),
            _brand: PhantomData,
        };
        let r = f(&mut tb);
        let dropped_wires = tb
            .wires
            .iter()
            .filter(|(_, s)| *s == EndpointState::Open)
            .map(|&(p, _)| p)
            .collect();
        let dangling_sinks = tb
            .sinks
            .iter()
            .filter(|(_, s)| *s == EndpointState::Open)
            .map(|&(p, _)| p)
            .collect();
        (
            Elaboration {
                netlist: tb.b.finish(),
                external_inputs: tb.external_inputs,
                external_outputs: tb.external_outputs,
                dropped_wires,
                dangling_sinks,
            },
            r,
        )
    }

    /// The netlist built so far (for census-style assertions mid-build).
    pub fn netlist(&self) -> &Netlist {
        self.b.netlist()
    }

    /// Opens an instance scope (see [`CircuitBuilder::push_scope`]).
    pub fn push_scope(&mut self, scope: impl Into<String>) {
        self.b.push_scope(scope);
    }

    /// Closes the innermost instance scope.
    pub fn pop_scope(&mut self) {
        self.b.pop_scope();
    }

    /// Runs `f` inside an instance scope.
    pub fn scoped<R>(&mut self, scope: impl Into<String>, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope(scope);
        let r = f(self);
        self.pop_scope();
        r
    }

    fn issue_wire(&mut self, pin: Pin) -> Wire<'brand> {
        let token = self.wires.len();
        self.wires.push((pin, EndpointState::Open));
        Wire {
            pin,
            token,
            _brand: PhantomData,
        }
    }

    fn issue_sink(&mut self, pin: Pin) -> Sink<'brand> {
        let token = self.sinks.len();
        self.sinks.push((pin, EndpointState::Open));
        Sink {
            pin,
            token,
            _brand: PhantomData,
        }
    }

    fn take_wire(&mut self, w: Wire<'brand>) -> Pin {
        debug_assert_eq!(self.wires[w.token].0, w.pin);
        self.wires[w.token].1 = EndpointState::Consumed;
        w.pin
    }

    fn take_sink(&mut self, s: Sink<'brand>) -> Pin {
        debug_assert_eq!(self.sinks[s.token].0, s.pin);
        self.sinks[s.token].1 = EndpointState::Consumed;
        s.pin
    }

    /// Connects a wire to a sink (zero wire delay), consuming both.
    ///
    /// # Panics
    ///
    /// Panics on a zero-delay self-loop (output of a cell bound straight
    /// back into the same cell) — the one degenerate wire the type system
    /// cannot rule out.
    pub fn bind(&mut self, from: Wire<'brand>, to: Sink<'brand>) {
        let from = self.take_wire(from);
        let to = self.take_sink(to);
        // The affine handles make duplicates unrepresentable, so the only
        // rejection `try_connect` can hit here is the self-loop.
        if let Err(e) = self.b.netlist_mut().try_connect(from, to, Duration::ZERO) {
            panic!("typed bind: {e}");
        }
    }

    /// Declares a sink externally driven (the simulator or a chip pad
    /// injects there), consuming it and returning the raw pin.
    pub fn external(&mut self, s: Sink<'brand>) -> Pin {
        let pin = self.take_sink(s);
        self.external_inputs.push(pin);
        pin
    }

    /// Declares a wire externally observed (a probe or chip pad reads it),
    /// consuming it and returning the raw pin.
    pub fn expose(&mut self, w: Wire<'brand>) -> Pin {
        let pin = self.take_wire(w);
        self.external_outputs.push(pin);
        pin
    }

    /// Fans a wire out to `leaves` wires through a balanced splitter tree
    /// (`leaves - 1` splitters, same shape and cell order as
    /// [`CircuitBuilder::splitter_tree`]). `fork(w, 1)` returns the wire
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn fork(&mut self, root: Wire<'brand>, leaves: usize) -> Vec<Wire<'brand>> {
        assert!(leaves > 0, "fork needs at least one leaf");
        let mut q: VecDeque<Wire<'brand>> = VecDeque::from([root]);
        while q.len() < leaves {
            let src = q.pop_front().expect("queue never empty");
            let s = self.splitter();
            self.bind(src, s.input);
            q.push_back(s.out0);
            q.push_back(s.out1);
        }
        q.into_iter().collect()
    }

    /// Fans `inputs` in to a single wire through a balanced merger tree
    /// (`inputs.len() - 1` mergers, same shape and cell order as
    /// [`CircuitBuilder::merger_tree`]). Joining one wire returns it
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn join(&mut self, inputs: Vec<Wire<'brand>>) -> Wire<'brand> {
        assert!(!inputs.is_empty(), "join needs at least one input");
        let mut level = inputs;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            loop {
                match (it.next(), it.next()) {
                    (Some(a), Some(b)) => {
                        let m = self.merger();
                        self.bind(a, m.in_a);
                        self.bind(b, m.in_b);
                        next.push(m.out);
                    }
                    (Some(a), None) => {
                        next.push(a);
                        break;
                    }
                    (None, _) => break,
                }
            }
            level = next;
        }
        level.pop().expect("level holds exactly the root")
    }

    /// Adds an arbitrary component in the current scope, issuing typed
    /// endpoints for `inputs` input pins and `outputs` output pins (pin
    /// indices are dense from 0 in each namespace).
    pub fn add(
        &mut self,
        kind_label: &str,
        c: Box<dyn Component>,
        inputs: u8,
        outputs: u8,
    ) -> (ComponentId, Vec<Sink<'brand>>, Vec<Wire<'brand>>) {
        let id = self.b.add(kind_label, c);
        let sinks = (0..inputs)
            .map(|p| self.issue_sink(Pin::new(id, p)))
            .collect();
        let wires = (0..outputs)
            .map(|p| self.issue_wire(Pin::new(id, p)))
            .collect();
        (id, sinks, wires)
    }

    /// Adds a nominal-delay JTL.
    pub fn jtl(&mut self) -> TypedJtl<'brand> {
        let id = self.b.jtl();
        self.typed_jtl(id)
    }

    /// Adds a JTL tuned to `delay`.
    pub fn jtl_with_delay(&mut self, delay: Duration) -> TypedJtl<'brand> {
        let id = self.b.jtl_with_delay(delay);
        self.typed_jtl(id)
    }

    fn typed_jtl(&mut self, id: ComponentId) -> TypedJtl<'brand> {
        TypedJtl {
            id,
            input: self.issue_sink(Pin::new(id, Jtl::IN)),
            out: self.issue_wire(Pin::new(id, Jtl::OUT)),
        }
    }

    /// Adds a splitter.
    pub fn splitter(&mut self) -> TypedSplitter<'brand> {
        let id = self.b.splitter();
        TypedSplitter {
            id,
            input: self.issue_sink(Pin::new(id, Splitter::IN)),
            out0: self.issue_wire(Pin::new(id, Splitter::OUT0)),
            out1: self.issue_wire(Pin::new(id, Splitter::OUT1)),
        }
    }

    /// Adds a merger.
    pub fn merger(&mut self) -> TypedMerger<'brand> {
        let id = self.b.merger();
        TypedMerger {
            id,
            in_a: self.issue_sink(Pin::new(id, Merger::IN_A)),
            in_b: self.issue_sink(Pin::new(id, Merger::IN_B)),
            out: self.issue_wire(Pin::new(id, Merger::OUT)),
        }
    }

    /// Adds a DRO cell.
    pub fn dro(&mut self) -> TypedDro<'brand> {
        let id = self.b.dro();
        TypedDro {
            id,
            d: self.issue_sink(Pin::new(id, Dro::D)),
            clk: self.issue_sink(Pin::new(id, Dro::CLK)),
            q: self.issue_wire(Pin::new(id, Dro::Q)),
        }
    }

    /// Adds a 2-bit HC-DRO cell.
    pub fn hcdro(&mut self) -> TypedHcDro<'brand> {
        let id = self.b.hcdro();
        self.typed_hcdro(id)
    }

    /// Adds an HC-DRO cell with explicit fluxon capacity.
    pub fn hcdro_with_capacity(&mut self, capacity: u8) -> TypedHcDro<'brand> {
        let id = self.b.hcdro_with_capacity(capacity);
        self.typed_hcdro(id)
    }

    fn typed_hcdro(&mut self, id: ComponentId) -> TypedHcDro<'brand> {
        TypedHcDro {
            id,
            d: self.issue_sink(Pin::new(id, HcDro::D)),
            clk: self.issue_sink(Pin::new(id, HcDro::CLK)),
            q: self.issue_wire(Pin::new(id, HcDro::Q)),
        }
    }

    /// Adds an NDRO cell.
    pub fn ndro(&mut self) -> TypedNdro<'brand> {
        let id = self.b.ndro();
        TypedNdro {
            id,
            set: self.issue_sink(Pin::new(id, Ndro::SET)),
            reset: self.issue_sink(Pin::new(id, Ndro::RESET)),
            clk: self.issue_sink(Pin::new(id, Ndro::CLK)),
            out: self.issue_wire(Pin::new(id, Ndro::OUT)),
        }
    }

    /// Adds an NDROC (complementary-output) cell.
    pub fn ndroc(&mut self) -> TypedNdroc<'brand> {
        let id = self.b.ndroc();
        TypedNdroc {
            id,
            set: self.issue_sink(Pin::new(id, Ndroc::SET)),
            reset: self.issue_sink(Pin::new(id, Ndroc::RESET)),
            clk: self.issue_sink(Pin::new(id, Ndroc::CLK)),
            out0: self.issue_wire(Pin::new(id, Ndroc::OUT0)),
            out1: self.issue_wire(Pin::new(id, Ndroc::OUT1)),
        }
    }

    /// Adds a dynamic AND gate.
    pub fn dand(&mut self) -> TypedDand<'brand> {
        let id = self.b.dand();
        TypedDand {
            id,
            a: self.issue_sink(Pin::new(id, Dand::A)),
            b: self.issue_sink(Pin::new(id, Dand::B)),
            out: self.issue_wire(Pin::new(id, Dand::OUT)),
        }
    }

    /// Adds a counter bit.
    pub fn counter_bit(&mut self) -> TypedCounterBit<'brand> {
        let id = self.b.counter_bit();
        TypedCounterBit {
            id,
            input: self.issue_sink(Pin::new(id, CounterBit::IN)),
            read: self.issue_sink(Pin::new(id, CounterBit::READ)),
            reset: self.issue_sink(Pin::new(id, CounterBit::RESET)),
            carry: self.issue_wire(Pin::new(id, CounterBit::CARRY)),
            value: self.issue_wire(Pin::new(id, CounterBit::VALUE)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::simulator::Simulator;
    use sfq_sim::time::Time;

    #[test]
    fn fork_matches_splitter_tree_shape() {
        let (elab, _) = TypedBuilder::elaborate(|b| {
            let j = b.jtl();
            let _src = b.external(j.input);
            let leaves = b.fork(j.out, 5);
            assert_eq!(leaves.len(), 5);
            for w in leaves {
                let _ = b.expose(w);
            }
        });
        elab.assert_total();
        // jtl + 4 splitters, exactly like CircuitBuilder::splitter_tree.
        assert_eq!(elab.netlist.component_count(), 5);
        assert_eq!(elab.external_outputs.len(), 5);
    }

    #[test]
    fn fork_single_leaf_is_identity() {
        let (elab, _) = TypedBuilder::elaborate(|b| {
            let j = b.jtl();
            let _ = b.external(j.input);
            let mut leaves = b.fork(j.out, 1);
            assert_eq!(leaves.len(), 1);
            let w = leaves.pop().expect("one leaf");
            assert_eq!(w.pin(), Pin::new(j.id, Jtl::OUT));
            let _ = b.expose(w);
        });
        assert_eq!(elab.netlist.component_count(), 1);
    }

    #[test]
    fn join_matches_merger_tree_shape() {
        let (elab, out) = TypedBuilder::elaborate(|b| {
            let srcs: Vec<_> = (0..7).map(|_| b.jtl()).collect();
            let mut wires = Vec::new();
            for j in srcs {
                let _ = b.external(j.input);
                wires.push(j.out);
            }
            let root = b.join(wires);
            b.expose(root)
        });
        elab.assert_total();
        // 7 jtls + 6 mergers.
        assert_eq!(elab.netlist.component_count(), 13);
        // A pulse into any source reaches the root.
        let mut sim = Simulator::new(elab.netlist);
        let p = sim.probe(out, "out");
        sim.inject(elab.external_inputs[3], Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn dropped_wire_and_dangling_sink_are_tracked() {
        let (elab, ids) = TypedBuilder::elaborate(|b| {
            let j = b.jtl();
            let s = b.splitter();
            b.bind(j.out, s.input);
            let _ = b.expose(s.out0);
            // s.out1 dropped, j.input dropped.
            (j.id, s.id)
        });
        assert!(!elab.is_total());
        assert_eq!(elab.dropped_wires, vec![Pin::new(ids.1, Splitter::OUT1)]);
        assert_eq!(elab.dangling_sinks, vec![Pin::new(ids.0, Jtl::IN)]);
    }

    #[test]
    #[should_panic(expected = "typed bind: zero-delay self-loop")]
    fn self_loop_bind_panics() {
        TypedBuilder::elaborate(|b| {
            let m = b.merger();
            b.bind(m.out, m.in_a);
            let _ = b.external(m.in_b);
        });
    }

    #[test]
    fn typed_labels_and_scopes_match_raw_builder() {
        let (elab, id) = TypedBuilder::elaborate(|b| {
            let nd = b.scoped("rf", |b| b.scoped("readport", |b| b.ndroc()));
            let _ = b.external(nd.set);
            let _ = b.external(nd.reset);
            let _ = b.external(nd.clk);
            let _ = b.expose(nd.out0);
            let _ = b.expose(nd.out1);
            nd.id
        });
        assert!(elab.netlist.label(id).starts_with("rf/readport/ndroc"));
        assert_eq!(elab.netlist.scope_of(id), "rf/readport");
    }

    #[test]
    fn generic_add_issues_all_endpoints() {
        let (elab, _) = TypedBuilder::elaborate(|b| {
            let src = b.jtl();
            let _ = b.external(src.input);
            let (_, sinks, wires) = b.add("dro", Box::new(Dro::new()), 2, 1);
            let mut sinks = sinks.into_iter();
            let d = sinks.next().expect("D sink");
            let clk = sinks.next().expect("CLK sink");
            b.bind(src.out, d);
            let _ = b.external(clk);
            for w in wires {
                let _ = b.expose(w);
            }
        });
        elab.assert_total();
        assert_eq!(elab.netlist.component_count(), 2);
        assert_eq!(elab.external_inputs.len(), 2);
        assert_eq!(elab.external_outputs.len(), 1);
    }
}
