//! Pulse-transport cells: JTL, splitter, merger.
//!
//! SFQ pulses cannot fan out implicitly; every fan-out point needs an
//! explicit splitter cell, and every fan-in needs a merger (confluence
//! buffer) (paper §II-F). JTLs are tunable delay elements used wherever a
//! precise pulse separation is required (e.g. the 10 ps spacing inside
//! HC-CLK and HC-WRITE, paper §IV-A).

use sfq_sim::compiled::{CellOp, Lowered};
use sfq_sim::component::{Component, PulseContext};
use sfq_sim::time::{Duration, Time};

use crate::timing::{JTL_DELAY_PS, MERGER_DEAD_PS, MERGER_DELAY_PS, SPLITTER_DELAY_PS};

/// Josephson transmission line: input pin 0 → output pin 0 after a fixed,
/// per-instance delay.
///
/// Physical JTLs are biased to a nominal ~[`JTL_DELAY_PS`] delay but are
/// routinely tuned; [`Jtl::with_delay`] models a tuned instance.
#[derive(Debug, Clone)]
pub struct Jtl {
    delay: Duration,
}

impl Jtl {
    /// Input pin.
    pub const IN: u8 = 0;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// A JTL with the nominal library delay.
    pub fn new() -> Self {
        Self::with_delay(Duration::from_ps(JTL_DELAY_PS))
    }

    /// A JTL tuned to a specific delay.
    pub fn with_delay(delay: Duration) -> Self {
        Jtl { delay }
    }

    /// The instance delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

impl Default for Jtl {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for Jtl {
    fn kind(&self) -> &'static str {
        "jtl"
    }

    fn pulse(&mut self, _pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        ctx.emit_after(Self::OUT, now, self.delay);
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(self.delay)
    }

    fn lower(&self) -> Option<Lowered> {
        // Per-instance tuned delay, not the library constant.
        Some(Lowered::stateless(CellOp::Jtl { delay: self.delay }))
    }
}

/// Pulse splitter: input pin 0 → output pins 0 and 1.
#[derive(Debug, Clone, Default)]
pub struct Splitter;

impl Splitter {
    /// Input pin.
    pub const IN: u8 = 0;
    /// First output pin.
    pub const OUT0: u8 = 0;
    /// Second output pin.
    pub const OUT1: u8 = 1;

    /// Creates a splitter.
    pub fn new() -> Self {
        Splitter
    }
}

impl Component for Splitter {
    fn kind(&self) -> &'static str {
        "splitter"
    }

    fn pulse(&mut self, _pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        let d = Duration::from_ps(SPLITTER_DELAY_PS);
        ctx.emit_after(Self::OUT0, now, d);
        ctx.emit_after(Self::OUT1, now, d);
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(SPLITTER_DELAY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered::stateless(CellOp::Splitter {
            delay: Duration::from_ps(SPLITTER_DELAY_PS),
        }))
    }
}

/// Pulse merger (confluence buffer): input pins 0 and 1 → output pin 0.
///
/// If a second pulse arrives within the merger dead time of the previous
/// one, it is dissipated (paper §II-F: "the later one is dissipated").
#[derive(Debug, Clone, Default)]
pub struct Merger {
    last_accepted: Option<Time>,
}

impl Merger {
    /// First input pin.
    pub const IN_A: u8 = 0;
    /// Second input pin.
    pub const IN_B: u8 = 1;
    /// Output pin.
    pub const OUT: u8 = 0;

    /// Creates a merger.
    pub fn new() -> Self {
        Merger::default()
    }
}

impl Component for Merger {
    fn kind(&self) -> &'static str {
        "merger"
    }

    fn pulse(&mut self, _pin: u8, now: Time, ctx: &mut PulseContext<'_>) {
        if let Some(prev) = self.last_accepted {
            if now.abs_diff(prev) < Duration::from_ps(MERGER_DEAD_PS) {
                // Too close to the previous pulse: dissipated, no output.
                return;
            }
        }
        self.last_accepted = Some(now);
        ctx.emit_after(Self::OUT, now, Duration::from_ps(MERGER_DELAY_PS));
    }

    fn power_on_reset(&mut self) {
        self.last_accepted = None;
    }

    fn propagation_delay(&self) -> Option<Duration> {
        Some(Duration::from_ps(MERGER_DELAY_PS))
    }

    fn lower(&self) -> Option<Lowered> {
        Some(Lowered {
            op: CellOp::Merger {
                dead: Duration::from_ps(MERGER_DEAD_PS),
                delay: Duration::from_ps(MERGER_DELAY_PS),
            },
            bits: 0,
            time_a: self.last_accepted,
            time_b: None,
        })
    }

    fn restore(&mut self, state: &Lowered) {
        self.last_accepted = state.time_a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::netlist::{Netlist, Pin};
    use sfq_sim::simulator::Simulator;

    #[test]
    fn jtl_delays_pulse() {
        let mut n = Netlist::new();
        let j = n.add("j", Box::new(Jtl::with_delay(Duration::from_ps(7.0))) as _);
        let mut sim = Simulator::new(n);
        let p = sim.probe(Pin::new(j, Jtl::OUT), "out");
        sim.inject(Pin::new(j, Jtl::IN), Time::from_ps(1.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).pulses(), &[Time::from_ps(8.0)]);
    }

    #[test]
    fn splitter_duplicates_pulse() {
        let mut n = Netlist::new();
        let s = n.add("s", Box::new(Splitter::new()) as _);
        let mut sim = Simulator::new(n);
        let p0 = sim.probe(Pin::new(s, Splitter::OUT0), "o0");
        let p1 = sim.probe(Pin::new(s, Splitter::OUT1), "o1");
        sim.inject(Pin::new(s, Splitter::IN), Time::ZERO);
        sim.run();
        assert_eq!(sim.probe_trace(p0).len(), 1);
        assert_eq!(sim.probe_trace(p1).len(), 1);
        assert_eq!(
            sim.probe_trace(p0).pulses()[0],
            Time::from_ps(SPLITTER_DELAY_PS)
        );
    }

    #[test]
    fn merger_passes_separated_pulses() {
        let mut n = Netlist::new();
        let m = n.add("m", Box::new(Merger::new()) as _);
        let mut sim = Simulator::new(n);
        let p = sim.probe(Pin::new(m, Merger::OUT), "out");
        sim.inject(Pin::new(m, Merger::IN_A), Time::from_ps(0.0));
        sim.inject(Pin::new(m, Merger::IN_B), Time::from_ps(10.0));
        sim.run();
        assert_eq!(sim.probe_trace(p).len(), 2);
    }

    #[test]
    fn merger_dissipates_coincident_pulse() {
        let mut n = Netlist::new();
        let m = n.add("m", Box::new(Merger::new()) as _);
        let mut sim = Simulator::new(n);
        let p = sim.probe(Pin::new(m, Merger::OUT), "out");
        sim.inject(Pin::new(m, Merger::IN_A), Time::from_ps(0.0));
        sim.inject(Pin::new(m, Merger::IN_B), Time::from_ps(1.0));
        sim.run();
        // Second pulse is within the dead window and dissipates.
        assert_eq!(sim.probe_trace(p).len(), 1);
    }

    #[test]
    fn merger_power_on_reset_clears_dead_time() {
        let mut m = Merger::new();
        m.last_accepted = Some(Time::from_ps(100.0));
        m.power_on_reset();
        assert_eq!(m.last_accepted, None);
    }
}
