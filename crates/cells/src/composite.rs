//! Composite HC-DRO access circuits: HC-CLK, HC-WRITE, HC-READ.
//!
//! HC-DRO cells store two bits as 0–3 fluxons, so they are accessed by
//! *serial pulse trains* with a 10 ps minimum separation (paper §IV-A):
//!
//! * **HC-CLK** turns one enable pulse into three pulses 10 ps apart, so a
//!   single read/write enable can pop or gate all stored fluxons.
//! * **HC-WRITE** encodes a parallel two-bit value into a train of
//!   `value` pulses (0–3), 10 ps apart.
//! * **HC-READ** decodes a train of 0–3 pulses back into two parallel bits
//!   using a two-bit counter built from two one-bit counter stages.
//!
//! All three are clock-less: JTL delay elements create the required pulse
//! spacing (Fig. 10 of the paper).

use sfq_sim::netlist::Pin;
use sfq_sim::time::Duration;

use crate::builder::CircuitBuilder;
use crate::counter::CounterBit;
use crate::timing::{HCDRO_PULSE_SEP_PS, MERGER_DELAY_PS, SPLITTER_DELAY_PS};
use crate::transport::{Jtl, Merger, Splitter};
use crate::typed::{Sink, TypedBuilder, Wire};

/// Ports of an HC-CLK pulse tripler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcClkPorts {
    /// Input pin: one enable pulse goes in here.
    pub input: Pin,
    /// Output pin: three pulses, [`HCDRO_PULSE_SEP_PS`] apart, come out.
    pub output: Pin,
    /// Latency from the input pulse to the *first* output pulse.
    pub first_pulse_delay: Duration,
}

/// Builds an HC-CLK circuit (paper Fig. 10b): 1 pulse in → 3 pulses out,
/// 10 ps apart.
///
/// Uses 2 splitters, 2 mergers and 2 JTLs.
pub fn build_hc_clk(b: &mut CircuitBuilder) -> HcClkPorts {
    b.scoped("hcclk", |b| {
        let s1 = b.splitter();
        let s2 = b.splitter();
        let m_mid = b.merger();
        let m_final = b.merger();
        // Branch 1: straight to the final merger -> first pulse.
        b.connect(
            Pin::new(s1, Splitter::OUT0),
            Pin::new(m_final, Merger::IN_A),
        );
        // Branch 2: +10 ps via tuned JTLs -> second and third pulses.
        // Second pulse path adds (s2 + m_mid) stages relative to the first,
        // so its JTL makes the net offset exactly one pulse separation.
        let d2 = HCDRO_PULSE_SEP_PS - SPLITTER_DELAY_PS - MERGER_DELAY_PS;
        let j1 = b.jtl_with_delay(Duration::from_ps(d2));
        b.connect(Pin::new(s1, Splitter::OUT1), Pin::new(j1, Jtl::IN));
        b.connect(Pin::new(j1, Jtl::OUT), Pin::new(s2, Splitter::IN));
        b.connect(Pin::new(s2, Splitter::OUT0), Pin::new(m_mid, Merger::IN_A));
        // Third pulse: one more full separation after the second.
        let j2 = b.jtl_with_delay(Duration::from_ps(HCDRO_PULSE_SEP_PS));
        b.connect(Pin::new(s2, Splitter::OUT1), Pin::new(j2, Jtl::IN));
        b.connect(Pin::new(j2, Jtl::OUT), Pin::new(m_mid, Merger::IN_B));
        b.connect(
            Pin::new(m_mid, Merger::OUT),
            Pin::new(m_final, Merger::IN_B),
        );
        HcClkPorts {
            input: Pin::new(s1, Splitter::IN),
            output: Pin::new(m_final, Merger::OUT),
            first_pulse_delay: Duration::from_ps(SPLITTER_DELAY_PS + MERGER_DELAY_PS),
        }
    })
}

/// Endpoints of a typed HC-CLK pulse tripler (see [`build_hc_clk_typed`]).
#[derive(Debug)]
pub struct TypedHcClk<'brand> {
    /// Enable sink: one pulse goes in here.
    pub input: Sink<'brand>,
    /// Train wire: three pulses, [`HCDRO_PULSE_SEP_PS`] apart, come out.
    pub output: Wire<'brand>,
    /// Latency from the input pulse to the *first* output pulse.
    pub first_pulse_delay: Duration,
}

/// Typed twin of [`build_hc_clk`]: same cells in the same order, so both
/// elaborations digest identically; the endpoints come back as affine
/// handles instead of raw pins.
pub fn build_hc_clk_typed<'b>(b: &mut TypedBuilder<'b>) -> TypedHcClk<'b> {
    b.scoped("hcclk", |b| {
        let s1 = b.splitter();
        let s2 = b.splitter();
        let m_mid = b.merger();
        let m_final = b.merger();
        b.bind(s1.out0, m_final.in_a);
        let d2 = HCDRO_PULSE_SEP_PS - SPLITTER_DELAY_PS - MERGER_DELAY_PS;
        let j1 = b.jtl_with_delay(Duration::from_ps(d2));
        b.bind(s1.out1, j1.input);
        b.bind(j1.out, s2.input);
        b.bind(s2.out0, m_mid.in_a);
        let j2 = b.jtl_with_delay(Duration::from_ps(HCDRO_PULSE_SEP_PS));
        b.bind(s2.out1, j2.input);
        b.bind(j2.out, m_mid.in_b);
        b.bind(m_mid.out, m_final.in_b);
        TypedHcClk {
            input: s1.input,
            output: m_final.out,
            first_pulse_delay: Duration::from_ps(SPLITTER_DELAY_PS + MERGER_DELAY_PS),
        }
    })
}

/// Ports of an HC-WRITE two-bit serializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcWritePorts {
    /// LSB input pin (contributes one pulse).
    pub b0: Pin,
    /// MSB input pin (contributes two pulses).
    pub b1: Pin,
    /// Serial pulse-train output pin.
    pub output: Pin,
    /// Latency from an input pulse to the first output slot.
    pub first_slot_delay: Duration,
}

/// Builds an HC-WRITE circuit (paper Fig. 10a): parallel bits `b1 b0` in →
/// `2·b1 + b0` pulses out, 10 ps apart.
///
/// The pulse *count* equals the stored value, so writing `0b10` deposits
/// two fluxons. Uses 1 splitter, 2 mergers and 3 JTLs. Inputs must be
/// asserted simultaneously (both pulses at the same time).
pub fn build_hc_write(b: &mut CircuitBuilder) -> HcWritePorts {
    b.scoped("hcwrite", |b| {
        let m1 = b.merger();
        let m2 = b.merger();
        let s = b.splitter();
        // B0 -> slot 0 through both mergers.
        let j0 = b.jtl_with_delay(Duration::from_ps(2.0));
        b.connect(Pin::new(j0, Jtl::OUT), Pin::new(m1, Merger::IN_A));
        b.connect(Pin::new(m1, Merger::OUT), Pin::new(m2, Merger::IN_A));
        // slot0 latency from input: j0(2) + m1(5) + m2(5) = 12 ps.
        let slot0 = 2.0 + 2.0 * MERGER_DELAY_PS;
        // B1 -> slots 1 and 2.
        // slot1: s(3) + j1 + m1(5) + m2(5) = slot0 + 10.
        let j1 = b.jtl_with_delay(Duration::from_ps(
            slot0 + HCDRO_PULSE_SEP_PS - SPLITTER_DELAY_PS - 2.0 * MERGER_DELAY_PS,
        ));
        b.connect(Pin::new(s, Splitter::OUT0), Pin::new(j1, Jtl::IN));
        b.connect(Pin::new(j1, Jtl::OUT), Pin::new(m1, Merger::IN_B));
        // slot2: s(3) + j2 + m2(5) = slot0 + 20.
        let j2 = b.jtl_with_delay(Duration::from_ps(
            slot0 + 2.0 * HCDRO_PULSE_SEP_PS - SPLITTER_DELAY_PS - MERGER_DELAY_PS,
        ));
        b.connect(Pin::new(s, Splitter::OUT1), Pin::new(j2, Jtl::IN));
        b.connect(Pin::new(j2, Jtl::OUT), Pin::new(m2, Merger::IN_B));
        HcWritePorts {
            b0: Pin::new(j0, Jtl::IN),
            b1: Pin::new(s, Splitter::IN),
            output: Pin::new(m2, Merger::OUT),
            first_slot_delay: Duration::from_ps(slot0),
        }
    })
}

/// Endpoints of a typed HC-WRITE serializer (see [`build_hc_write_typed`]).
#[derive(Debug)]
pub struct TypedHcWrite<'brand> {
    /// LSB sink (contributes one pulse).
    pub b0: Sink<'brand>,
    /// MSB sink (contributes two pulses).
    pub b1: Sink<'brand>,
    /// Serial pulse-train wire.
    pub output: Wire<'brand>,
    /// Latency from an input pulse to the first output slot.
    pub first_slot_delay: Duration,
}

/// Typed twin of [`build_hc_write`]: same cells in the same order.
pub fn build_hc_write_typed<'b>(b: &mut TypedBuilder<'b>) -> TypedHcWrite<'b> {
    b.scoped("hcwrite", |b| {
        let m1 = b.merger();
        let m2 = b.merger();
        let s = b.splitter();
        let j0 = b.jtl_with_delay(Duration::from_ps(2.0));
        b.bind(j0.out, m1.in_a);
        b.bind(m1.out, m2.in_a);
        let slot0 = 2.0 + 2.0 * MERGER_DELAY_PS;
        let j1 = b.jtl_with_delay(Duration::from_ps(
            slot0 + HCDRO_PULSE_SEP_PS - SPLITTER_DELAY_PS - 2.0 * MERGER_DELAY_PS,
        ));
        b.bind(s.out0, j1.input);
        b.bind(j1.out, m1.in_b);
        let j2 = b.jtl_with_delay(Duration::from_ps(
            slot0 + 2.0 * HCDRO_PULSE_SEP_PS - SPLITTER_DELAY_PS - MERGER_DELAY_PS,
        ));
        b.bind(s.out1, j2.input);
        b.bind(j2.out, m2.in_b);
        TypedHcWrite {
            b0: j0.input,
            b1: s.input,
            output: m2.out,
            first_slot_delay: Duration::from_ps(slot0),
        }
    })
}

/// Ports of an HC-READ pulse-train decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcReadPorts {
    /// Serial pulse-train input pin.
    pub input: Pin,
    /// Read-enable input pin (latches the counted value onto `b0`/`b1`).
    pub read: Pin,
    /// Reset input pin (clears the counter between operations).
    pub reset: Pin,
    /// LSB output pin.
    pub b0: Pin,
    /// MSB output pin.
    pub b1: Pin,
    /// MSB counter carry output. A two-bit counter never overflows on
    /// legal 0–3 pulse trains, so this pin stays silent; it must still be
    /// declared as an observation point so `sfq-lint`'s `dropped-wire`
    /// rule knows it is intentionally unconsumed.
    pub carry: Pin,
}

/// Builds an HC-READ circuit (paper Fig. 10c/d): a two-bit counter from two
/// one-bit counter stages. Counting 0–3 serial pulses and then asserting
/// `read` produces the parallel bits.
///
/// Uses 2 counter bits and 2 splitters.
pub fn build_hc_read(b: &mut CircuitBuilder) -> HcReadPorts {
    b.scoped("hcread", |b| {
        let cb0 = b.counter_bit();
        let cb1 = b.counter_bit();
        b.connect(
            Pin::new(cb0, CounterBit::CARRY),
            Pin::new(cb1, CounterBit::IN),
        );
        let s_read = b.splitter();
        b.connect(
            Pin::new(s_read, Splitter::OUT0),
            Pin::new(cb0, CounterBit::READ),
        );
        b.connect(
            Pin::new(s_read, Splitter::OUT1),
            Pin::new(cb1, CounterBit::READ),
        );
        let s_reset = b.splitter();
        b.connect(
            Pin::new(s_reset, Splitter::OUT0),
            Pin::new(cb0, CounterBit::RESET),
        );
        b.connect(
            Pin::new(s_reset, Splitter::OUT1),
            Pin::new(cb1, CounterBit::RESET),
        );
        HcReadPorts {
            input: Pin::new(cb0, CounterBit::IN),
            read: Pin::new(s_read, Splitter::IN),
            reset: Pin::new(s_reset, Splitter::IN),
            b0: Pin::new(cb0, CounterBit::VALUE),
            b1: Pin::new(cb1, CounterBit::VALUE),
            carry: Pin::new(cb1, CounterBit::CARRY),
        }
    })
}

/// Endpoints of a typed HC-READ decoder (see [`build_hc_read_typed`]).
#[derive(Debug)]
pub struct TypedHcRead<'brand> {
    /// Serial pulse-train sink.
    pub input: Sink<'brand>,
    /// Read-enable sink (latches the counted value onto `b0`/`b1`).
    pub read: Sink<'brand>,
    /// Reset sink (clears the counter between operations).
    pub reset: Sink<'brand>,
    /// LSB wire.
    pub b0: Wire<'brand>,
    /// MSB wire.
    pub b1: Wire<'brand>,
    /// MSB counter carry wire — silent on legal 0–3 trains, so callers
    /// typically [`TypedBuilder::expose`] it as an observation point.
    pub carry: Wire<'brand>,
}

/// Typed twin of [`build_hc_read`]: same cells in the same order.
pub fn build_hc_read_typed<'b>(b: &mut TypedBuilder<'b>) -> TypedHcRead<'b> {
    b.scoped("hcread", |b| {
        let cb0 = b.counter_bit();
        let cb1 = b.counter_bit();
        b.bind(cb0.carry, cb1.input);
        let s_read = b.splitter();
        b.bind(s_read.out0, cb0.read);
        b.bind(s_read.out1, cb1.read);
        let s_reset = b.splitter();
        b.bind(s_reset.out0, cb0.reset);
        b.bind(s_reset.out1, cb1.reset);
        TypedHcRead {
            input: cb0.input,
            read: s_read.input,
            reset: s_reset.input,
            b0: cb0.value,
            b1: cb1.value,
            carry: cb1.carry,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_sim::simulator::Simulator;
    use sfq_sim::time::Time;

    #[test]
    fn hc_clk_triples_pulse() {
        let mut b = CircuitBuilder::new();
        let ports = build_hc_clk(&mut b);
        let mut sim = Simulator::new(b.finish());
        let p = sim.probe(ports.output, "out");
        sim.inject(ports.input, Time::from_ps(100.0));
        sim.run();
        let pulses = sim.probe_trace(p).pulses().to_vec();
        assert_eq!(pulses.len(), 3);
        // Exactly 10 ps apart.
        assert_eq!((pulses[1] - pulses[0]).as_ps(), HCDRO_PULSE_SEP_PS);
        assert_eq!((pulses[2] - pulses[1]).as_ps(), HCDRO_PULSE_SEP_PS);
        // First pulse at the documented latency.
        assert_eq!(pulses[0], Time::from_ps(100.0) + ports.first_pulse_delay);
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn hc_write_encodes_every_value() {
        for value in 0u8..4 {
            let mut b = CircuitBuilder::new();
            let ports = build_hc_write(&mut b);
            let mut sim = Simulator::new(b.finish());
            let p = sim.probe(ports.output, "out");
            let t = Time::from_ps(50.0);
            if value & 1 != 0 {
                sim.inject(ports.b0, t);
            }
            if value & 2 != 0 {
                sim.inject(ports.b1, t);
            }
            sim.run();
            let pulses = sim.probe_trace(p).pulses().to_vec();
            assert_eq!(
                pulses.len() as u8,
                value,
                "value {value} must map to {value} pulses"
            );
            // All pulses land on 10 ps-separated slots.
            for w in pulses.windows(2) {
                assert_eq!((w[1] - w[0]).as_ps(), HCDRO_PULSE_SEP_PS);
            }
        }
    }

    #[test]
    fn hc_read_decodes_every_count() {
        for count in 0u8..4 {
            let mut b = CircuitBuilder::new();
            let ports = build_hc_read(&mut b);
            let mut sim = Simulator::new(b.finish());
            let p0 = sim.probe(ports.b0, "b0");
            let p1 = sim.probe(ports.b1, "b1");
            for i in 0..count {
                sim.inject(ports.input, Time::from_ps(10.0 * i as f64));
            }
            sim.inject(ports.read, Time::from_ps(100.0));
            sim.run();
            let b0 = sim.probe_trace(p0).len() as u8;
            let b1 = sim.probe_trace(p1).len() as u8;
            assert_eq!(
                b0 + 2 * b1,
                count,
                "decoded value mismatch for count {count}"
            );
        }
    }

    #[test]
    fn hc_read_reset_clears_counter() {
        let mut b = CircuitBuilder::new();
        let ports = build_hc_read(&mut b);
        let mut sim = Simulator::new(b.finish());
        let p0 = sim.probe(ports.b0, "b0");
        let p1 = sim.probe(ports.b1, "b1");
        sim.inject(ports.input, Time::from_ps(0.0));
        sim.inject(ports.input, Time::from_ps(10.0));
        sim.inject(ports.reset, Time::from_ps(50.0));
        sim.inject(ports.read, Time::from_ps(100.0));
        sim.run();
        assert_eq!(sim.probe_trace(p0).len() + sim.probe_trace(p1).len(), 0);
    }

    /// Canonical structural fingerprint: component (kind, label) rows in id
    /// order plus sorted wire tuples.
    type Fingerprint = (Vec<(String, String)>, Vec<(usize, u8, usize, u8, u64)>);

    fn fingerprint(n: &sfq_sim::netlist::Netlist) -> Fingerprint {
        let comps = n
            .iter()
            .map(|(_, label, c)| (c.kind().to_string(), label.to_string()))
            .collect();
        let mut wires: Vec<_> = n
            .wires()
            .map(|w| {
                (
                    w.from.component.index(),
                    w.from.index,
                    w.to.component.index(),
                    w.to.index,
                    w.delay.as_fs(),
                )
            })
            .collect();
        wires.sort_unstable();
        (comps, wires)
    }

    #[test]
    fn typed_composites_elaborate_identically_to_raw() {
        use crate::typed::TypedBuilder;

        let mut raw = CircuitBuilder::new();
        let clk = build_hc_clk(&mut raw);
        let w = build_hc_write(&mut raw);
        let r = build_hc_read(&mut raw);

        let (elab, (t_clk_delay, t_w_delay)) = TypedBuilder::elaborate(|b| {
            let clk = build_hc_clk_typed(b);
            let w = build_hc_write_typed(b);
            let r = build_hc_read_typed(b);
            let _ = b.external(clk.input);
            let _ = b.expose(clk.output);
            let _ = b.external(w.b0);
            let _ = b.external(w.b1);
            let _ = b.expose(w.output);
            let _ = b.external(r.input);
            let _ = b.external(r.read);
            let _ = b.external(r.reset);
            let _ = b.expose(r.b0);
            let _ = b.expose(r.b1);
            let _ = b.expose(r.carry);
            (clk.first_pulse_delay, w.first_slot_delay)
        });
        elab.assert_total();
        assert_eq!(fingerprint(raw.netlist()), fingerprint(&elab.netlist));
        assert_eq!(t_clk_delay, clk.first_pulse_delay);
        assert_eq!(t_w_delay, w.first_slot_delay);
        let _ = r;
    }

    #[test]
    fn write_then_clk_then_read_round_trip() {
        // End-to-end: HC-WRITE -> HC-DRO -> (3×CLK via HC-CLK) -> HC-READ.
        for value in 0u8..4 {
            let mut b = CircuitBuilder::new();
            let w = build_hc_write(&mut b);
            let cell = b.hcdro();
            let clk = build_hc_clk(&mut b);
            let r = build_hc_read(&mut b);
            b.connect(w.output, Pin::new(cell, crate::storage::HcDro::D));
            b.connect(clk.output, Pin::new(cell, crate::storage::HcDro::CLK));
            b.connect(Pin::new(cell, crate::storage::HcDro::Q), r.input);
            let mut sim = Simulator::new(b.finish());
            let p0 = sim.probe(r.b0, "b0");
            let p1 = sim.probe(r.b1, "b1");
            let t0 = Time::from_ps(0.0);
            if value & 1 != 0 {
                sim.inject(w.b0, t0);
            }
            if value & 2 != 0 {
                sim.inject(w.b1, t0);
            }
            // Read the cell well after the write train has settled.
            sim.inject(clk.input, Time::from_ps(100.0));
            sim.inject(r.read, Time::from_ps(200.0));
            sim.run();
            let decoded = sim.probe_trace(p0).len() as u8 + 2 * sim.probe_trace(p1).len() as u8;
            assert_eq!(decoded, value, "round trip failed for {value}");
            assert!(
                sim.violations().is_empty(),
                "round trip for {value} violated timing"
            );
        }
    }
}
