//! Seeded property test over the full RV32I table: every instruction the
//! ISA model can represent survives encode → decode and
//! disassemble → reassemble unchanged.
//!
//! Uses the deterministic `Rng64` stream (no external proptest crates),
//! so a failure reproduces from the printed iteration index alone.

use sfq_riscv::asm::assemble;
use sfq_riscv::decode::decode;
use sfq_riscv::disasm::disassemble;
use sfq_riscv::encode::encode;
use sfq_riscv::isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth};
use sfq_sim::rng::Rng64;

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
];

const ALU_IMM_OPS: [AluImmOp; 9] = [
    AluImmOp::Addi,
    AluImmOp::Slti,
    AluImmOp::Sltiu,
    AluImmOp::Xori,
    AluImmOp::Ori,
    AluImmOp::Andi,
    AluImmOp::Slli,
    AluImmOp::Srli,
    AluImmOp::Srai,
];

const BRANCH_CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const LOAD_WIDTHS: [LoadWidth; 5] = [
    LoadWidth::B,
    LoadWidth::H,
    LoadWidth::W,
    LoadWidth::Bu,
    LoadWidth::Hu,
];

const STORE_WIDTHS: [StoreWidth; 3] = [StoreWidth::B, StoreWidth::H, StoreWidth::W];

fn reg(rng: &mut Rng64) -> Reg {
    Reg::new(rng.next_below(32) as u8)
}

/// 12-bit signed immediate, full range.
fn imm12(rng: &mut Rng64) -> i32 {
    rng.next_below(4096) as i32 - 2048
}

/// 13-bit signed even branch offset, full range.
fn branch_offset(rng: &mut Rng64) -> i32 {
    (rng.next_below(4096) as i32 - 2048) * 2
}

/// 21-bit signed even jump offset, full range.
fn jal_offset(rng: &mut Rng64) -> i32 {
    (rng.next_below(1 << 20) as i32 - (1 << 19)) * 2
}

/// 20-bit upper immediate, already shifted into bits 31:12.
fn imm20(rng: &mut Rng64) -> u32 {
    (rng.next_below(1 << 20) as u32) << 12
}

/// Uniformly samples one instruction from the full RV32I table.
fn arbitrary_instr(rng: &mut Rng64) -> Instr {
    match rng.next_below(12) {
        0 => Instr::Lui {
            rd: reg(rng),
            imm: imm20(rng),
        },
        1 => Instr::Auipc {
            rd: reg(rng),
            imm: imm20(rng),
        },
        2 => Instr::Jal {
            rd: reg(rng),
            offset: jal_offset(rng),
        },
        3 => Instr::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            offset: imm12(rng),
        },
        4 => Instr::Branch {
            cond: BRANCH_CONDS[rng.next_below(6)],
            rs1: reg(rng),
            rs2: reg(rng),
            offset: branch_offset(rng),
        },
        5 => Instr::Load {
            width: LOAD_WIDTHS[rng.next_below(5)],
            rd: reg(rng),
            rs1: reg(rng),
            offset: imm12(rng),
        },
        6 => Instr::Store {
            width: STORE_WIDTHS[rng.next_below(3)],
            rs2: reg(rng),
            rs1: reg(rng),
            offset: imm12(rng),
        },
        7 => {
            let op = ALU_IMM_OPS[rng.next_below(9)];
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai) {
                rng.next_below(32) as i32
            } else {
                imm12(rng)
            };
            Instr::AluImm {
                op,
                rd: reg(rng),
                rs1: reg(rng),
                imm,
            }
        }
        8 => Instr::Alu {
            op: ALU_OPS[rng.next_below(10)],
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        9 => Instr::Fence,
        10 => Instr::Ecall,
        _ => Instr::Ebreak,
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = Rng64::new(0x5f0_1ca1);
    for i in 0..4000 {
        let instr = arbitrary_instr(&mut rng);
        let word = encode(instr);
        let back = decode(word).unwrap_or_else(|e| panic!("iteration {i}: {instr:?}: {e:?}"));
        assert_eq!(back, instr, "iteration {i}: word {word:#010x}");
    }
}

#[test]
fn disassemble_reassemble_round_trips() {
    let mut rng = Rng64::new(0xd15a_53b1);
    for i in 0..4000 {
        let instr = arbitrary_instr(&mut rng);
        let text = disassemble(instr);
        let prog =
            assemble(&text, 0).unwrap_or_else(|e| panic!("iteration {i}: `{text}` failed: {e}"));
        assert_eq!(
            prog.words,
            vec![encode(instr)],
            "iteration {i}: `{text}` re-encoded differently"
        );
    }
}

#[test]
fn every_variant_is_reachable_by_the_generator() {
    let mut rng = Rng64::new(7);
    let mut seen = [false; 12];
    for _ in 0..2000 {
        let idx = match arbitrary_instr(&mut rng) {
            Instr::Lui { .. } => 0,
            Instr::Auipc { .. } => 1,
            Instr::Jal { .. } => 2,
            Instr::Jalr { .. } => 3,
            Instr::Branch { .. } => 4,
            Instr::Load { .. } => 5,
            Instr::Store { .. } => 6,
            Instr::AluImm { .. } => 7,
            Instr::Alu { .. } => 8,
            Instr::Fence => 9,
            Instr::Ecall => 10,
            Instr::Ebreak => 11,
        };
        seen[idx] = true;
    }
    assert!(seen.iter().all(|&s| s), "coverage gap: {seen:?}");
}
