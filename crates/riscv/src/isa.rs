//! RV32I instruction set: registers and instruction forms.

use std::fmt;

/// An architectural register `x0`–`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return address (`x1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2`).
    pub const SP: Reg = Reg(2);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// The register index (0–31).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses an ABI or numeric register name (`a0`, `t3`, `x17`, `fp`…).
    pub fn parse(name: &str) -> Option<Reg> {
        let idx: u8 = match name {
            "zero" => 0,
            "ra" => 1,
            "sp" => 2,
            "gp" => 3,
            "tp" => 4,
            "t0" => 5,
            "t1" => 6,
            "t2" => 7,
            "s0" | "fp" => 8,
            "s1" => 9,
            _ => {
                if let Some(n) = name.strip_prefix('x') {
                    n.parse().ok().filter(|&n| n < 32)?
                } else if let Some(n) = name.strip_prefix('a') {
                    let n: u8 = n.parse().ok()?;
                    (n <= 7).then_some(10 + n)?
                } else if let Some(n) = name.strip_prefix('s') {
                    let n: u8 = n.parse().ok()?;
                    (2..=11).contains(&n).then_some(16 + n)?
                } else if let Some(n) = name.strip_prefix('t') {
                    let n: u8 = n.parse().ok()?;
                    (3..=6).contains(&n).then_some(25 + n)?
                } else {
                    return None;
                }
            }
        };
        Some(Reg(idx))
    }

    /// The canonical ABI name.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Register–register ALU operations (`OP` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

/// Register–immediate ALU operations (`OP-IMM` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Load widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LoadWidth {
    B,
    H,
    W,
    Bu,
    Hu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StoreWidth {
    B,
    H,
    W,
}

/// A decoded RV32I instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Load upper immediate.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper 20 bits (already shifted into bits 31:12).
        imm: u32,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Upper 20 bits (already shifted).
        imm: u32,
    },
    /// Jump and link.
    Jal {
        /// Link register.
        rd: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Jump and link register.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        width: LoadWidth,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        width: StoreWidth,
        /// Value source.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register–immediate ALU operation.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Sign-extended immediate (shift amount for shifts).
        imm: i32,
    },
    /// Register–register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Memory ordering fence (a no-op in this model).
    Fence,
    /// Environment call.
    Ecall,
    /// Environment break.
    Ebreak,
}

impl Instr {
    /// Destination register, if the instruction writes one (writes to `x0`
    /// are reported as `None` — they are architectural no-ops).
    pub fn rd(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Alu { rd, .. } => rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// Source registers read through the register file (excluding `x0`,
    /// which is free in SFQ — absence of pulses).
    pub fn sources(&self) -> Vec<Reg> {
        let raw: &[Reg] = match self {
            Instr::Jalr { rs1, .. } | Instr::Load { rs1, .. } | Instr::AluImm { rs1, .. } => {
                &[*rs1]
            }
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Alu { rs1, rs2, .. } => &[*rs1, *rs2],
            _ => &[],
        };
        raw.iter().copied().filter(|&r| r != Reg::ZERO).collect()
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }

    /// Whether this is a memory access.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_parse_abi_names() {
        assert_eq!(Reg::parse("zero"), Some(Reg(0)));
        assert_eq!(Reg::parse("ra"), Some(Reg(1)));
        assert_eq!(Reg::parse("sp"), Some(Reg(2)));
        assert_eq!(Reg::parse("fp"), Some(Reg(8)));
        assert_eq!(Reg::parse("s0"), Some(Reg(8)));
        assert_eq!(Reg::parse("s1"), Some(Reg(9)));
        assert_eq!(Reg::parse("s2"), Some(Reg(18)));
        assert_eq!(Reg::parse("s11"), Some(Reg(27)));
        assert_eq!(Reg::parse("a0"), Some(Reg(10)));
        assert_eq!(Reg::parse("a7"), Some(Reg(17)));
        assert_eq!(Reg::parse("t0"), Some(Reg(5)));
        assert_eq!(Reg::parse("t2"), Some(Reg(7)));
        assert_eq!(Reg::parse("t3"), Some(Reg(28)));
        assert_eq!(Reg::parse("t6"), Some(Reg(31)));
        assert_eq!(Reg::parse("x17"), Some(Reg(17)));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q3"), None);
        assert_eq!(Reg::parse("a9"), None);
    }

    #[test]
    fn abi_name_round_trip() {
        for i in 0..32 {
            let r = Reg::new(i);
            assert_eq!(Reg::parse(r.abi_name()), Some(r), "{}", r.abi_name());
        }
    }

    #[test]
    fn rd_hides_x0_writes() {
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::new(1),
            imm: 0,
        };
        assert_eq!(i.rd(), None);
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(3),
            rs1: Reg::new(1),
            imm: 0,
        };
        assert_eq!(i.rd(), Some(Reg::new(3)));
    }

    #[test]
    fn sources_exclude_x0() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::ZERO,
            rs2: Reg::new(2),
        };
        assert_eq!(i.sources(), vec![Reg::new(2)]);
        let i = Instr::Lui {
            rd: Reg::new(1),
            imm: 0x1000,
        };
        assert!(i.sources().is_empty());
    }

    #[test]
    fn classification() {
        assert!(Instr::Jal {
            rd: Reg::ZERO,
            offset: 8
        }
        .is_control_flow());
        assert!(Instr::Load {
            width: LoadWidth::W,
            rd: Reg::new(1),
            rs1: Reg::SP,
            offset: 0
        }
        .is_memory());
        assert!(!Instr::Fence.is_memory());
    }
}
