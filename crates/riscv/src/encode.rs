//! Binary encoder: [`Instr`] → `u32` instruction words.
//!
//! The inverse of [`crate::decode`]; property tests assert the round trip.

use crate::isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth};

fn rd(r: Reg) -> u32 {
    (r.index() as u32) << 7
}
fn rs1(r: Reg) -> u32 {
    (r.index() as u32) << 15
}
fn rs2(r: Reg) -> u32 {
    (r.index() as u32) << 20
}
fn f3(v: u32) -> u32 {
    v << 12
}
fn f7(v: u32) -> u32 {
    v << 25
}

fn enc_i(imm: i32) -> u32 {
    ((imm as u32) & 0xfff) << 20
}

fn enc_s(imm: i32) -> u32 {
    let imm = imm as u32;
    ((imm & 0xfe0) << 20) | ((imm & 0x1f) << 7)
}

fn enc_b(offset: i32) -> u32 {
    let o = offset as u32;
    ((o & 0x1000) << 19) | ((o & 0x7e0) << 20) | ((o & 0x1e) << 7) | ((o & 0x800) >> 4)
}

fn enc_j(offset: i32) -> u32 {
    let o = offset as u32;
    ((o & 0x10_0000) << 11) | (o & 0xf_f000) | ((o & 0x800) << 9) | ((o & 0x7fe) << 20)
}

/// Encodes one instruction into its RV32I word.
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::Lui { rd: d, imm } => 0b0110111 | rd(d) | imm,
        Instr::Auipc { rd: d, imm } => 0b0010111 | rd(d) | imm,
        Instr::Jal { rd: d, offset } => 0b1101111 | rd(d) | enc_j(offset),
        Instr::Jalr {
            rd: d,
            rs1: s1,
            offset,
        } => 0b1100111 | rd(d) | rs1(s1) | enc_i(offset),
        Instr::Branch {
            cond,
            rs1: s1,
            rs2: s2,
            offset,
        } => {
            let f = match cond {
                BranchCond::Eq => 0b000,
                BranchCond::Ne => 0b001,
                BranchCond::Lt => 0b100,
                BranchCond::Ge => 0b101,
                BranchCond::Ltu => 0b110,
                BranchCond::Geu => 0b111,
            };
            0b1100011 | f3(f) | rs1(s1) | rs2(s2) | enc_b(offset)
        }
        Instr::Load {
            width,
            rd: d,
            rs1: s1,
            offset,
        } => {
            let f = match width {
                LoadWidth::B => 0b000,
                LoadWidth::H => 0b001,
                LoadWidth::W => 0b010,
                LoadWidth::Bu => 0b100,
                LoadWidth::Hu => 0b101,
            };
            0b0000011 | f3(f) | rd(d) | rs1(s1) | enc_i(offset)
        }
        Instr::Store {
            width,
            rs2: s2,
            rs1: s1,
            offset,
        } => {
            let f = match width {
                StoreWidth::B => 0b000,
                StoreWidth::H => 0b001,
                StoreWidth::W => 0b010,
            };
            0b0100011 | f3(f) | rs1(s1) | rs2(s2) | enc_s(offset)
        }
        Instr::AluImm {
            op,
            rd: d,
            rs1: s1,
            imm,
        } => {
            let (f, word_imm) = match op {
                AluImmOp::Addi => (0b000, enc_i(imm)),
                AluImmOp::Slti => (0b010, enc_i(imm)),
                AluImmOp::Sltiu => (0b011, enc_i(imm)),
                AluImmOp::Xori => (0b100, enc_i(imm)),
                AluImmOp::Ori => (0b110, enc_i(imm)),
                AluImmOp::Andi => (0b111, enc_i(imm)),
                AluImmOp::Slli => (0b001, enc_i(imm & 0x1f)),
                AluImmOp::Srli => (0b101, enc_i(imm & 0x1f)),
                AluImmOp::Srai => (0b101, enc_i(imm & 0x1f) | f7(0b0100000)),
            };
            0b0010011 | f3(f) | rd(d) | rs1(s1) | word_imm
        }
        Instr::Alu {
            op,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => {
            let (f, top) = match op {
                AluOp::Add => (0b000, 0),
                AluOp::Sub => (0b000, f7(0b0100000)),
                AluOp::Sll => (0b001, 0),
                AluOp::Slt => (0b010, 0),
                AluOp::Sltu => (0b011, 0),
                AluOp::Xor => (0b100, 0),
                AluOp::Srl => (0b101, 0),
                AluOp::Sra => (0b101, f7(0b0100000)),
                AluOp::Or => (0b110, 0),
                AluOp::And => (0b111, 0),
            };
            0b0110011 | f3(f) | rd(d) | rs1(s1) | rs2(s2) | top
        }
        Instr::Fence => 0x0000_000f,
        Instr::Ecall => 0x0000_0073,
        Instr::Ebreak => 0x0010_0073,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn encode_matches_known_words() {
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(1),
            rs1: Reg::ZERO,
            imm: 5,
        };
        assert_eq!(encode(i), 0x0050_0093);
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(3),
            rs1: Reg::new(1),
            rs2: Reg::new(2),
        };
        assert_eq!(encode(i), 0x0020_81b3);
    }

    #[test]
    fn round_trip_representative_sample() {
        let sample = [
            Instr::Lui {
                rd: Reg::new(7),
                imm: 0xdead_b000,
            },
            Instr::Auipc {
                rd: Reg::new(9),
                imm: 0x1_2000,
            },
            Instr::Jal {
                rd: Reg::RA,
                offset: -2048,
            },
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            },
            Instr::Branch {
                cond: BranchCond::Geu,
                rs1: Reg::new(4),
                rs2: Reg::new(5),
                offset: -4096,
            },
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1: Reg::new(4),
                rs2: Reg::new(5),
                offset: 4094,
            },
            Instr::Load {
                width: LoadWidth::Hu,
                rd: Reg::new(11),
                rs1: Reg::SP,
                offset: 2047,
            },
            Instr::Store {
                width: StoreWidth::B,
                rs2: Reg::new(12),
                rs1: Reg::SP,
                offset: -2048,
            },
            Instr::AluImm {
                op: AluImmOp::Srai,
                rd: Reg::new(13),
                rs1: Reg::new(14),
                imm: 31,
            },
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::new(15),
                rs1: Reg::new(16),
                rs2: Reg::new(17),
            },
            Instr::Fence,
            Instr::Ecall,
            Instr::Ebreak,
        ];
        for i in sample {
            assert_eq!(decode(encode(i)).unwrap(), i, "{i:?}");
        }
    }
}
