//! Functional RV32I executor (the golden model, playing the role Spike
//! plays in the paper's simulator).

use std::fmt;

use crate::decode::{decode, DecodeError};
use crate::isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth};
use crate::mem::{MemFault, Memory};

/// Linux-like exit syscall number used by our programs (`a7 = 93`).
pub const SYSCALL_EXIT: u32 = 93;

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An instruction word failed to decode.
    Decode(DecodeError),
    /// A memory access faulted.
    Mem(MemFault),
    /// An `ecall` with an unsupported syscall number.
    UnknownSyscall {
        /// The value of `a7`.
        number: u32,
        /// Faulting pc.
        pc: u32,
    },
    /// Instruction budget exhausted (runaway program guard).
    Timeout {
        /// Number of instructions executed before giving up.
        executed: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Decode(e) => write!(f, "{e}"),
            ExecError::Mem(e) => write!(f, "{e}"),
            ExecError::UnknownSyscall { number, pc } => {
                write!(f, "unknown syscall {number} at pc {pc:#010x}")
            }
            ExecError::Timeout { executed } => {
                write!(
                    f,
                    "instruction budget exhausted after {executed} instructions"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<DecodeError> for ExecError {
    fn from(e: DecodeError) -> Self {
        ExecError::Decode(e)
    }
}

impl From<MemFault> for ExecError {
    fn from(e: MemFault) -> Self {
        ExecError::Mem(e)
    }
}

/// Result of one [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired; execution continues.
    Retired(Instr),
    /// The program exited via `ecall` (a7 = 93) or `ebreak`; carries the
    /// exit code from `a0`.
    Halted(u32),
}

/// Architectural CPU state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Register file (`x0` kept zero by construction).
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Retired-instruction count.
    pub retired: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers starting at `pc`.
    pub fn new(pc: u32) -> Self {
        Cpu {
            regs: [0; 32],
            pc,
            retired: 0,
        }
    }

    /// Reads a register (`x0` reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (`x0` writes are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Fetches, decodes, and executes one instruction.
    ///
    /// # Errors
    ///
    /// Decode errors, memory faults, and unknown syscalls.
    pub fn step(&mut self, mem: &mut Memory) -> Result<StepOutcome, ExecError> {
        let word = mem.load_u32(self.pc)?;
        let instr = decode(word).map_err(|e| DecodeError {
            pc: Some(self.pc),
            ..e
        })?;
        let mut next_pc = self.pc.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, imm),
            Instr::Auipc { rd, imm } => self.set_reg(rd, self.pc.wrapping_add(imm)),
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = match width {
                    LoadWidth::B => mem.load_u8(addr)? as i8 as i32 as u32,
                    LoadWidth::Bu => mem.load_u8(addr)? as u32,
                    LoadWidth::H => mem.load_u16(addr)? as i16 as i32 as u32,
                    LoadWidth::Hu => mem.load_u16(addr)? as u32,
                    LoadWidth::W => mem.load_u32(addr)?,
                };
                self.set_reg(rd, v);
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = self.reg(rs2);
                match width {
                    StoreWidth::B => mem.store_u8(addr, v as u8)?,
                    StoreWidth::H => mem.store_u16(addr, v as u16)?,
                    StoreWidth::W => mem.store_u32(addr, v)?,
                }
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(imm as u32),
                    AluImmOp::Slti => ((a as i32) < imm) as u32,
                    AluImmOp::Sltiu => (a < imm as u32) as u32,
                    AluImmOp::Xori => a ^ imm as u32,
                    AluImmOp::Ori => a | imm as u32,
                    AluImmOp::Andi => a & imm as u32,
                    AluImmOp::Slli => a << (imm & 0x1f),
                    AluImmOp::Srli => a >> (imm & 0x1f),
                    AluImmOp::Srai => ((a as i32) >> (imm & 0x1f)) as u32,
                };
                self.set_reg(rd, v);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a << (b & 0x1f),
                    AluOp::Slt => ((a as i32) < (b as i32)) as u32,
                    AluOp::Sltu => (a < b) as u32,
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a >> (b & 0x1f),
                    AluOp::Sra => ((a as i32) >> (b & 0x1f)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.set_reg(rd, v);
            }
            Instr::Fence => {}
            Instr::Ecall => {
                let number = self.reg(Reg::new(17)); // a7
                if number == SYSCALL_EXIT {
                    self.retired += 1;
                    return Ok(StepOutcome::Halted(self.reg(Reg::new(10))));
                }
                return Err(ExecError::UnknownSyscall {
                    number,
                    pc: self.pc,
                });
            }
            Instr::Ebreak => {
                self.retired += 1;
                return Ok(StepOutcome::Halted(self.reg(Reg::new(10))));
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        Ok(StepOutcome::Retired(instr))
    }

    /// Runs until halt or `budget` instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`Cpu::step`] errors; returns [`ExecError::Timeout`] if
    /// the budget is exhausted.
    pub fn run(&mut self, mem: &mut Memory, budget: u64) -> Result<u32, ExecError> {
        for _ in 0..budget {
            if let StepOutcome::Halted(code) = self.step(mem)? {
                return Ok(code);
            }
        }
        Err(ExecError::Timeout { executed: budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn run_words(words: &[Instr]) -> (Cpu, Memory) {
        let mut mem = Memory::new(4096);
        let encoded: Vec<u32> = words.iter().map(|&i| encode(i)).collect();
        mem.load_image(0, &encoded);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, 10_000).unwrap();
        (cpu, mem)
    }

    fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            imm,
        }
    }

    #[test]
    fn arithmetic_and_halt() {
        let (cpu, _) = run_words(&[
            addi(1, 0, 20),
            addi(2, 0, 22),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(10),
                rs1: Reg::new(1),
                rs2: Reg::new(2),
            },
            addi(17, 0, 93),
            Instr::Ecall,
        ]);
        assert_eq!(cpu.reg(Reg::new(10)), 42);
        assert_eq!(cpu.retired, 5);
    }

    #[test]
    fn x0_stays_zero() {
        let (cpu, _) = run_words(&[addi(0, 0, 99), addi(17, 0, 93), Instr::Ecall]);
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn branch_loop_counts() {
        // x1 = 0; for x2 in 0..5 { x1 += 2 }
        let (cpu, _) = run_words(&[
            addi(1, 0, 0),
            addi(2, 0, 0),
            addi(3, 0, 5),
            // loop:
            addi(1, 1, 2),
            addi(2, 2, 1),
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1: Reg::new(2),
                rs2: Reg::new(3),
                offset: -8,
            },
            addi(10, 1, 0),
            addi(17, 0, 93),
            Instr::Ecall,
        ]);
        assert_eq!(cpu.reg(Reg::new(10)), 10);
    }

    #[test]
    fn loads_and_stores() {
        let (_, mem) = run_words(&[
            addi(1, 0, -1),
            Instr::Store {
                width: StoreWidth::W,
                rs2: Reg::new(1),
                rs1: Reg::ZERO,
                offset: 100,
            },
            Instr::Load {
                width: LoadWidth::Bu,
                rd: Reg::new(2),
                rs1: Reg::ZERO,
                offset: 100,
            },
            Instr::Store {
                width: StoreWidth::H,
                rs2: Reg::new(2),
                rs1: Reg::ZERO,
                offset: 104,
            },
            addi(17, 0, 93),
            Instr::Ecall,
        ]);
        assert_eq!(mem.load_u32(100).unwrap(), 0xffff_ffff);
        assert_eq!(mem.load_u16(104).unwrap(), 0x00ff);
    }

    #[test]
    fn signed_load_extends() {
        let (cpu, _) = run_words(&[
            addi(1, 0, -128),
            Instr::Store {
                width: StoreWidth::B,
                rs2: Reg::new(1),
                rs1: Reg::ZERO,
                offset: 64,
            },
            Instr::Load {
                width: LoadWidth::B,
                rd: Reg::new(2),
                rs1: Reg::ZERO,
                offset: 64,
            },
            addi(17, 0, 93),
            Instr::Ecall,
        ]);
        assert_eq!(cpu.reg(Reg::new(2)) as i32, -128);
    }

    #[test]
    fn jal_and_jalr() {
        let (cpu, _) = run_words(&[
            Instr::Jal {
                rd: Reg::RA,
                offset: 16,
            }, // pc 0 -> pc 16, ra = 4
            addi(17, 0, 93), // pc 4 (return target)
            Instr::Ecall,    // pc 8
            addi(5, 0, 111), // pc 12: never runs
            addi(6, 0, 7),   // pc 16
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            }, // back to pc 4
        ]);
        assert_eq!(cpu.reg(Reg::new(5)), 0, "skipped instruction must not run");
        assert_eq!(cpu.reg(Reg::new(6)), 7);
        assert_eq!(cpu.reg(Reg::RA), 4);
    }

    #[test]
    fn shifts_behave() {
        let (cpu, _) = run_words(&[
            addi(1, 0, -16),
            Instr::AluImm {
                op: AluImmOp::Srai,
                rd: Reg::new(2),
                rs1: Reg::new(1),
                imm: 2,
            },
            Instr::AluImm {
                op: AluImmOp::Srli,
                rd: Reg::new(3),
                rs1: Reg::new(1),
                imm: 28,
            },
            Instr::AluImm {
                op: AluImmOp::Slli,
                rd: Reg::new(4),
                rs1: Reg::new(1),
                imm: 1,
            },
            addi(17, 0, 93),
            Instr::Ecall,
        ]);
        assert_eq!(cpu.reg(Reg::new(2)) as i32, -4);
        assert_eq!(cpu.reg(Reg::new(3)), 0xf);
        assert_eq!(cpu.reg(Reg::new(4)), (-32i32) as u32);
    }

    #[test]
    fn timeout_detected() {
        let mut mem = Memory::new(64);
        mem.load_image(
            0,
            &[encode(Instr::Jal {
                rd: Reg::ZERO,
                offset: 0,
            })],
        );
        let mut cpu = Cpu::new(0);
        assert!(matches!(
            cpu.run(&mut mem, 100),
            Err(ExecError::Timeout { executed: 100 })
        ));
    }
}
