//! Binary decoder: `u32` instruction words → [`Instr`].

use std::fmt;

use crate::isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth};

/// Error decoding an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
    /// The address it was fetched from, if known.
    pub pc: Option<u32>,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "cannot decode {:#010x} at pc {:#010x}", self.word, pc),
            None => write!(f, "cannot decode {:#010x}", self.word),
        }
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> Reg {
    Reg::new((w >> 7 & 0x1f) as u8)
}
fn rs1(w: u32) -> Reg {
    Reg::new((w >> 15 & 0x1f) as u8)
}
fn rs2(w: u32) -> Reg {
    Reg::new((w >> 20 & 0x1f) as u8)
}
fn funct3(w: u32) -> u32 {
    w >> 12 & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}

fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

fn imm_s(w: u32) -> i32 {
    ((w & 0xfe00_0000) as i32 >> 20) | (w >> 7 & 0x1f) as i32
}

fn imm_b(w: u32) -> i32 {
    ((w & 0x8000_0000) as i32 >> 19)
        | ((w & 0x80) << 4) as i32
        | (w >> 20 & 0x7e0) as i32
        | (w >> 7 & 0x1e) as i32
}

fn imm_j(w: u32) -> i32 {
    ((w & 0x8000_0000) as i32 >> 11)
        | (w & 0xf_f000) as i32
        | (w >> 9 & 0x800) as i32
        | (w >> 20 & 0x7fe) as i32
}

/// Decodes one instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for any encoding outside the RV32I base set.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = || DecodeError { word, pc: None };
    let opcode = word & 0x7f;
    Ok(match opcode {
        0b0110111 => Instr::Lui {
            rd: rd(word),
            imm: word & 0xffff_f000,
        },
        0b0010111 => Instr::Auipc {
            rd: rd(word),
            imm: word & 0xffff_f000,
        },
        0b1101111 => Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        0b1100111 if funct3(word) == 0 => Instr::Jalr {
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        },
        0b1100011 => {
            let cond = match funct3(word) {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return Err(err()),
            };
            Instr::Branch {
                cond,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            }
        }
        0b0000011 => {
            let width = match funct3(word) {
                0b000 => LoadWidth::B,
                0b001 => LoadWidth::H,
                0b010 => LoadWidth::W,
                0b100 => LoadWidth::Bu,
                0b101 => LoadWidth::Hu,
                _ => return Err(err()),
            };
            Instr::Load {
                width,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        0b0100011 => {
            let width = match funct3(word) {
                0b000 => StoreWidth::B,
                0b001 => StoreWidth::H,
                0b010 => StoreWidth::W,
                _ => return Err(err()),
            };
            Instr::Store {
                width,
                rs2: rs2(word),
                rs1: rs1(word),
                offset: imm_s(word),
            }
        }
        0b0010011 => {
            let shamt = (word >> 20 & 0x1f) as i32;
            let (op, imm) = match (funct3(word), funct7(word)) {
                (0b000, _) => (AluImmOp::Addi, imm_i(word)),
                (0b010, _) => (AluImmOp::Slti, imm_i(word)),
                (0b011, _) => (AluImmOp::Sltiu, imm_i(word)),
                (0b100, _) => (AluImmOp::Xori, imm_i(word)),
                (0b110, _) => (AluImmOp::Ori, imm_i(word)),
                (0b111, _) => (AluImmOp::Andi, imm_i(word)),
                (0b001, 0b0000000) => (AluImmOp::Slli, shamt),
                (0b101, 0b0000000) => (AluImmOp::Srli, shamt),
                (0b101, 0b0100000) => (AluImmOp::Srai, shamt),
                _ => return Err(err()),
            };
            Instr::AluImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            }
        }
        0b0110011 => {
            let op = match (funct3(word), funct7(word)) {
                (0b000, 0b0000000) => AluOp::Add,
                (0b000, 0b0100000) => AluOp::Sub,
                (0b001, 0b0000000) => AluOp::Sll,
                (0b010, 0b0000000) => AluOp::Slt,
                (0b011, 0b0000000) => AluOp::Sltu,
                (0b100, 0b0000000) => AluOp::Xor,
                (0b101, 0b0000000) => AluOp::Srl,
                (0b101, 0b0100000) => AluOp::Sra,
                (0b110, 0b0000000) => AluOp::Or,
                (0b111, 0b0000000) => AluOp::And,
                _ => return Err(err()),
            };
            Instr::Alu {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }
        }
        0b0001111 => Instr::Fence,
        0b1110011 => match word {
            0x0000_0073 => Instr::Ecall,
            0x0010_0073 => Instr::Ebreak,
            _ => return Err(err()),
        },
        _ => return Err(err()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_known_words() {
        // addi x1, x0, 5
        assert_eq!(
            decode(0x0050_0093).unwrap(),
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::new(1),
                rs1: Reg::ZERO,
                imm: 5
            }
        );
        // add x3, x1, x2
        assert_eq!(
            decode(0x0020_81b3).unwrap(),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(3),
                rs1: Reg::new(1),
                rs2: Reg::new(2)
            }
        );
        // lui x5, 0x12345
        assert_eq!(
            decode(0x1234_52b7).unwrap(),
            Instr::Lui {
                rd: Reg::new(5),
                imm: 0x1234_5000
            }
        );
        // ecall
        assert_eq!(decode(0x0000_0073).unwrap(), Instr::Ecall);
        // ebreak
        assert_eq!(decode(0x0010_0073).unwrap(), Instr::Ebreak);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi x1, x0, -1
        assert_eq!(
            decode(0xfff0_0093).unwrap(),
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::new(1),
                rs1: Reg::ZERO,
                imm: -1
            }
        );
        // lw x6, -8(x2)
        assert_eq!(
            decode(0xff81_2303).unwrap(),
            Instr::Load {
                width: LoadWidth::W,
                rd: Reg::new(6),
                rs1: Reg::new(2),
                offset: -8
            }
        );
    }

    #[test]
    fn branch_offsets_decode() {
        // beq x1, x2, +8 : imm[12|10:5]=0 imm[4:1|11]=0b0100,0
        let word = 0x0020_8463; // beq x1, x2, 8
        assert_eq!(
            decode(word).unwrap(),
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                offset: 8
            }
        );
    }

    #[test]
    fn jal_offset_decodes() {
        // jal x0, -4 (an infinite-ish loop back one instruction)
        let word = 0xffdf_f06f;
        assert_eq!(
            decode(word).unwrap(),
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -4
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0x0200_0033).is_err(), "mul (RV32M) is outside RV32I");
    }
}
