//! # sfq-riscv — RV32I toolchain for the HiPerRF evaluation
//!
//! A self-contained RISC-V RV32I implementation playing the role the Spike
//! ISA simulator and the RISC-V GNU toolchain play in the paper's
//! evaluation: workload kernels are written in assembly, assembled by
//! [`asm::assemble`], and executed functionally by [`exec::Cpu`] (the
//! golden model the gate-level pipeline simulator in `sfq-cpu` checks
//! against).
//!
//! * [`isa`] — registers and the [`isa::Instr`] instruction type
//! * [`decode`] / [`encode`] — binary codec (round-trip tested)
//! * [`asm`] — two-pass assembler with labels and pseudo-instructions
//! * [`exec`] — functional executor with an exit-syscall convention
//! * [`mem`] — flat little-endian memory
//!
//! ## Example
//!
//! ```
//! use sfq_riscv::asm::assemble;
//! use sfq_riscv::exec::Cpu;
//! use sfq_riscv::mem::Memory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble("li a0, 41\naddi a0, a0, 1\nli a7, 93\necall", 0)?;
//! let mut mem = Memory::new(4096);
//! mem.load_image(0, &prog.words);
//! let mut cpu = Cpu::new(0);
//! assert_eq!(cpu.run(&mut mem, 1000)?, 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod isa;
pub mod mem;

pub use asm::{assemble, Program, WordKind};
pub use exec::{Cpu, StepOutcome};
pub use isa::{Instr, Reg};
pub use mem::Memory;
