//! Flat byte-addressed memory for the functional and pipeline simulators.
//!
//! Models the paper's external 77 K memory: every access is satisfied at a
//! fixed latency (latency accounting lives in the CPU simulator; this type
//! only stores bytes).

use std::fmt;

/// Access fault: address out of the configured memory range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u32,
    /// Access size in bytes.
    pub size: u32,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {}-byte access at {:#010x}",
            self.size, self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Flat little-endian memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, MemFault> {
        let a = addr as usize;
        if a.checked_add(size as usize)
            .is_none_or(|end| end > self.bytes.len())
        {
            return Err(MemFault { addr, size });
        }
        Ok(a)
    }

    /// Loads a byte.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the address is out of range.
    pub fn load_u8(&self, addr: u32) -> Result<u8, MemFault> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a])
    }

    /// Loads a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the range is out of bounds.
    pub fn load_u16(&self, addr: u32) -> Result<u16, MemFault> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Loads a little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the range is out of bounds.
    pub fn load_u32(&self, addr: u32) -> Result<u32, MemFault> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ]))
    }

    /// Stores a byte.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the address is out of range.
    pub fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = v;
        Ok(())
    }

    /// Stores a little-endian halfword.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the range is out of bounds.
    pub fn store_u16(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        let a = self.check(addr, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Stores a little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the range is out of bounds.
    pub fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies a program image (instruction words) to `base`.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load_image(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.store_u32(base + 4 * i as u32, w)
                .expect("program image must fit in memory");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new(64);
        m.store_u32(0, 0xdead_beef).unwrap();
        assert_eq!(m.load_u8(0).unwrap(), 0xef);
        assert_eq!(m.load_u8(3).unwrap(), 0xde);
        assert_eq!(m.load_u16(2).unwrap(), 0xdead);
        assert_eq!(m.load_u32(0).unwrap(), 0xdead_beef);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = Memory::new(8);
        assert!(m.load_u32(5).is_err());
        assert!(m.load_u32(u32::MAX).is_err());
        assert!(m.store_u16(7, 1).is_err());
        assert!(m.load_u8(8).is_err());
        assert!(m.load_u8(7).is_ok());
    }

    #[test]
    fn image_loading() {
        let mut m = Memory::new(64);
        m.load_image(8, &[0x1111_1111, 0x2222_2222]);
        assert_eq!(m.load_u32(8).unwrap(), 0x1111_1111);
        assert_eq!(m.load_u32(12).unwrap(), 0x2222_2222);
    }
}
