//! Two-pass RV32I assembler.
//!
//! Supports labels, the full RV32I base set, the common pseudo-instructions
//! (`li`, `la`, `mv`, `j`, `call`, `ret`, `beqz`, `bgt`, …) and the
//! directives `.word`, `.space`, and `.align`. Programs assemble to flat
//! word images loaded at a base address; `la` resolves labels against that
//! base. This is the toolchain the workload kernels are written in.

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth};

/// Classification of an assembled word: instruction or embedded data.
///
/// Program transformations (instruction scheduling, register renaming)
/// must never touch data words — a data word can coincidentally decode as
/// a valid instruction, so decodability alone cannot distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordKind {
    /// An instruction emitted from a mnemonic.
    Code,
    /// A `.word` / `.space` datum.
    Data,
}

/// An assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Instruction/data words, in order, starting at [`Program::base`].
    pub words: Vec<u32>,
    /// Per-word classification, parallel to [`Program::words`].
    pub kinds: Vec<WordKind>,
    /// Label → absolute byte address.
    pub symbols: HashMap<String, u32>,
    /// Load address of `words[0]`.
    pub base: u32,
}

impl Program {
    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.words.len() as u32 * 4
    }

    /// Looks up a label's absolute address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }
}

/// Assembly error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// One item emitted during the first pass.
#[derive(Debug, Clone)]
enum Item {
    /// A concrete instruction.
    Instr(Instr),
    /// An instruction needing a label (branch/jal/la/li-upper…).
    Fixup { line: usize, kind: FixupKind },
    /// A literal data word.
    Word(u32),
}

#[derive(Debug, Clone)]
enum FixupKind {
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jal {
        rd: Reg,
        label: String,
    },
    /// `la rd, label` — expands to `lui + addi` against the absolute address.
    LaUpper {
        rd: Reg,
        label: String,
    },
    LaLower {
        rd: Reg,
        label: String,
    },
}

/// Assembles `source` into a [`Program`] loaded at `base`.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad
/// operand, undefined or duplicate label, out-of-range immediate).
pub fn assemble(source: &str, base: u32) -> Result<Program, AsmError> {
    let mut items: Vec<Item> = Vec::new();
    let mut symbols: HashMap<String, u32> = HashMap::new();

    let err = |line: usize, msg: String| AsmError { line, message: msg };

    // Pass 1: parse lines, collect labels, emit items (pseudo-expanded).
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find(['#', ';']) {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let addr = base + 4 * items.len() as u32;
            if symbols.insert(label.to_string(), addr).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        parse_statement(rest, line_no, &mut items).map_err(|m| err(line_no, m))?;
    }

    // Pass 2: resolve fixups.
    let mut words = Vec::with_capacity(items.len());
    let mut kinds = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let pc = base + 4 * i as u32;
        kinds.push(match item {
            Item::Word(_) => WordKind::Data,
            _ => WordKind::Code,
        });
        let word = match item {
            Item::Instr(instr) => encode(*instr),
            Item::Word(w) => *w,
            Item::Fixup { line, kind } => {
                let resolve = |label: &String| {
                    symbols
                        .get(label)
                        .copied()
                        .ok_or_else(|| err(*line, format!("undefined label `{label}`")))
                };
                match kind {
                    FixupKind::Branch {
                        cond,
                        rs1,
                        rs2,
                        label,
                    } => {
                        let target = resolve(label)?;
                        let offset = target.wrapping_sub(pc) as i32;
                        if !(-4096..=4094).contains(&offset) || offset % 2 != 0 {
                            return Err(err(*line, format!("branch offset {offset} out of range")));
                        }
                        encode(Instr::Branch {
                            cond: *cond,
                            rs1: *rs1,
                            rs2: *rs2,
                            offset,
                        })
                    }
                    FixupKind::Jal { rd, label } => {
                        let target = resolve(label)?;
                        let offset = target.wrapping_sub(pc) as i32;
                        encode(Instr::Jal { rd: *rd, offset })
                    }
                    FixupKind::LaUpper { rd, label } => {
                        let addr = resolve(label)?;
                        let upper = addr.wrapping_add(0x800) & 0xffff_f000;
                        encode(Instr::Lui {
                            rd: *rd,
                            imm: upper,
                        })
                    }
                    FixupKind::LaLower { rd, label } => {
                        let addr = resolve(label)?;
                        let lower = (addr & 0xfff) as i32;
                        let lower = if lower >= 0x800 {
                            lower - 0x1000
                        } else {
                            lower
                        };
                        encode(Instr::AluImm {
                            op: AluImmOp::Addi,
                            rd: *rd,
                            rs1: *rd,
                            imm: lower,
                        })
                    }
                }
            }
        };
        words.push(word);
    }

    Ok(Program {
        words,
        kinds,
        symbols,
        base,
    })
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse().ok()?
    };
    Some(if neg { -v } else { v })
}

fn reg(s: &str) -> Result<Reg, String> {
    Reg::parse(s.trim()).ok_or_else(|| format!("unknown register `{}`", s.trim()))
}

fn imm12(s: &str) -> Result<i32, String> {
    let v = parse_int(s).ok_or_else(|| format!("bad immediate `{s}`"))?;
    if !(-2048..=2047).contains(&v) {
        return Err(format!("immediate {v} out of 12-bit range"));
    }
    Ok(v as i32)
}

fn shamt(s: &str) -> Result<i32, String> {
    let v = parse_int(s).ok_or_else(|| format!("bad shift amount `{s}`"))?;
    if !(0..=31).contains(&v) {
        return Err(format!("shift amount {v} out of range"));
    }
    Ok(v as i32)
}

/// Parses `offset(base)` memory operands.
fn mem_operand(s: &str) -> Result<(i32, Reg), String> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| format!("expected offset(reg), got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("missing ) in `{s}`"))?;
    let off_str = &s[..open];
    let offset = if off_str.trim().is_empty() {
        0
    } else {
        imm12(off_str)?
    };
    Ok((offset, reg(&s[open + 1..close])?))
}

fn is_label(s: &str) -> bool {
    let s = s.trim();
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_' || c == '.')
        && parse_int(s).is_none()
        && Reg::parse(s).is_none()
}

#[allow(clippy::too_many_lines)]
fn parse_statement(stmt: &str, line: usize, items: &mut Vec<Item>) -> Result<(), String> {
    let (mnemonic, operands) = match stmt.find(char::is_whitespace) {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
        None => (stmt, ""),
    };
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };
    let need = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{mnemonic}` expects {n} operands, got {}",
                ops.len()
            ))
        }
    };

    let mut push = |i: Instr| items.push(Item::Instr(i));

    match mnemonic {
        // Directives.
        ".word" => {
            for op in &ops {
                let v = parse_int(op).ok_or_else(|| format!("bad word `{op}`"))?;
                items.push(Item::Word(v as u32));
            }
        }
        ".space" => {
            need(1)?;
            let bytes = parse_int(ops[0]).ok_or("bad .space size".to_string())?;
            let words = (bytes as usize).div_ceil(4);
            for _ in 0..words {
                items.push(Item::Word(0));
            }
        }
        ".align" => { /* flat word layout is always 4-byte aligned */ }
        ".text" | ".data" | ".globl" | ".global" => { /* accepted, no-op */ }

        // U-type.
        "lui" | "auipc" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let v = parse_int(ops[1]).ok_or_else(|| format!("bad immediate `{}`", ops[1]))?;
            if !(0..=0xf_ffff).contains(&v) {
                return Err(format!("upper immediate {v} out of 20-bit range"));
            }
            let imm = (v as u32) << 12;
            push(if mnemonic == "lui" {
                Instr::Lui { rd, imm }
            } else {
                Instr::Auipc { rd, imm }
            });
        }

        // ALU register-immediate.
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            need(3)?;
            let rd = reg(ops[0])?;
            let rs1 = reg(ops[1])?;
            let (op, imm) = match mnemonic {
                "addi" => (AluImmOp::Addi, imm12(ops[2])?),
                "slti" => (AluImmOp::Slti, imm12(ops[2])?),
                "sltiu" => (AluImmOp::Sltiu, imm12(ops[2])?),
                "xori" => (AluImmOp::Xori, imm12(ops[2])?),
                "ori" => (AluImmOp::Ori, imm12(ops[2])?),
                "andi" => (AluImmOp::Andi, imm12(ops[2])?),
                "slli" => (AluImmOp::Slli, shamt(ops[2])?),
                "srli" => (AluImmOp::Srli, shamt(ops[2])?),
                _ => (AluImmOp::Srai, shamt(ops[2])?),
            };
            push(Instr::AluImm { op, rd, rs1, imm });
        }

        // ALU register-register.
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
            need(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                _ => AluOp::And,
            };
            push(Instr::Alu {
                op,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                rs2: reg(ops[2])?,
            });
        }

        // Loads / stores.
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            need(2)?;
            let width = match mnemonic {
                "lb" => LoadWidth::B,
                "lh" => LoadWidth::H,
                "lw" => LoadWidth::W,
                "lbu" => LoadWidth::Bu,
                _ => LoadWidth::Hu,
            };
            let (offset, rs1) = mem_operand(ops[1])?;
            push(Instr::Load {
                width,
                rd: reg(ops[0])?,
                rs1,
                offset,
            });
        }
        "sb" | "sh" | "sw" => {
            need(2)?;
            let width = match mnemonic {
                "sb" => StoreWidth::B,
                "sh" => StoreWidth::H,
                _ => StoreWidth::W,
            };
            let (offset, rs1) = mem_operand(ops[1])?;
            push(Instr::Store {
                width,
                rs2: reg(ops[0])?,
                rs1,
                offset,
            });
        }

        // Branches (label or numeric offset).
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            need(3)?;
            let cond = match mnemonic {
                "beq" => BranchCond::Eq,
                "bne" => BranchCond::Ne,
                "blt" => BranchCond::Lt,
                "bge" => BranchCond::Ge,
                "bltu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            branch_to(items, line, cond, reg(ops[0])?, reg(ops[1])?, ops[2])?;
        }
        // Swapped-operand branch pseudos.
        "bgt" | "ble" | "bgtu" | "bleu" => {
            need(3)?;
            let cond = match mnemonic {
                "bgt" => BranchCond::Lt,
                "ble" => BranchCond::Ge,
                "bgtu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            branch_to(items, line, cond, reg(ops[1])?, reg(ops[0])?, ops[2])?;
        }
        // Compare-to-zero branch pseudos.
        "beqz" | "bnez" | "bltz" | "bgez" | "blez" | "bgtz" => {
            need(2)?;
            let r = reg(ops[0])?;
            let (cond, rs1, rs2) = match mnemonic {
                "beqz" => (BranchCond::Eq, r, Reg::ZERO),
                "bnez" => (BranchCond::Ne, r, Reg::ZERO),
                "bltz" => (BranchCond::Lt, r, Reg::ZERO),
                "bgez" => (BranchCond::Ge, r, Reg::ZERO),
                "blez" => (BranchCond::Ge, Reg::ZERO, r),
                _ => (BranchCond::Lt, Reg::ZERO, r),
            };
            branch_to(items, line, cond, rs1, rs2, ops[1])?;
        }

        // Jumps.
        "jal" => match ops.len() {
            1 => jal_to(items, line, Reg::RA, ops[0])?,
            2 => jal_to(items, line, reg(ops[0])?, ops[1])?,
            n => return Err(format!("`jal` expects 1 or 2 operands, got {n}")),
        },
        "j" => {
            need(1)?;
            jal_to(items, line, Reg::ZERO, ops[0])?;
        }
        "call" => {
            need(1)?;
            jal_to(items, line, Reg::RA, ops[0])?;
        }
        "jalr" => match ops.len() {
            1 => push(Instr::Jalr {
                rd: Reg::RA,
                rs1: reg(ops[0])?,
                offset: 0,
            }),
            3 => push(Instr::Jalr {
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                offset: imm12(ops[2])?,
            }),
            2 => {
                let (offset, rs1) = mem_operand(ops[1])?;
                push(Instr::Jalr {
                    rd: reg(ops[0])?,
                    rs1,
                    offset,
                });
            }
            n => return Err(format!("`jalr` expects 1-3 operands, got {n}")),
        },
        "jr" => {
            need(1)?;
            push(Instr::Jalr {
                rd: Reg::ZERO,
                rs1: reg(ops[0])?,
                offset: 0,
            });
        }
        "ret" => {
            need(0)?;
            push(Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            });
        }

        // Other pseudos.
        "nop" => {
            need(0)?;
            push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0,
            });
        }
        "mv" => {
            need(2)?;
            push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 0,
            });
        }
        "not" => {
            need(2)?;
            push(Instr::AluImm {
                op: AluImmOp::Xori,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: -1,
            });
        }
        "neg" => {
            need(2)?;
            push(Instr::Alu {
                op: AluOp::Sub,
                rd: reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(ops[1])?,
            });
        }
        "seqz" => {
            need(2)?;
            push(Instr::AluImm {
                op: AluImmOp::Sltiu,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: 1,
            });
        }
        "snez" => {
            need(2)?;
            push(Instr::Alu {
                op: AluOp::Sltu,
                rd: reg(ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(ops[1])?,
            });
        }
        "li" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let v = parse_int(ops[1]).ok_or_else(|| format!("bad immediate `{}`", ops[1]))?;
            let v = v as i32;
            if (-2048..=2047).contains(&v) {
                push(Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: Reg::ZERO,
                    imm: v,
                });
            } else {
                let vu = v as u32;
                let upper = vu.wrapping_add(0x800) & 0xffff_f000;
                let lower = (vu.wrapping_sub(upper)) as i32;
                push(Instr::Lui { rd, imm: upper });
                if lower != 0 {
                    push(Instr::AluImm {
                        op: AluImmOp::Addi,
                        rd,
                        rs1: rd,
                        imm: lower,
                    });
                }
            }
        }
        "la" => {
            need(2)?;
            let rd = reg(ops[0])?;
            let label = ops[1].to_string();
            items.push(Item::Fixup {
                line,
                kind: FixupKind::LaUpper {
                    rd,
                    label: label.clone(),
                },
            });
            items.push(Item::Fixup {
                line,
                kind: FixupKind::LaLower { rd, label },
            });
        }

        "fence" => push(Instr::Fence),
        "ecall" => push(Instr::Ecall),
        "ebreak" => push(Instr::Ebreak),

        other => return Err(format!("unknown mnemonic `{other}`")),
    }
    Ok(())
}

fn branch_to(
    items: &mut Vec<Item>,
    line: usize,
    cond: BranchCond,
    rs1: Reg,
    rs2: Reg,
    target: &str,
) -> Result<(), String> {
    if is_label(target) {
        items.push(Item::Fixup {
            line,
            kind: FixupKind::Branch {
                cond,
                rs1,
                rs2,
                label: target.to_string(),
            },
        });
    } else {
        let offset = parse_int(target).ok_or_else(|| format!("bad branch target `{target}`"))?;
        items.push(Item::Instr(Instr::Branch {
            cond,
            rs1,
            rs2,
            offset: offset as i32,
        }));
    }
    Ok(())
}

fn jal_to(items: &mut Vec<Item>, line: usize, rd: Reg, target: &str) -> Result<(), String> {
    if is_label(target) {
        items.push(Item::Fixup {
            line,
            kind: FixupKind::Jal {
                rd,
                label: target.to_string(),
            },
        });
    } else {
        let offset = parse_int(target).ok_or_else(|| format!("bad jump target `{target}`"))?;
        items.push(Item::Instr(Instr::Jal {
            rd,
            offset: offset as i32,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Cpu;
    use crate::mem::Memory;

    fn run(src: &str) -> (u32, Cpu, Memory) {
        let prog = assemble(src, 0).expect("assembles");
        let mut mem = Memory::new(1 << 20);
        mem.load_image(prog.base, &prog.words);
        let mut cpu = Cpu::new(prog.base);
        let code = cpu.run(&mut mem, 1_000_000).expect("runs");
        (code, cpu, mem)
    }

    #[test]
    fn exit_code_protocol() {
        let (code, _, _) = run("li a0, 7\nli a7, 93\necall\n");
        assert_eq!(code, 7);
    }

    #[test]
    fn labels_and_loops() {
        let (code, _, _) = run("    li t0, 0
                 li t1, 10
            loop:
                 addi t0, t0, 3
                 addi t1, t1, -1
                 bnez t1, loop
                 mv a0, t0
                 li a7, 93
                 ecall");
        assert_eq!(code, 30);
    }

    #[test]
    fn li_large_values() {
        let (code, cpu, _) = run("li t0, 0x12345678
             li t1, -1
             li t2, 0xfffff800
             mv a0, t0
             li a7, 93
             ecall");
        assert_eq!(code, 0x1234_5678);
        assert_eq!(cpu.reg(Reg::parse("t1").unwrap()), u32::MAX);
        assert_eq!(cpu.reg(Reg::parse("t2").unwrap()), 0xffff_f800);
    }

    #[test]
    fn la_and_data_words() {
        let (code, _, _) = run("    la t0, data
                 lw a0, 0(t0)
                 lw t1, 4(t0)
                 add a0, a0, t1
                 li a7, 93
                 ecall
            data:
                 .word 40, 2");
        assert_eq!(code, 42);
    }

    #[test]
    fn call_and_ret() {
        let (code, _, _) = run("    li a0, 5
                 call double
                 call double
                 li a7, 93
                 ecall
            double:
                 add a0, a0, a0
                 ret");
        assert_eq!(code, 20);
    }

    #[test]
    fn branch_pseudos() {
        let (code, _, _) = run("    li t0, 3
                 li t1, 5
                 li a0, 0
                 bgt t1, t0, one     # taken
                 li a0, 100          # skipped
            one: addi a0, a0, 1
                 ble t1, t0, two     # not taken
                 addi a0, a0, 10
            two: li a7, 93
                 ecall");
        assert_eq!(code, 11);
    }

    #[test]
    fn space_directive_reserves_zeroed_words() {
        let prog = assemble("start: .space 12\nend: .word 1", 0).unwrap();
        assert_eq!(prog.words, vec![0, 0, 0, 1]);
        assert_eq!(prog.symbol("end"), Some(12));
    }

    #[test]
    fn comments_are_ignored() {
        let prog = assemble("# full line\nnop ; trailing\nnop # also\n", 0).unwrap();
        assert_eq!(prog.words.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus t0, t1\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("beq t0, t1, nowhere\n", 0).unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = assemble("dup:\ndup:\n", 0).unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = assemble("addi t0, t1, 5000\n", 0).unwrap_err();
        assert!(e.message.contains("12-bit"));
    }

    #[test]
    fn base_address_offsets_symbols() {
        let prog = assemble("x: nop\ny: nop", 0x1000).unwrap();
        assert_eq!(prog.symbol("x"), Some(0x1000));
        assert_eq!(prog.symbol("y"), Some(0x1004));
    }
}
