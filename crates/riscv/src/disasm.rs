//! Disassembler: [`Instr`] → assembly text that [`crate::asm`] accepts.
//!
//! Branch and jump targets are printed as numeric byte offsets, which the
//! assembler also accepts, so `assemble(disassemble(p))` is a round trip
//! for position-independent snippets.

use std::fmt::Write as _;

use crate::isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, StoreWidth};

/// Renders one instruction in assembler syntax.
pub fn disassemble(instr: Instr) -> String {
    match instr {
        Instr::Lui { rd, imm } => format!("lui {rd}, {:#x}", imm >> 12),
        Instr::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", imm >> 12),
        Instr::Jal { rd, offset } => format!("jal {rd}, {offset}"),
        Instr::Jalr { rd, rs1, offset } => format!("jalr {rd}, {rs1}, {offset}"),
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let m = match cond {
                BranchCond::Eq => "beq",
                BranchCond::Ne => "bne",
                BranchCond::Lt => "blt",
                BranchCond::Ge => "bge",
                BranchCond::Ltu => "bltu",
                BranchCond::Geu => "bgeu",
            };
            format!("{m} {rs1}, {rs2}, {offset}")
        }
        Instr::Load {
            width,
            rd,
            rs1,
            offset,
        } => {
            let m = match width {
                LoadWidth::B => "lb",
                LoadWidth::H => "lh",
                LoadWidth::W => "lw",
                LoadWidth::Bu => "lbu",
                LoadWidth::Hu => "lhu",
            };
            format!("{m} {rd}, {offset}({rs1})")
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let m = match width {
                StoreWidth::B => "sb",
                StoreWidth::H => "sh",
                StoreWidth::W => "sw",
            };
            format!("{m} {rs2}, {offset}({rs1})")
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let m = match op {
                AluImmOp::Addi => "addi",
                AluImmOp::Slti => "slti",
                AluImmOp::Sltiu => "sltiu",
                AluImmOp::Xori => "xori",
                AluImmOp::Ori => "ori",
                AluImmOp::Andi => "andi",
                AluImmOp::Slli => "slli",
                AluImmOp::Srli => "srli",
                AluImmOp::Srai => "srai",
            };
            format!("{m} {rd}, {rs1}, {imm}")
        }
        Instr::Alu { op, rd, rs1, rs2 } => {
            let m = match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Sll => "sll",
                AluOp::Slt => "slt",
                AluOp::Sltu => "sltu",
                AluOp::Xor => "xor",
                AluOp::Srl => "srl",
                AluOp::Sra => "sra",
                AluOp::Or => "or",
                AluOp::And => "and",
            };
            format!("{m} {rd}, {rs1}, {rs2}")
        }
        Instr::Fence => "fence".to_string(),
        Instr::Ecall => "ecall".to_string(),
        Instr::Ebreak => "ebreak".to_string(),
    }
}

/// Disassembles a word image into a listing with addresses.
pub fn disassemble_image(base: u32, words: &[u32]) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let pc = base + 4 * i as u32;
        match crate::decode::decode(w) {
            Ok(instr) => {
                let _ = writeln!(out, "{pc:#010x}: {w:08x}  {}", disassemble(instr));
            }
            Err(_) => {
                let _ = writeln!(out, "{pc:#010x}: {w:08x}  .word {w:#x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::encode::encode;
    use crate::isa::Reg;

    #[test]
    fn renders_common_forms() {
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(10),
            rs1: Reg::ZERO,
            imm: -5,
        };
        assert_eq!(disassemble(i), "addi a0, zero, -5");
        let i = Instr::Load {
            width: LoadWidth::W,
            rd: Reg::new(6),
            rs1: Reg::SP,
            offset: -8,
        };
        assert_eq!(disassemble(i), "lw t1, -8(sp)");
        let i = Instr::Lui {
            rd: Reg::new(5),
            imm: 0x1234_5000,
        };
        assert_eq!(disassemble(i), "lui t0, 0x12345");
    }

    #[test]
    fn assemble_of_disassembly_round_trips() {
        let originals = [
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::new(3),
                rs1: Reg::new(4),
                rs2: Reg::new(5),
            },
            Instr::Store {
                width: StoreWidth::H,
                rs2: Reg::new(7),
                rs1: Reg::new(8),
                offset: 20,
            },
            Instr::Branch {
                cond: BranchCond::Geu,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                offset: -16,
            },
            Instr::Jalr {
                rd: Reg::RA,
                rs1: Reg::new(9),
                offset: 4,
            },
            Instr::Fence,
        ];
        for original in originals {
            let text = disassemble(original);
            let prog = assemble(&text, 0).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(prog.words, vec![encode(original)], "`{text}`");
        }
    }

    #[test]
    fn image_listing_marks_data_words() {
        let listing = disassemble_image(0x100, &[encode(Instr::Ecall), 0xffff_ffff]);
        assert!(listing.contains("ecall"));
        assert!(listing.contains(".word 0xffffffff"));
        assert!(listing.contains("0x00000104"));
    }
}
