//! Micro-bench: deterministic parallel Monte Carlo scaling.
//!
//! Times the margin engine's trial sweeps at 1, 2, and N worker threads.
//! The per-trial streams are forked from the sweep seed, so every thread
//! count computes the same report — this bench measures only the
//! fork-join overhead and whatever speedup the host's cores provide (a
//! single-core host shows ~1×).

use hiperrf::config::RfGeometry;
use hiperrf::margins::{monte_carlo_jitter_with_threads, yield_curve_with_threads, Design};
use hiperrf::par;
use hiperrf_bench::microbench::{bench, group};
use std::hint::black_box;

const SEED: u64 = 0xC0FF_EE00;

fn main() {
    let mut threads = vec![1usize, 2];
    let avail = par::available_threads();
    if !threads.contains(&avail) {
        threads.push(avail);
    }

    group("monte_carlo_jitter (4x4, 16 trials)");
    let g = RfGeometry::paper_4x4();
    for &t in &threads {
        bench(&format!("jitter_mc/{t}_threads"), || {
            black_box(monte_carlo_jitter_with_threads(g, 6.0, 16, SEED, t))
        });
    }

    group("yield_curve (4x4 HiPerRF, 4 trials x 3 sigmas)");
    let sigmas = [0.0, 0.05, 0.10];
    for &t in &threads {
        bench(&format!("yield_curve/{t}_threads"), || {
            black_box(yield_curve_with_threads(
                Design::HiPerRf,
                g,
                &sigmas,
                4,
                SEED,
                t,
            ))
        });
    }
}
