//! Criterion bench: Figure 14 generation.
//!
//! Measures the gate-level pipeline simulator's throughput per register-
//! file design on representative workloads, and a full single-benchmark
//! Figure 14 column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hiperrf::delay::RfDesign;
use hiperrf_bench::figure14::run_workload;
use sfq_cpu::{GateLevelCpu, PipelineConfig};
use sfq_riscv::asm::assemble;
use sfq_workloads::kernels::{spec_like::specrand, towers::towers, vector::vvadd};
use std::hint::black_box;

fn pipeline_per_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    let w = towers();
    let prog = assemble(&w.source, 0).expect("assembles");
    for design in RfDesign::ALL {
        group.bench_with_input(
            BenchmarkId::new("towers", format!("{design:?}")),
            &design,
            |b, &d| {
                b.iter(|| {
                    let mut cpu = GateLevelCpu::new(d, PipelineConfig::sodor());
                    let out = cpu.run(black_box(&prog), w.mem_size, w.budget).expect("runs");
                    black_box(out.stats.cpi())
                })
            },
        );
    }
    group.finish();
}

fn figure14_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure14_column");
    group.sample_size(10);
    for w in [vvadd(), specrand()] {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| black_box(run_workload(w)))
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline_per_design, figure14_columns);
criterion_main!(benches);
