//! Micro-bench: Figure 14 generation.
//!
//! Measures the gate-level pipeline simulator's throughput per register-
//! file design on representative workloads, and a full single-benchmark
//! Figure 14 column.

use hiperrf::delay::RfDesign;
use hiperrf_bench::figure14::run_workload;
use hiperrf_bench::microbench::{bench, group};
use sfq_cpu::{GateLevelCpu, PipelineConfig};
use sfq_riscv::asm::assemble;
use sfq_workloads::kernels::{spec_like::specrand, towers::towers, vector::vvadd};
use std::hint::black_box;

fn main() {
    group("pipeline_sim");
    let w = towers();
    let prog = assemble(&w.source, 0).expect("assembles");
    for design in RfDesign::ALL {
        bench(&format!("towers/{design:?}"), || {
            let mut cpu = GateLevelCpu::new(design, PipelineConfig::sodor());
            let out = cpu
                .run(black_box(&prog), w.mem_size, w.budget)
                .expect("runs");
            out.stats.cpi()
        });
    }

    group("figure14_column");
    for w in [vvadd(), specrand()] {
        bench(w.name, || black_box(run_workload(&w)));
    }
}
