//! Criterion bench: the pulse-level structural register files.
//!
//! Measures event-simulation throughput for the operations behind the
//! paper's functional verification: restoring reads on HiPerRF (the
//! loopback mechanism), baseline NDRO reads, and HC round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use hiperrf::banked::DualBankRf;
use hiperrf::config::RfGeometry;
use hiperrf::hiperrf_rf::HiPerRf;
use hiperrf::ndro_rf::NdroRf;
use std::hint::black_box;

fn hiperrf_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hiperrf_structural");
    group.sample_size(20);
    group.bench_function("restoring_read_4x4", |b| {
        let mut rf = HiPerRf::new(RfGeometry::paper_4x4());
        rf.write(2, 0b1010);
        b.iter(|| black_box(rf.read(2)))
    });
    group.bench_function("write_4x4", |b| {
        let mut rf = HiPerRf::new(RfGeometry::paper_4x4());
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) & 0xf;
            rf.write(1, black_box(v));
        })
    });
    group.bench_function("restoring_read_16x16", |b| {
        let mut rf = HiPerRf::new(RfGeometry::paper_16x16());
        rf.write(7, 0xabcd);
        b.iter(|| black_box(rf.read(7)))
    });
    group.finish();
}

fn baseline_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndro_structural");
    group.sample_size(20);
    group.bench_function("read_4x4", |b| {
        let mut rf = NdroRf::new(RfGeometry::paper_4x4());
        rf.write(2, 0b0110);
        b.iter(|| black_box(rf.read(2)))
    });
    group.bench_function("read_16x16", |b| {
        let mut rf = NdroRf::new(RfGeometry::paper_16x16());
        rf.write(9, 0x1234);
        b.iter(|| black_box(rf.read(9)))
    });
    group.finish();
}

fn banked_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_banked_structural");
    group.sample_size(20);
    group.bench_function("read_pair_4x4", |b| {
        let mut rf = DualBankRf::new(RfGeometry::paper_4x4());
        rf.write(2, 0b0011);
        rf.write(3, 0b1100);
        b.iter(|| black_box(rf.read_pair(3, 2)))
    });
    group.finish();
}

criterion_group!(benches, hiperrf_ops, baseline_ops, banked_ops);
criterion_main!(benches);
