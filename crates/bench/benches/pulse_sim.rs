//! Micro-bench: the pulse-level structural register files.
//!
//! Measures event-simulation throughput for the operations behind the
//! paper's functional verification: restoring reads on HiPerRF (the
//! loopback mechanism), baseline NDRO reads, and HC round trips.

use hiperrf::banked::DualBankRf;
use hiperrf::config::RfGeometry;
use hiperrf::harness::RegisterFile;
use hiperrf::hiperrf_rf::HiPerRf;
use hiperrf::ndro_rf::NdroRf;
use hiperrf_bench::microbench::{bench, group};
use sfq_sim::prelude::SchedulerKind;
use std::hint::black_box;

fn main() {
    group("hiperrf_structural");
    {
        let mut rf = HiPerRf::new(RfGeometry::paper_4x4());
        rf.write(2, 0b1010);
        bench("restoring_read_4x4", || black_box(rf.read(2)));
    }
    {
        let mut rf = HiPerRf::new(RfGeometry::paper_4x4());
        let mut v = 0u64;
        bench("write_4x4", || {
            v = (v + 1) & 0xf;
            rf.write(1, black_box(v));
        });
    }
    {
        let mut rf = HiPerRf::new(RfGeometry::paper_16x16());
        rf.write(7, 0xabcd);
        bench("restoring_read_16x16", || black_box(rf.read(7)));
    }

    group("ndro_structural");
    {
        let mut rf = NdroRf::new(RfGeometry::paper_4x4());
        rf.write(2, 0b0110);
        bench("read_4x4", || black_box(rf.read(2)));
    }
    {
        let mut rf = NdroRf::new(RfGeometry::paper_16x16());
        rf.write(9, 0x1234);
        bench("read_16x16", || black_box(rf.read(9)));
    }

    group("dual_banked_structural");
    {
        let mut rf = DualBankRf::new(RfGeometry::paper_4x4());
        rf.write(2, 0b0011);
        rf.write(3, 0b1100);
        bench("read_pair_4x4", || black_box(rf.read_pair(3, 2)));
    }

    // Same restoring-read workload on each event-queue implementation:
    // the calendar queue's pop is O(events-in-bucket) against the heap's
    // O(log n), on identical pulse schedules.
    group("event_schedulers");
    for kind in SchedulerKind::ALL {
        let mut rf = HiPerRf::new(RfGeometry::paper_16x16());
        rf.set_scheduler(kind);
        rf.write(7, 0xabcd);
        bench(&format!("restoring_read_16x16/{kind}"), || {
            black_box(rf.read(7))
        });
    }
}
