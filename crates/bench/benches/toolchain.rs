//! Micro-bench: the RISC-V toolchain substrate (assembler, codec,
//! functional executor) and the event-driven pulse simulator kernel.

use hiperrf_bench::microbench::bench;
use sfq_cells::builder::CircuitBuilder;
use sfq_cells::composite::build_hc_clk;
use sfq_riscv::asm::assemble;
use sfq_riscv::decode::decode;
use sfq_riscv::encode::encode;
use sfq_riscv::exec::Cpu;
use sfq_riscv::mem::Memory;
use sfq_sim::prelude::*;
use sfq_workloads::kernels::sort::qsort;
use std::hint::black_box;

fn main() {
    let w = qsort();
    bench("assemble_qsort", || {
        assemble(black_box(&w.source), 0).expect("assembles")
    });

    let prog = assemble(&w.source, 0).expect("assembles");
    // Only true instruction words round-trip; data words may not decode.
    let words: Vec<u32> = prog
        .words
        .iter()
        .copied()
        .filter(|&w| decode(w).is_ok())
        .collect();
    bench("decode_encode_round_trip", || {
        let mut acc = 0u32;
        for &w in &words {
            acc ^= encode(decode(black_box(w)).expect("decodes"));
        }
        acc
    });

    bench("functional_qsort", || {
        let mut mem = Memory::new(w.mem_size);
        mem.load_image(prog.base, &prog.words);
        let mut cpu = Cpu::new(0);
        cpu.run(&mut mem, w.budget).expect("runs")
    });

    let mut builder = CircuitBuilder::new();
    let ports = build_hc_clk(&mut builder);
    let mut sim = Simulator::new(builder.finish());
    let mut t = Time::from_ps(10.0);
    bench("hc_clk_pulse_tripling", || {
        sim.inject(ports.input, t);
        let stats = sim.run();
        t = sim.now() + Duration::from_ps(100.0);
        stats.emitted
    });
}
