//! Micro-bench: Table I / Table II generation.
//!
//! Measures the closed-form budget computation and the structural netlist
//! census that validates it — the machinery behind the paper's JJ-count
//! and static-power tables.

use hiperrf::budget::{dual_banked_budget, hiperrf_budget, ndro_rf_budget};
use hiperrf::config::RfGeometry;
use hiperrf::hiperrf_rf::HiPerRf;
use hiperrf::RegisterFile;
use hiperrf_bench::microbench::{bench, group};
use std::hint::black_box;

fn main() {
    group("table1_budgets");
    for geometry in RfGeometry::paper_sizes() {
        bench(&format!("all_designs/{geometry}"), || {
            let a = ndro_rf_budget(black_box(geometry)).jj_total();
            let h = hiperrf_budget(black_box(geometry)).jj_total();
            let d = dual_banked_budget(black_box(geometry)).jj_total();
            (a, h, d)
        });
    }

    group("structural_census");
    for geometry in [RfGeometry::paper_4x4(), RfGeometry::paper_16x16()] {
        bench(&format!("build_and_census/{geometry}"), || {
            let rf = HiPerRf::new(black_box(geometry));
            rf.census().jj_total()
        });
    }
    // Census alone over a prebuilt 32×32 netlist.
    let rf = HiPerRf::new(RfGeometry::paper_32x32());
    bench("census_only_32x32", || rf.census().jj_total());
}
