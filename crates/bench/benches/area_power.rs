//! Criterion bench: Table I / Table II generation.
//!
//! Measures the closed-form budget computation and the structural netlist
//! census that validates it — the machinery behind the paper's JJ-count
//! and static-power tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hiperrf::budget::{dual_banked_budget, hiperrf_budget, ndro_rf_budget};
use hiperrf::config::RfGeometry;
use hiperrf::hiperrf_rf::HiPerRf;
use sfq_cells::Census;
use std::hint::black_box;

fn budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_budgets");
    for geometry in RfGeometry::paper_sizes() {
        group.bench_with_input(
            BenchmarkId::new("all_designs", geometry.to_string()),
            &geometry,
            |b, &g| {
                b.iter(|| {
                    let a = ndro_rf_budget(black_box(g)).jj_total();
                    let h = hiperrf_budget(black_box(g)).jj_total();
                    let d = dual_banked_budget(black_box(g)).jj_total();
                    black_box((a, h, d))
                })
            },
        );
    }
    group.finish();
}

fn structural_census(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_census");
    group.sample_size(10);
    for geometry in [RfGeometry::paper_4x4(), RfGeometry::paper_16x16()] {
        group.bench_with_input(
            BenchmarkId::new("build_and_census", geometry.to_string()),
            &geometry,
            |b, &g| {
                b.iter(|| {
                    let rf = HiPerRf::new(black_box(g));
                    black_box(rf.census().jj_total())
                })
            },
        );
    }
    // Census alone over a prebuilt 32×32 netlist.
    let rf = HiPerRf::new(RfGeometry::paper_32x32());
    group.bench_function("census_only_32x32", |b| {
        b.iter(|| black_box(rf.census().jj_total()))
    });
    let _ = Census::default();
    group.finish();
}

criterion_group!(benches, budgets, structural_census);
criterion_main!(benches);
