//! Report builders for Tables I–IV: paper-vs-measured rows plus plain-text
//! rendering.
//!
//! The JJ and power tables (I and II) are computed by elaborating each
//! registered design and walking its netlist scopes
//! ([`hiperrf::budget::structural_budget`]); the closed-form budgets are
//! cross-check assertions, not the source of the report.

use hiperrf::budget::{paper as budget_paper, structural_budget};
use hiperrf::config::RfGeometry;
use hiperrf::delay::{paper as delay_paper, readout_delay_ps, RfDesign};
use hiperrf::designs::Design;
use sfq_chip::pnr;
use sfq_sim::simulator::SimStats;

/// Renders a simulator's cumulative scheduler counters as one compact
/// report cell: `<events> ev / peak <depth>`.
pub fn render_sim_stats(stats: SimStats) -> String {
    format!(
        "{} ev / peak {}",
        stats.events_processed, stats.peak_queue_depth
    )
}

/// A measured-vs-paper value for one design at one geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCell {
    /// Our model's value.
    pub ours: f64,
    /// The paper's reported value.
    pub paper: f64,
}

impl TableCell {
    /// Relative error of our value against the paper's.
    pub fn rel_err(&self) -> f64 {
        (self.ours - self.paper).abs() / self.paper
    }
}

/// One row (one design) of a paper table across the three geometries.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Design name as printed in the paper.
    pub design: &'static str,
    /// Cells for 4×4, 16×16, 32×32.
    pub cells: Vec<TableCell>,
}

fn render(title: &str, unit: &str, rows: &[TableRow], baseline_idx: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>10}   {:>8} {:>8} {:>8}   {:>6}",
        "design", "4x4", "16x16", "32x32", "p:4x4", "p:16x16", "p:32x32", "%base"
    );
    for row in rows {
        let pct = 100.0 * row.cells[2].ours / rows[baseline_idx].cells[2].ours;
        let _ = writeln!(
            out,
            "{:<28} {:>10.2} {:>10.2} {:>10.2}   {:>8.2} {:>8.2} {:>8.2}   {:>5.1}%",
            row.design,
            row.cells[0].ours,
            row.cells[1].ours,
            row.cells[2].ours,
            row.cells[0].paper,
            row.cells[1].paper,
            row.cells[2].paper,
            pct
        );
    }
    let _ = writeln!(
        out,
        "(values in {unit}; p: columns are the paper's Table values)"
    );
    out
}

/// The three designs with Table I/II rows, with their paper reference
/// columns. The shift register is registered but has no paper table row.
const TABLED_DESIGNS: [(Design, &str, [u64; 3], [f64; 3]); 3] = [
    (
        Design::NdroBaseline,
        "NDRO RF (Baseline Design)",
        budget_paper::JJ_NDRO,
        budget_paper::POWER_NDRO,
    ),
    (
        Design::HiPerRf,
        "HiPerRF",
        budget_paper::JJ_HIPERRF,
        budget_paper::POWER_HIPERRF,
    ),
    (
        Design::DualBanked,
        "Dual-banked HiPerRF",
        budget_paper::JJ_DUAL,
        budget_paper::POWER_DUAL,
    ),
];

/// Table I: total JJ count per design and geometry, counted over the
/// elaborated netlists.
pub fn table1() -> Vec<TableRow> {
    let sizes = RfGeometry::paper_sizes();
    TABLED_DESIGNS
        .iter()
        .map(|&(design, name, jj_paper, _)| TableRow {
            design: name,
            cells: sizes
                .iter()
                .zip(jj_paper)
                .map(|(&g, p)| TableCell {
                    ours: structural_budget(design, g).jj_total() as f64,
                    paper: p as f64,
                })
                .collect(),
        })
        .collect()
}

/// Table II: static power (µW) per design and geometry, summed over the
/// cells of the elaborated netlists.
pub fn table2() -> Vec<TableRow> {
    let sizes = RfGeometry::paper_sizes();
    TABLED_DESIGNS
        .iter()
        .map(|&(design, name, _, power_paper)| TableRow {
            design: name,
            cells: sizes
                .iter()
                .zip(power_paper)
                .map(|(&g, p)| TableCell {
                    ours: structural_budget(design, g).static_power_uw(),
                    paper: p,
                })
                .collect(),
        })
        .collect()
}

/// Table III: readout delay (ps) per design and geometry.
pub fn table3() -> Vec<TableRow> {
    let sizes = RfGeometry::paper_sizes();
    let rows: [(&'static str, RfDesign, [f64; 3]); 3] = [
        (
            "NDRO RF (Baseline Design)",
            RfDesign::NdroBaseline,
            delay_paper::READOUT_NDRO,
        ),
        ("HiPerRF", RfDesign::HiPerRf, delay_paper::READOUT_HIPERRF),
        (
            "Dual-banked HiPerRF",
            RfDesign::DualBanked,
            delay_paper::READOUT_DUAL,
        ),
    ];
    rows.iter()
        .map(|(name, design, paper)| TableRow {
            design: name,
            cells: sizes
                .iter()
                .zip(paper)
                .map(|(g, &p)| TableCell {
                    ours: readout_delay_ps(*design, *g),
                    paper: p,
                })
                .collect(),
        })
        .collect()
}

/// Renders Table I as text.
pub fn render_table1() -> String {
    render("Table I: total JJ count", "JJs", &table1(), 0)
}

/// Renders Table II as text.
pub fn render_table2() -> String {
    render("Table II: static power", "µW", &table2(), 0)
}

/// Renders Table III as text.
pub fn render_table3() -> String {
    render("Table III: readout delay", "ps", &table3(), 0)
}

/// Renders Table IV (readout + loopback with PTL wires, 32×32) as text.
pub fn table4_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== Table IV: delays with PTL wire delay (32x32) ==");
    let rows = pnr::table4(RfGeometry::paper_32x32());
    let paper_readout = delay_paper::READOUT_WIRES;
    let paper_loopback = delay_paper::LOOPBACK_WIRES;
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>10} {:>14} {:>10}",
        "design", "readout/ps", "paper", "loopback/ps", "paper"
    );
    for (i, r) in rows.iter().enumerate() {
        let lb = r.loopback_ps.map_or("-".to_string(), |v| format!("{v:.1}"));
        let lb_paper = if i == 0 {
            "-".to_string()
        } else {
            format!("{}", paper_loopback[i - 1])
        };
        let _ = writeln!(
            out,
            "{:<28} {:>12.1} {:>10.1} {:>14} {:>10}",
            r.design.name(),
            r.readout_with_wires_ps,
            paper_readout[i],
            lb,
            lb_paper
        );
    }
    out
}

/// Per-section JJ breakdown of every design at 32×32: where the JJs go.
///
/// Every registered design's breakdown comes from walking its elaborated
/// netlist; the multi-ported projection has no structural model and stays
/// closed-form.
pub fn budget_breakdown_report() -> String {
    use hiperrf::budget::{multi_port_hiperrf_budget, RfBudget};
    use std::fmt::Write as _;
    let g = RfGeometry::paper_32x32();
    let mut budgets: Vec<RfBudget> = hiperrf::designs::registry()
        .map(|d| structural_budget(d, g))
        .collect();
    budgets.push(multi_port_hiperrf_budget(g, 2));
    let mut out = String::new();
    let _ = writeln!(out, "== JJ budget breakdown (32x32) ==");
    for b in budgets {
        let total = b.jj_total();
        let _ = writeln!(
            out,
            "\n{} — {total} JJs, {:.1} µW",
            b.design,
            b.static_power_uw()
        );
        for section in &b.sections {
            let jj = section.census.jj_total();
            let _ = writeln!(
                out,
                "  {:<26} {:>8} JJs ({:>4.1}%)",
                section.name,
                jj,
                100.0 * jj as f64 / total as f64
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_within_tolerance() {
        for row in table1() {
            for cell in &row.cells {
                assert!(cell.rel_err() < 0.05, "{}: {:?}", row.design, cell);
            }
        }
    }

    #[test]
    fn table2_rows_within_tolerance() {
        for row in table2() {
            for cell in &row.cells {
                assert!(cell.rel_err() < 0.10, "{}: {:?}", row.design, cell);
            }
        }
    }

    #[test]
    fn tables_cross_check_against_closed_form() {
        // The reports are structural; the closed-form budgets must agree.
        use hiperrf::budget::closed_form_budget;
        for &(design, ..) in &TABLED_DESIGNS {
            for g in RfGeometry::paper_sizes() {
                let s = structural_budget(design, g);
                let c = closed_form_budget(design, g);
                assert_eq!(s.jj_total(), c.jj_total(), "{design} {g}");
                assert!(
                    (s.static_power_uw() - c.static_power_uw()).abs() < 1e-9,
                    "{design} {g}"
                );
            }
        }
    }

    #[test]
    fn table3_exact() {
        for row in table3() {
            for cell in &row.cells {
                assert!(cell.rel_err() < 0.001, "{}: {:?}", row.design, cell);
            }
        }
    }

    #[test]
    fn budget_breakdown_covers_all_designs() {
        let r = budget_breakdown_report();
        for needle in [
            "NDRO RF",
            "HiPerRF",
            "Dual-banked",
            "Shift-register",
            "Multi-ported",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
        assert!(r.contains("storage"));
    }

    #[test]
    fn rendered_tables_contain_designs() {
        for text in [
            render_table1(),
            render_table2(),
            render_table3(),
            table4_report(),
        ] {
            assert!(text.contains("HiPerRF"), "{text}");
            assert!(text.contains("Baseline"), "{text}");
        }
    }
}
