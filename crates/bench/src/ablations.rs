//! Extended ablation studies: the related-work shift-register baseline,
//! write-path timing margins, and the RAW-spreading compiler schedule.

use hiperrf::config::RfGeometry;
use hiperrf::delay::RfDesign;
use hiperrf::margins::{monte_carlo_jitter, write_skew_window};
use hiperrf::shift_rf::compare_with_hiperrf;
use sfq_cpu::bankalloc::allocate_banks;
use sfq_cpu::reorder::spread_raw_dependencies;
use sfq_cpu::{GateLevelCpu, PipelineConfig};
use sfq_riscv::asm::assemble;
use sfq_workloads::{suite, PASS};

/// Shift-register-vs-HiPerRF comparison report (the Fujiwara \[11\]
/// related-work design the paper contrasts against in §VII).
pub fn shift_register_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "-- related work: DRO shift-register RF vs HiPerRF --");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>12} {:>12}",
        "geometry", "shift JJ", "hiper JJ", "shift ps", "hiper ps"
    );
    for g in RfGeometry::paper_sizes() {
        let cmp = compare_with_hiperrf(g);
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>10} {:>12.1} {:>12.1}",
            g.to_string(),
            cmp.shift_jj,
            cmp.hiperrf_jj,
            cmp.shift_readout_ps,
            cmp.hiperrf_readout_ps
        );
    }
    let _ = writeln!(
        out,
        "the rotating shift register is denser still, but bit-serial access\n\
         costs w demux-limited cycles — 32x53 ps ≈ 1.7 ns per read at 32 bits,\n\
         which is the architectural infeasibility the paper argues in §VII."
    );
    out
}

/// Write-path margin report: the usable data-vs-enable skew window and a
/// jitter Monte Carlo.
pub fn margins_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- write-path timing margins (4x4 structural HiPerRF) --"
    );
    let g = RfGeometry::paper_4x4();
    let w = write_skew_window(g, 16.0, 1.0);
    let _ = writeln!(
        out,
        "data-vs-enable skew window: [{:+.0}, {:+.0}] ps (width {:.0} ps; DAND spec ±8 ps)",
        w.min_ok_ps,
        w.max_ok_ps,
        w.width_ps()
    );
    for jitter in [2.0, 6.0, 12.0, 24.0] {
        let r = monte_carlo_jitter(g, jitter, 40, 0x5f0a);
        let _ = writeln!(
            out,
            "uniform ±{jitter:>4.1} ps injection jitter: {:>5.1}% of writes land correctly",
            r.yield_fraction() * 100.0
        );
    }
    out
}

/// One row of the compiler-scheduling ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAblationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// CPI before/after for the design under test.
    pub cpi_before: f64,
    /// CPI with the RAW-spreading schedule applied.
    pub cpi_after: f64,
    /// Instructions the pass moved.
    pub moved: u32,
}

/// Runs the RAW-spreading scheduler ablation for one design across the
/// benchmark suite.
///
/// # Panics
///
/// Panics if a workload breaks under reordering — that would be a bug in
/// the pass, not a result.
pub fn schedule_ablation(design: RfDesign) -> Vec<ScheduleAblationRow> {
    suite()
        .iter()
        .map(|w| {
            let prog = assemble(&w.source, 0).expect("workload assembles");
            let (reordered, stats) = spread_raw_dependencies(&prog);
            let run = |p| {
                let mut cpu = GateLevelCpu::new(design, PipelineConfig::sodor());
                let out = cpu.run(p, w.mem_size, w.budget).expect("workload runs");
                assert_eq!(out.exit_code, PASS, "{} broke under reordering", w.name);
                out.stats.cpi()
            };
            ScheduleAblationRow {
                name: w.name,
                cpi_before: run(&prog),
                cpi_after: run(&reordered),
                moved: stats.moved,
            }
        })
        .collect()
}

/// Renders the scheduling ablation for HiPerRF (the design the paper says
/// benefits most from spreading RAW dependencies).
pub fn schedule_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- compiler ablation: RAW-spreading schedule on HiPerRF (§VI-B) --"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>8} {:>7}",
        "benchmark", "CPI", "CPI sched", "delta", "moved"
    );
    let rows = schedule_ablation(RfDesign::HiPerRf);
    let mut before = 0.0;
    let mut after = 0.0;
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<16} {:>10.2} {:>10.2} {:>7.2}% {:>7}",
            r.name,
            r.cpi_before,
            r.cpi_after,
            (r.cpi_after / r.cpi_before - 1.0) * 100.0,
            r.moved
        );
        before += r.cpi_before;
        after += r.cpi_after;
    }
    let _ = writeln!(
        out,
        "{:<16} {:>10.2} {:>10.2} {:>7.2}%",
        "AVERAGE",
        before / rows.len() as f64,
        after / rows.len() as f64,
        (after / before - 1.0) * 100.0
    );
    out
}

/// Bank-allocation ablation: the "ideal compiler" of Figure 14 made real.
/// Runs each workload on the dual-banked design three ways: as assembled,
/// with bank-aware register allocation, and under the ideal assumption.
pub fn bank_allocation_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- bank-aware register allocation vs the ideal assumption (§VI-B) --"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10} {:>9}",
        "benchmark", "dual CPI", "allocated", "ideal", "conflicts"
    );
    let mut sums = [0.0f64; 3];
    let rows = suite();
    for w in &rows {
        let prog = assemble(&w.source, 0).expect("workload assembles");
        let (allocated, stats) = allocate_banks(&prog);
        let run = |p, d| {
            let mut cpu = GateLevelCpu::new(d, PipelineConfig::sodor());
            let out = cpu.run(p, w.mem_size, w.budget).expect("workload runs");
            assert_eq!(out.exit_code, PASS, "{} broke under allocation", w.name);
            out.stats.cpi()
        };
        let naive = run(&prog, RfDesign::DualBanked);
        let alloc = run(&allocated, RfDesign::DualBanked);
        let ideal = run(&prog, RfDesign::DualBankedIdeal);
        let _ = writeln!(
            out,
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>4} -> {:>2}",
            w.name, naive, alloc, ideal, stats.conflicts_before, stats.conflicts_after
        );
        sums[0] += naive;
        sums[1] += alloc;
        sums[2] += ideal;
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "{:<16} {:>10.2} {:>10.2} {:>10.2}",
        "AVERAGE",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    out
}

/// Memory-latency sensitivity: how the CPI overheads shift as the 77 K
/// external memory gets slower (the paper fixes one latency; we sweep it).
pub fn memory_latency_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- 77 K memory latency sensitivity (towers + 429.mcf) --"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>10}",
        "mem gates", "base CPI", "HiPerRF%", "dual%"
    );
    let picks: Vec<_> = suite()
        .into_iter()
        .filter(|w| ["towers", "429.mcf"].contains(&w.name))
        .collect();
    for mem_latency in [4u64, 12, 24, 48] {
        let mut cfg = PipelineConfig::sodor();
        cfg.mem_latency = mem_latency;
        let mut cpis = [0.0f64; 3];
        for w in &picks {
            let prog = assemble(&w.source, 0).expect("assembles");
            for (slot, design) in [
                RfDesign::NdroBaseline,
                RfDesign::HiPerRf,
                RfDesign::DualBanked,
            ]
            .iter()
            .enumerate()
            {
                let mut cpu = GateLevelCpu::new(*design, cfg);
                let out = cpu.run(&prog, w.mem_size, w.budget).expect("runs");
                cpis[slot] += out.stats.cpi() / picks.len() as f64;
            }
        }
        let _ = writeln!(
            out,
            "{:>12} {:>10.2} {:>9.2}% {:>9.2}%",
            mem_latency,
            cpis[0],
            (cpis[1] / cpis[0] - 1.0) * 100.0,
            (cpis[2] / cpis[0] - 1.0) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "slower memory dilutes the register-file overheads — consistent with
         the paper evaluating against an idealized fixed-latency 77 K memory."
    );
    out
}

/// Energy report: static energy per workload per design (chip static
/// power × modelled run time). HiPerRF runs ~11% longer but burns far
/// less register-file bias power; this quantifies the net effect the
/// paper's abstract implies ("reduces the static power by 46.2%") at the
/// application level.
pub fn energy_report() -> String {
    use sfq_chip::energy::{chip_static_power_uw, static_energy_fj};
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- application-level static energy (chip power x run time) --"
    );
    let _ = writeln!(
        out,
        "chip static power: baseline {:.2} mW, HiPerRF {:.2} mW, dual {:.2} mW",
        chip_static_power_uw(RfDesign::NdroBaseline) / 1000.0,
        chip_static_power_uw(RfDesign::HiPerRf) / 1000.0,
        chip_static_power_uw(RfDesign::DualBanked) / 1000.0,
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12}  (pJ; lower is better)",
        "benchmark", "baseline", "HiPerRF", "dual"
    );
    let mut sums = [0.0f64; 3];
    let rows = suite();
    for w in &rows {
        let prog = assemble(&w.source, 0).expect("assembles");
        let mut pj = [0.0f64; 3];
        for (slot, design) in [
            RfDesign::NdroBaseline,
            RfDesign::HiPerRf,
            RfDesign::DualBanked,
        ]
        .iter()
        .enumerate()
        {
            let mut cpu = GateLevelCpu::new(*design, PipelineConfig::sodor());
            let out = cpu.run(&prog, w.mem_size, w.budget).expect("runs");
            pj[slot] = static_energy_fj(*design, out.stats.wall_ns()) / 1000.0;
            sums[slot] += pj[slot];
        }
        let _ = writeln!(
            out,
            "{:<16} {:>12.2} {:>12.2} {:>12.2}",
            w.name, pj[0], pj[1], pj[2]
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>12.2} {:>12.2} {:>12.2}   net: HiPerRF {:+.1}%, dual {:+.1}%",
        "TOTAL",
        sums[0],
        sums[1],
        sums[2],
        (sums[1] / sums[0] - 1.0) * 100.0,
        (sums[2] / sums[0] - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "despite the CPI overhead, HiPerRF's bias-power saving wins on energy\n\
         (and the paper notes cooling multiplies every static watt by ~100x)."
    );
    out
}

/// Branch-prediction ablation: how much of the baseline CPI is control
/// stalls? The paper's core has no prediction; switching on a not-taken
/// predictor bounds the opportunity and contextualizes the register-file
/// overheads against the pipeline's other bottlenecks.
pub fn prediction_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "-- branch-prediction ablation (baseline NDRO RF) --");
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>14}",
        "benchmark", "CPI", "CPI w/pred", "control share"
    );
    let mut sums = [0.0f64; 2];
    let rows = suite();
    for w in &rows {
        let prog = assemble(&w.source, 0).expect("assembles");
        let run = |cfg| {
            let mut cpu = GateLevelCpu::new(RfDesign::NdroBaseline, cfg);
            cpu.run(&prog, w.mem_size, w.budget).expect("runs").stats
        };
        let base = run(PipelineConfig::sodor());
        let pred = run(PipelineConfig::sodor_with_prediction());
        let control_share = base.control_stall_cycles as f64 / base.gate_cycles as f64;
        let _ = writeln!(
            out,
            "{:<16} {:>10.2} {:>12.2} {:>13.1}%",
            w.name,
            base.cpi(),
            pred.cpi(),
            control_share * 100.0
        );
        sums[0] += base.cpi();
        sums[1] += pred.cpi();
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "{:<16} {:>10.2} {:>12.2}   ({:.1}% CPI from not-taken speculation alone)",
        "AVERAGE",
        sums[0] / n,
        sums[1] / n,
        (1.0 - sums[1] / sums[0]) * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_register_report_has_all_sizes() {
        let r = shift_register_report();
        assert!(r.contains("4x4"));
        assert!(r.contains("32x32"));
    }

    #[test]
    fn energy_win_holds_at_suite_level() {
        let report = energy_report();
        assert!(report.contains("TOTAL"));
        // The net HiPerRF energy delta must be negative (a saving).
        let net_line = report
            .lines()
            .find(|l| l.contains("net:"))
            .expect("net line");
        assert!(net_line.contains("HiPerRF -"), "{net_line}");
    }

    #[test]
    fn schedule_ablation_never_regresses_much() {
        // Scheduling may be neutral on chain-bound kernels but must never
        // hurt badly, and must help somewhere.
        let rows = schedule_ablation(RfDesign::HiPerRf);
        let mut helped = 0;
        for r in &rows {
            assert!(r.cpi_after <= r.cpi_before * 1.03, "{r:?}");
            if r.cpi_after < r.cpi_before * 0.999 {
                helped += 1;
            }
        }
        assert!(
            helped >= 3,
            "scheduling should help several benchmarks, helped {helped}"
        );
    }
}
