//! Dependency-free micro-benchmark harness (non-default `bench` feature).
//!
//! The workspace builds offline, so instead of criterion the benches under
//! `benches/` use this ~40-line `std::time` harness: calibrate a batch
//! size until one batch takes long enough to time reliably, then keep the
//! best of a few batches (the minimum is the least noisy estimator for a
//! deterministic workload). Run with
//! `cargo bench -p hiperrf-bench --features bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Smallest batch duration we trust `Instant` to time (well above timer
/// granularity on every platform the workspace targets).
const MIN_BATCH: Duration = Duration::from_millis(20);

/// Batches measured after calibration; the best one is reported.
const BATCHES: u32 = 3;

/// Measures `f` and prints one aligned result line.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut iters: u64 = 1;
    let mut elapsed = run_batch(iters, &mut f);
    // Double the batch until it is long enough to time; the cap keeps a
    // sub-nanosecond body from calibrating forever.
    while elapsed < MIN_BATCH && iters < 1 << 24 {
        iters *= 2;
        elapsed = run_batch(iters, &mut f);
    }
    let mut best = elapsed;
    for _ in 1..BATCHES {
        best = best.min(run_batch(iters, &mut f));
    }
    let per_iter = best.as_secs_f64() / iters as f64;
    println!(
        "{name:<48} {:>12}/iter  ({iters} iters/batch)",
        format_secs(per_iter)
    );
}

fn run_batch<T>(iters: u64, f: &mut impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Prints a section header so multi-group benches read like the old
/// criterion output.
pub fn group(title: &str) {
    println!("\n-- {title} --");
}
