//! Control-pulse timing diagrams (paper Figs. 8, 11, 12).
//!
//! The diagrams show which control pulses (REN / WEN / RESET per port)
//! fire in each 53 ps register-file cycle while a short instruction
//! sequence executes. We regenerate them from the schedule models and
//! render ASCII waveforms with the `sfq-sim` trace renderer.

use sfq_cells::timing::RF_CYCLE_PS;
use sfq_sim::time::{Duration, Time};
use sfq_sim::trace::{render_waveforms, PulseTrace};

fn at_cycle(c: u64) -> Time {
    Time::from_ps(RF_CYCLE_PS * c as f64 + 1.0)
}

/// Fig. 8 stand-in: NDRO register file control pulses for the paper's
/// sequence — Inst x's write-back (RESET then WEN, 10 ps apart) overlaps
/// the next instruction's source reads.
pub fn ndro_rf_diagram() -> String {
    let mut reset = PulseTrace::new("RESET(wb)");
    let mut wen = PulseTrace::new("WEN(wb)");
    let mut ren = PulseTrace::new("REN(src)");
    // Three instructions back to back, one write + two reads each, issue
    // interval two RF cycles.
    for inst in 0..3u64 {
        let base = inst * 2;
        reset.record(at_cycle(base));
        wen.record(at_cycle(base) + Duration::from_ps(10.0));
        ren.record(at_cycle(base)); // src1 overlaps the write-back
        ren.record(at_cycle(base + 1)); // src2 in the next cycle
    }
    format!(
        "== Fig. 8 stand-in: NDRO RF control timing (53 ps cycles) ==\n{}",
        render_waveforms(
            &[reset, wen, ren],
            Time::ZERO,
            Duration::from_ps(RF_CYCLE_PS / 4.0),
            28
        )
    )
}

/// Fig. 11 stand-in: HiPerRF control pulses — REN triples through HC-CLK,
/// the loopback write trails each read by one cycle, and the pattern
/// repeats every three cycles.
pub fn hiperrf_diagram() -> String {
    let mut ren = PulseTrace::new("REN(x3)");
    let mut wen = PulseTrace::new("WEN(x3)");
    let mut loopback = PulseTrace::new("LOOPBACK");
    for inst in 0..2u64 {
        let base = inst * 3;
        // Cycle 0: write-back erase (REN with LoopBuffer reset) …
        for k in 0..3 {
            ren.record(at_cycle(base) + Duration::from_ps(10.0 * k as f64));
        }
        // … cycle 1: WEN burst plus first source read.
        for k in 0..3 {
            wen.record(at_cycle(base + 1) + Duration::from_ps(10.0 * k as f64));
            ren.record(at_cycle(base + 1) + Duration::from_ps(10.0 * k as f64));
        }
        // Cycle 2: second source read; loopback writes trail by a cycle.
        for k in 0..3 {
            ren.record(at_cycle(base + 2) + Duration::from_ps(10.0 * k as f64));
            loopback.record(at_cycle(base + 2) + Duration::from_ps(10.0 * k as f64));
            loopback.record(at_cycle(base + 3) + Duration::from_ps(10.0 * k as f64));
        }
    }
    format!(
        "== Fig. 11 stand-in: HiPerRF control timing (three-cycle pattern) ==\n{}",
        render_waveforms(
            &[ren, wen, loopback],
            Time::ZERO,
            Duration::from_ps(RF_CYCLE_PS / 4.0),
            30
        )
    )
}

/// Fig. 12 stand-in: dual-banked control pulses — both banks read in the
/// same cycle when sources fall in different banks; write-back resets
/// occupy the odd cycles.
pub fn dual_banked_diagram() -> String {
    let mut ren0 = PulseTrace::new("REN bank0");
    let mut ren1 = PulseTrace::new("REN bank1");
    let mut wb = PulseTrace::new("WB reset");
    for inst in 0..3u64 {
        let base = inst * 2;
        wb.record(at_cycle(base)); // odd slots reserved for write-back
        ren0.record(at_cycle(base + 1));
        ren1.record(at_cycle(base + 1)); // both banks fire together
    }
    format!(
        "== Fig. 12 stand-in: dual-banked HiPerRF control timing ==\n{}",
        render_waveforms(
            &[wb, ren0, ren1],
            Time::ZERO,
            Duration::from_ps(RF_CYCLE_PS / 4.0),
            28
        )
    )
}

/// All three diagrams concatenated.
pub fn all_diagrams() -> String {
    format!(
        "{}\n{}\n{}",
        ndro_rf_diagram(),
        hiperrf_diagram(),
        dual_banked_diagram()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagrams_render_nonempty() {
        for d in [ndro_rf_diagram(), hiperrf_diagram(), dual_banked_diagram()] {
            assert!(d.lines().count() >= 4, "{d}");
            assert!(d.contains('|') || d.contains('2') || d.contains('3'), "{d}");
        }
    }

    #[test]
    fn hiperrf_shows_triple_pulses() {
        // At the rendering bin width (quarter RF cycle), each HC-CLK burst
        // shows as multi-pulse bins.
        let d = hiperrf_diagram();
        assert!(d.contains('2') || d.contains('3'), "{d}");
    }
}
