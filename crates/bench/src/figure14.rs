//! Figure 14: CPI overhead over the NDRO baseline per benchmark.

use hiperrf::delay::RfDesign;
use sfq_cpu::{GateLevelCpu, PipelineConfig, PipelineStats};
use sfq_riscv::asm::assemble;
use sfq_workloads::{suite, Workload, PASS};

/// One benchmark's results across the four designs.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure14Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline CPI (gate cycles per instruction).
    pub baseline_cpi: f64,
    /// CPI overhead fractions over the baseline:
    /// `[HiPerRF, dual-banked, dual-banked-ideal]`.
    pub overhead: [f64; 3],
    /// Full pipeline statistics per design, in [`RfDesign::ALL`] order —
    /// the stall-cause attribution behind the CPI numbers.
    pub stats: [PipelineStats; 4],
}

/// Paper-reported average overheads: HiPerRF 9.8%, dual-banked 3.6%,
/// dual-banked ideal 2.3% (§VI-B).
pub const PAPER_AVG_OVERHEAD: [f64; 3] = [0.098, 0.036, 0.023];

/// Runs one workload across all four designs.
///
/// # Panics
///
/// Panics if a workload fails to assemble, faults, or fails its
/// self-check — any of those is a bug in the reproduction, not a result.
pub fn run_workload(w: &Workload) -> Figure14Row {
    let prog =
        assemble(&w.source, 0).unwrap_or_else(|e| panic!("{} failed to assemble: {e}", w.name));
    let mut cpis = Vec::with_capacity(4);
    let mut stats = [PipelineStats::default(); 4];
    for (design, slot) in RfDesign::ALL.into_iter().zip(&mut stats) {
        let mut cpu = GateLevelCpu::new(design, PipelineConfig::sodor());
        let out = cpu
            .run(&prog, w.mem_size, w.budget)
            .unwrap_or_else(|e| panic!("{} faulted on {design:?}: {e}", w.name));
        assert_eq!(
            out.exit_code, PASS,
            "{} failed self-check on {design:?}",
            w.name
        );
        cpis.push(out.stats.cpi());
        *slot = out.stats;
    }
    Figure14Row {
        name: w.name,
        baseline_cpi: cpis[0],
        overhead: [
            cpis[1] / cpis[0] - 1.0,
            cpis[2] / cpis[0] - 1.0,
            cpis[3] / cpis[0] - 1.0,
        ],
        stats,
    }
}

/// Runs the full Figure 14 suite.
pub fn figure14() -> Vec<Figure14Row> {
    suite().iter().map(run_workload).collect()
}

/// Arithmetic-mean overheads over a set of rows.
pub fn average_overheads(rows: &[Figure14Row]) -> [f64; 3] {
    let n = rows.len() as f64;
    let mut avg = [0.0; 3];
    for row in rows {
        for (a, o) in avg.iter_mut().zip(row.overhead) {
            *a += o / n;
        }
    }
    avg
}

/// Renders the figure as a text table plus ASCII bars.
pub fn render(rows: &[Figure14Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 14: CPI overhead over NDRO RF baseline ==");
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>9} {:>9} {:>9}  overhead bars (each # = 0.5%)",
        "benchmark", "base CPI", "HiPerRF", "dual", "ideal"
    );
    for row in rows {
        let bars: String = row
            .overhead
            .iter()
            .map(|o| {
                format!(
                    "[{:<24}]",
                    "#".repeat(((o * 200.0).round() as usize).min(24))
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:<16} {:>9.2} {:>8.2}% {:>8.2}% {:>8.2}%  {bars}",
            row.name,
            row.baseline_cpi,
            row.overhead[0] * 100.0,
            row.overhead[1] * 100.0,
            row.overhead[2] * 100.0,
        );
    }
    let avg = average_overheads(rows);
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>8.2}% {:>8.2}% {:>8.2}%   (paper: 9.80% / 3.60% / 2.30%)",
        "AVERAGE",
        "",
        avg[0] * 100.0,
        avg[1] * 100.0,
        avg[2] * 100.0
    );
    let _ = write!(out, "{}", stall_breakdown(rows));
    out
}

/// Renders the suite-aggregate stall-cause histogram per design: where
/// the cycles go, so the CPI differences above are explainable.
pub fn stall_breakdown(rows: &[Figure14Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n-- stall-cause breakdown (suite aggregate, % of design's total gate cycles) --"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>10} {:>18} {:>16} {:>18}",
        "design", "gate cycles", "RAW", "loopback-restore", "issue-interval", "control-redirect"
    );
    for (i, design) in RfDesign::ALL.into_iter().enumerate() {
        let mut total = 0u64;
        let mut cycles = [0u64; 4];
        let mut events = [0u64; 4];
        for row in rows {
            let s = &row.stats[i];
            total += s.gate_cycles;
            for (j, bin) in s.stall_histogram().into_iter().enumerate() {
                cycles[j] += bin.cycles;
                events[j] += bin.events;
            }
        }
        let pct = |c: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * c as f64 / total as f64
            }
        };
        // Histogram order: RAW, loopback, port (issue interval), control.
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>9.1}% {:>17.1}% {:>15.1}% {:>17.1}%",
            design.name(),
            total,
            pct(cycles[0]),
            pct(cycles[1]),
            pct(cycles[2]),
            pct(cycles[3]),
        );
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>10} {:>18} {:>16} {:>18}",
            "", "(events)", events[0], events[1], events[2], events[3],
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_workloads::kernels::vector::vvadd;

    #[test]
    fn single_workload_row_is_ordered() {
        let row = run_workload(&vvadd());
        // HiPerRF pays more than banked designs; everything is >= ~0.
        assert!(row.overhead[0] > row.overhead[1]);
        assert!(row.overhead[1] >= row.overhead[2]);
        assert!(row.overhead[2] > -0.01);
        assert!(row.baseline_cpi > 5.0);
    }

    #[test]
    fn render_contains_average() {
        let rows = vec![Figure14Row {
            name: "x",
            baseline_cpi: 30.0,
            overhead: [0.1, 0.03, 0.02],
            stats: [PipelineStats::default(); 4],
        }];
        let text = render(&rows);
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("10.00%"));
    }

    #[test]
    fn averages_are_means() {
        let rows = vec![
            Figure14Row {
                name: "a",
                baseline_cpi: 1.0,
                overhead: [0.1, 0.0, 0.0],
                stats: [PipelineStats::default(); 4],
            },
            Figure14Row {
                name: "b",
                baseline_cpi: 1.0,
                overhead: [0.3, 0.1, 0.0],
                stats: [PipelineStats::default(); 4],
            },
        ];
        let avg = average_overheads(&rows);
        assert!((avg[0] - 0.2).abs() < 1e-12);
        assert!((avg[1] - 0.05).abs() < 1e-12);
    }
}
