//! # hiperrf-bench — reproduction harness for every table and figure
//!
//! The `repro` binary regenerates the paper's evaluation artifacts
//! (Tables I–IV, Figure 14, the full-chip result, the Fig. 15 loopback
//! report, and the robustness margin/fault reports); the dependency-free
//! micro-benches under `benches/` (non-default `bench` feature) measure
//! the simulator substrate itself. This library holds the shared report
//! builders so the binary, the benches, and the integration tests all
//! compute tables the same way.

pub mod ablations;
pub mod cosim;
pub mod figure14;
pub mod lint;
#[cfg(feature = "bench")]
pub mod microbench;
pub mod perf;
pub mod reports;
pub mod robustness;
pub mod serve_smoke;
pub mod timing_diagrams;

pub use cosim::{cosim_rows, run_cosim, CosimRow};
pub use figure14::{figure14, Figure14Row};
pub use reports::{table1, table2, table3, table4_report, TableRow};
