//! `repro serve` — self-driving smoke of the sim-as-a-service layer.
//!
//! Starts an in-process [`sfq_serve::Server`] on an ephemeral port and a
//! throwaway journal, then exercises the full client-visible contract:
//! submit a margins job and a lint job, wait for both, resubmit the
//! margins spec and require a cache hit with zero new shard executions,
//! and drain. Everything is asserted, so a service-layer regression fails
//! the section (and with it `repro --json` / CI) rather than just
//! printing odd numbers.

use std::fmt::Write as _;

use sfq_serve::json::Json;
use sfq_serve::{client, Server, ServerConfig};

fn digest_of(doc: &Json) -> String {
    doc.get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .expect("terminal job carries a digest")
        .to_string()
}

/// Runs the smoke and renders its report. Panics (→ section failure) on
/// any contract violation.
pub fn serve_report(smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Sim-as-a-service smoke ==");

    let mut wal = std::env::temp_dir();
    wal.push(format!("repro-serve-smoke-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let server = Server::start(ServerConfig::new(&wal)).expect("server starts");
    let addr = server.addr().to_string();
    let _ = writeln!(out, "server: {addr}  journal: {}", wal.display());

    let trials = if smoke { 4 } else { 16 };
    let margins_spec = format!(
        r#"{{"kind":"margins","design":"hiperrf","trials":{trials},"shard_len":2,"seed":"3405691582"}}"#
    );
    let lint_spec = r#"{"kind":"lint","design":"hiperrf"}"#;

    // Submit both jobs, then wait — the server overlaps them on its
    // worker pool.
    let (status, body) = client::submit(&addr, &margins_spec).expect("submit margins");
    assert_eq!(status, 202, "margins must queue: {body}");
    let margins_id = body.get("id").and_then(Json::as_u64).expect("id");
    let (status, body) = client::submit(&addr, lint_spec).expect("submit lint");
    assert_eq!(status, 202, "lint must queue: {body}");
    let lint_id = body.get("id").and_then(Json::as_u64).expect("id");

    let margins = client::wait_for_job(&addr, margins_id, 120_000).expect("margins completes");
    assert_eq!(
        margins.get("status").and_then(Json::as_str),
        Some("done"),
        "margins job: {margins}"
    );
    let lint = client::wait_for_job(&addr, lint_id, 120_000).expect("lint completes");
    assert_eq!(
        lint.get("status").and_then(Json::as_str),
        Some("done"),
        "lint job: {lint}"
    );
    let result = margins.get("result").expect("result");
    let _ = writeln!(
        out,
        "margins job {margins_id}: digest {}  yield {}  events {}",
        digest_of(&margins),
        result.get("yield").and_then(Json::as_f64).expect("yield"),
        result
            .get("work")
            .and_then(|w| w.get("events"))
            .and_then(Json::as_u64)
            .expect("aggregated event count")
    );
    assert_eq!(
        lint.get("result")
            .and_then(|r| r.get("clean"))
            .and_then(Json::as_bool),
        Some(true),
        "registered design must lint clean"
    );
    let _ = writeln!(
        out,
        "lint job {lint_id}: digest {}  clean",
        digest_of(&lint)
    );

    // Cache contract: identical spec → HTTP 200, same digest, shard
    // counter unmoved.
    let before = client::health(&addr)
        .expect("health")
        .get("shards_executed")
        .and_then(Json::as_u64)
        .expect("counter");
    let (status, body) = client::submit(&addr, &margins_spec).expect("resubmit");
    assert_eq!(status, 200, "identical job must hit the cache: {body}");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("cached"));
    assert_eq!(
        body.get("result")
            .and_then(|r| r.get("digest"))
            .and_then(Json::as_str)
            .expect("digest"),
        digest_of(&margins),
        "cache must return the original digest"
    );
    let after = client::health(&addr)
        .expect("health")
        .get("shards_executed")
        .and_then(Json::as_u64)
        .expect("counter");
    assert_eq!(before, after, "cache hit must execute zero new shards");
    let _ = writeln!(
        out,
        "resubmit: served from cache ({before} shards executed before and after)"
    );

    server.drain_and_join();
    let _ = std::fs::remove_file(&wal);
    let _ = writeln!(out, "drain: clean exit");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_runs_end_to_end() {
        let report = serve_report(true);
        assert!(report.contains("served from cache"));
        assert!(report.contains("drain: clean exit"));
    }
}
