//! `repro` — regenerates every table and figure of the HiPerRF paper.
//!
//! ```text
//! repro table1       Table I   (JJ counts)
//! repro table2       Table II  (static power)
//! repro table3       Table III (readout delay)
//! repro table4       Table IV  (delays with PTL wires)
//! repro figure14     Figure 14 (CPI overhead per benchmark)
//! repro chip         Full-chip JJ result (§VI-A, 16.3% reduction)
//! repro figure15     Loopback-path placement report (Fig. 15 stand-in)
//! repro timing       Control timing diagrams (Figs. 8, 11, 12)
//! repro ablations    Design-space ablations beyond the paper
//! repro margins      Variation-aware margin tables + yield curves
//! repro faults       Fault-injection demonstrations
//! repro designs      Registry smoke matrix: every design, built + driven
//! repro lint         Static lint matrix: netlist DRC + min/max-path timing
//! repro perf         Simulator-core wall clock: schedulers + MC threads
//! repro cosim        CPU co-simulation on the pulse-level netlists + fault demo
//! repro serve        Sim-as-a-service smoke: submit, cache hit, drain
//! repro all          Everything above, in order, with a phase-time table
//! ```
//!
//! `margins`, `faults`, `designs`, `lint`, `perf`, `cosim`, and `serve`
//! accept `--smoke` for the fast CI path. `--threads N` pins the Monte
//! Carlo worker count for the process (it sets `HIPERRF_THREADS`); the
//! default is the machine's available parallelism. Every section prints
//! its wall-clock time, and `repro all` ends with the per-section timing
//! table.
//!
//! Sections self-assert; a failed assertion is *contained* per section,
//! `repro all` keeps going, and the process exits nonzero if anything
//! failed. `--json` appends one machine-readable line —
//! `{"ok":…,"sections":[{"name":…,"ok":…,"ms":…,"error":…}]}` — for CI
//! to parse instead of scraping tables.

use hiperrf::budget::{hiperrf_budget, ndro_rf_budget, structural_budget};
use hiperrf::config::RfGeometry;
use hiperrf::delay::{readout_delay_ps, RfDesign};
use hiperrf::designs::registry;
use hiperrf_bench::ablations::{
    bank_allocation_report, energy_report, margins_report, memory_latency_report,
    prediction_report, schedule_report, shift_register_report,
};
use hiperrf_bench::cosim::{cosim_rows, fault_demo, render as render_cosim};
use hiperrf_bench::figure14::{average_overheads, figure14, render as render_fig14};
use hiperrf_bench::lint::{lint_detail, lint_matrix};
use hiperrf_bench::perf::{append_trajectory, format_duration, perf_report, PhaseTimer};
use hiperrf_bench::reports::{
    budget_breakdown_report, render_sim_stats, render_table1, render_table2, render_table3,
    table4_report,
};
use hiperrf_bench::robustness::{faults_report, margins_table};
use hiperrf_bench::serve_smoke::serve_report;
use hiperrf_bench::timing_diagrams::all_diagrams;
use sfq_cells::spec::CellKind;
use sfq_chip::pnr;
use sfq_chip::sodor::{chip_budget, PAPER_BASELINE_CHIP_JJ, PAPER_HIPERRF_CHIP_JJ};

fn chip_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== Full-chip JJ budget (Sodor core, §VI-A) ==");
    let base = chip_budget(RfDesign::NdroBaseline);
    let hi = chip_budget(RfDesign::HiPerRf);
    let dual = chip_budget(RfDesign::DualBanked);
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12}",
        "component", "baseline", "HiPerRF", "dual"
    );
    for i in 0..base.components.len() {
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>12}",
            base.components[i].name,
            base.components[i].jj,
            hi.components[i].jj,
            dual.components[i].jj
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12}",
        "TOTAL",
        base.total_jj(),
        hi.total_jj(),
        dual.total_jj()
    );
    let _ = writeln!(
        out,
        "reduction vs baseline: HiPerRF {:.1}%  dual {:.1}%   (paper: {:.1}% with {} -> {})",
        100.0 * hi.reduction_vs(&base),
        100.0 * dual.reduction_vs(&base),
        100.0 * (1.0 - PAPER_HIPERRF_CHIP_JJ as f64 / PAPER_BASELINE_CHIP_JJ as f64),
        PAPER_BASELINE_CHIP_JJ,
        PAPER_HIPERRF_CHIP_JJ
    );
    out
}

fn figure15_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let g = RfGeometry::paper_32x32();
    let _ = writeln!(
        out,
        "== Fig. 15 stand-in: placed loopback path (32x32 HiPerRF) =="
    );
    let stats = pnr::wire_stats();
    let _ = writeln!(
        out,
        "mean gate-to-gate wire {:.0} µm -> {:.2} ps/hop (PTL at 1 ps / 100 µm)",
        stats.mean_hop_um, stats.mean_hop_ps
    );
    let _ = writeln!(out, "{:<42} {:>10} {:>10}", "segment", "µm", "ps");
    for seg in pnr::loopback_path(g) {
        let _ = writeln!(
            out,
            "{:<42} {:>10.0} {:>10.2}",
            seg.name, seg.length_um, seg.delay_ps
        );
    }
    let _ = writeln!(
        out,
        "longest single wire: {:.1} ps (paper: 4.6 ps, far below the 53 ps decoder cycle)",
        pnr::longest_loopback_wire_ps(g)
    );
    out
}

fn ablations_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== Ablations beyond the paper ==");

    // 1. Register-file size sweep: the paper's claim that HiPerRF's
    // advantage grows with size.
    let _ = writeln!(
        out,
        "\n-- size sweep (width 32): JJ saving and delay overhead --"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>14}",
        "registers", "JJ saving", "delay overhead"
    );
    for regs in [4usize, 8, 16, 32, 64, 128, 256] {
        let g = RfGeometry::new(regs, 32).expect("valid");
        let saving =
            1.0 - hiperrf_budget(g).jj_total() as f64 / ndro_rf_budget(g).jj_total() as f64;
        let overhead = readout_delay_ps(RfDesign::HiPerRf, g)
            / readout_delay_ps(RfDesign::NdroBaseline, g)
            - 1.0;
        let _ = writeln!(
            out,
            "{regs:>10} {:>11.1}% {:>13.1}%",
            saving * 100.0,
            overhead * 100.0
        );
    }

    // 2. HC-DRO capacity: generalize the cell to 1/2/4 bits and rebuild
    // the whole register file around it.
    let _ = writeln!(out, "\n-- HC-DRO capacity sweep: whole-RF cost at 32x32 --");
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>10} {:>12} {:>14}",
        "bits", "fluxons", "RF JJs", "readout ps", "storage JJ/bit"
    );
    for p in hiperrf::capacity::capacity_sweep(RfGeometry::paper_32x32()) {
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>10} {:>12.1} {:>14.2}",
            p.bits,
            p.pulses,
            p.jj_total,
            p.readout_ps,
            CellKind::HcDro.jj_count() as f64 / f64::from(p.bits)
        );
    }
    let _ = writeln!(
        out,
        "two bits per cell is the sweet spot: beyond it the pulse machinery\n\
         and the serial readout tail cost more than the storage saves.\n\
         (NDRO reference: {:.2} JJ per bit)",
        CellKind::Ndro.jj_count() as f64
    );

    // 3. Demux style: NDROC tree vs combinational AND/NOT demux.
    let _ = writeln!(out, "\n-- demux style: JJ cost of a 1-to-32 demux --");
    let ndroc_demux = 31 * CellKind::Ndroc.jj_count() + (26 + 30) * CellKind::Splitter.jj_count();
    // A combinational 1-to-2 demux costs ~50 JJs (paper §III-A): one AND
    // pair + NOT + splitters.
    let comb_stage = 2 * CellKind::AndGate.jj_count()
        + CellKind::NotGate.jj_count()
        + 4 * CellKind::Splitter.jj_count();
    let comb_demux = 31 * comb_stage;
    let _ = writeln!(out, "NDROC tree:          {ndroc_demux:>6} JJs");
    let _ = writeln!(
        out,
        "combinational tree:  {comb_demux:>6} JJs ({comb_stage} JJs per 1-to-2 stage, ~50 in the paper)"
    );

    // 4. Banking factor: interface + demux scaling at 32x32.
    let _ = writeln!(out, "\n-- banking factor at 32x32 --");
    let g = RfGeometry::paper_32x32();
    let single = hiperrf_budget(g).jj_total();
    let dual = hiperrf::budget::dual_banked_budget(g).jj_total();
    let _ = writeln!(out, "1 bank:  {single:>6} JJs");
    let _ = writeln!(
        out,
        "2 banks: {dual:>6} JJs (+{:.1}%)",
        100.0 * (dual as f64 / single as f64 - 1.0)
    );
    let quad = 4 * hiperrf_budget(RfGeometry::new(8, 32).expect("valid")).jj_total() + 3 * 32;
    let _ = writeln!(
        out,
        "4 banks: {quad:>6} JJs (+{:.1}%) — interface growth erodes the demux savings",
        100.0 * (quad as f64 / single as f64 - 1.0)
    );
    let two_port = hiperrf::budget::multi_port_hiperrf_budget(g, 2).jj_total();
    let _ = writeln!(
        out,
        "true 2R2W (no banking): {two_port} JJs ({:.2}x the single-port design —\n\
         the superlinear growth that motivates banking, paper §V)",
        two_port as f64 / single as f64
    );
    let _ = writeln!(out, "\n{}", shift_register_report());
    let _ = writeln!(out, "{}", margins_report());
    let _ = writeln!(out, "{}", schedule_report());
    let _ = writeln!(out, "{}", bank_allocation_report());
    let _ = writeln!(out, "{}", memory_latency_report());
    let _ = writeln!(out, "{}", energy_report());
    let _ = writeln!(out, "{}", prediction_report());
    out
}

/// The registry smoke matrix: builds every registered design at each
/// geometry, drives it through a write/read round trip behind the
/// `RegisterFile` trait, and checks its elaborated census against the
/// structural budget.
fn designs_report(smoke: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== Design registry smoke matrix ==");
    let sizes: &[RfGeometry] = if smoke {
        &[RfGeometry::paper_4x4()]
    } else {
        &[RfGeometry::paper_4x4(), RfGeometry::paper_16x16()]
    };
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>8} {:>10} {:>12}   scheduler load",
        "design", "size", "JJs", "power/µW", "round trip"
    );
    for design in registry() {
        for &g in sizes {
            let mut rf = design.build(g);
            rf.write(1, 0b101);
            let ok = rf.peek(1) == 0b101 && rf.read(1) == 0b101 && rf.violations().is_empty();
            assert!(ok, "{design} at {g}: round trip failed");
            let census = rf.census();
            let budget = structural_budget(design, g);
            assert_eq!(census, budget.census(), "{design} at {g}: census drift");
            let stats = rf.sim_stats();
            assert!(
                stats.events_processed > 0 && stats.peak_queue_depth > 0,
                "{design} at {g}: the round trip must exercise the scheduler"
            );
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>8} {:>10.1} {:>12}   {}",
                design.label(),
                format!("{g}"),
                census.jj_total(),
                census.static_power_uw(),
                "ok",
                render_sim_stats(stats)
            );
        }
    }
    out
}

/// Every concrete section, in `repro all` order.
const SECTIONS: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "budget",
    "figure14",
    "chip",
    "figure15",
    "timing",
    "ablations",
    "margins",
    "faults",
    "designs",
    "lint",
    "perf",
    "cosim",
    "serve",
];

/// Runs one concrete section's report; any self-assertion failure panics
/// (the caller contains it).
fn run_section(section: &str, smoke: bool) {
    match section {
        "table1" => print!("{}", render_table1()),
        "table2" => print!("{}", render_table2()),
        "table3" => print!("{}", render_table3()),
        "table4" => print!("{}", table4_report()),
        "budget" => print!("{}", budget_breakdown_report()),
        "figure14" => {
            let rows = figure14();
            print!("{}", render_fig14(&rows));
            let avg = average_overheads(&rows);
            println!(
                "shape check: HiPerRF {:.1}% > dual {:.1}% > ideal {:.1}% (paper 9.8/3.6/2.3)",
                avg[0] * 100.0,
                avg[1] * 100.0,
                avg[2] * 100.0
            );
        }
        "chip" => print!("{}", chip_report()),
        "figure15" => print!("{}", figure15_report()),
        "timing" => print!("{}", all_diagrams()),
        "ablations" => print!("{}", ablations_report()),
        "margins" => print!("{}", margins_table(smoke)),
        "faults" => print!("{}", faults_report(smoke)),
        "designs" => print!("{}", designs_report(smoke)),
        "lint" => {
            print!("{}", lint_matrix(smoke));
            if !smoke {
                print!("{}", lint_detail());
            }
        }
        "perf" => {
            let report = perf_report(smoke);
            print!("{}", report.text);
            // Machine-readable events/s history: one JSON line per run.
            append_trajectory(std::path::Path::new("BENCH_perf.json"), &report.trajectory);
        }
        "cosim" => {
            print!("{}", render_cosim(&cosim_rows(smoke)));
            if !smoke {
                print!("{}", fault_demo());
            }
        }
        "serve" => print!("{}", serve_report(smoke)),
        // Undocumented: lets tests exercise the containment + exit-code
        // path without breaking a real section.
        "selfcheck-fail" => panic!("injected self-check failure"),
        other => unreachable!("unknown section `{other}` reached run_section"),
    }
}

/// One section's outcome for the exit code and the `--json` summary.
struct SectionOutcome {
    name: &'static str,
    ok: bool,
    ms: u128,
    error: Option<String>,
}

/// Best-effort text of a section's panic payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one section with panic containment: a failed self-assertion marks
/// the section failed instead of aborting the run.
fn run_contained(name: &'static str, smoke: bool) -> SectionOutcome {
    let start = std::time::Instant::now();
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_section(name, smoke)));
    let ms = start.elapsed().as_millis();
    match outcome {
        Ok(()) => SectionOutcome {
            name,
            ok: true,
            ms,
            error: None,
        },
        Err(payload) => {
            let error = panic_text(payload);
            println!("[{name}: FAILED — {error}]");
            SectionOutcome {
                name,
                ok: false,
                ms,
                error: Some(error),
            }
        }
    }
}

/// Renders the machine-readable summary line for `--json`.
fn json_summary(outcomes: &[SectionOutcome]) -> String {
    use sfq_serve::json::Json;
    let sections = outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("name", Json::str(o.name)),
                ("ok", Json::Bool(o.ok)),
                ("ms", Json::u64(o.ms as u64)),
            ];
            if let Some(e) = &o.error {
                fields.push(("error", Json::str(e.clone())));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(outcomes.iter().all(|o| o.ok))),
        ("sections", Json::Arr(sections)),
    ])
    .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    if let Some(threads) = parse_threads(&args) {
        // `repro --threads N` pins the Monte Carlo worker count for this
        // process; `par::available_threads` reads the variable back.
        std::env::set_var(hiperrf::par::THREADS_ENV, threads.to_string());
    }
    let section = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let start = std::time::Instant::now();
    let outcomes: Vec<SectionOutcome> = if section == "all" {
        let mut timer = PhaseTimer::new();
        let mut outcomes = Vec::new();
        for name in SECTIONS {
            // Failures are contained per section: the rest of the run
            // still happens, and the summary names every casualty.
            timer.time(name, || outcomes.push(run_contained(name, smoke)));
            println!();
        }
        print!("{}", timer.render());
        outcomes
    } else if let Some(name) = SECTIONS.iter().find(|&&s| s == section) {
        vec![run_contained(name, smoke)]
    } else if section == "selfcheck-fail" {
        vec![run_contained("selfcheck-fail", smoke)]
    } else {
        eprintln!(
            "unknown section `{section}`; expected one of: {} all \
             (margins/faults/designs/lint/perf/cosim/serve accept --smoke; \
             --threads N pins MC workers; --json emits a summary line)",
            SECTIONS.join(" ")
        );
        std::process::exit(2);
    };

    println!("[{section}: {}]", format_duration(start.elapsed()));
    if json {
        println!("{}", json_summary(&outcomes));
    }
    let failed = outcomes.iter().filter(|o| !o.ok).count();
    if failed > 0 {
        eprintln!(
            "repro: {failed} of {} section(s) failed self-assertions",
            outcomes.len()
        );
        std::process::exit(1);
    }
}

/// Parses `--threads N` / `--threads=N`, exiting with a usage error on a
/// malformed value.
fn parse_threads(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--threads" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => return Some(n),
            _ => {
                eprintln!("--threads expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    None
}
