//! Co-simulation report: the gate-level CPU driving the pulse-level
//! register-file netlists.
//!
//! Each row runs one miniature self-checking kernel with the CPU's
//! operand traffic issued through a [`PulseRf`] backend, so every
//! architectural read pops real fluxons out of the design's netlist and
//! is checked against the functional RV32I model. For designs with an
//! analytic port model the same kernel also runs on [`AnalyticRf`] and
//! the two CPIs are compared — by construction they must agree exactly,
//! and the table proves it run by run. A final demonstration injects a
//! seeded [`FaultPlan`] under the `Degrade` policy and shows the
//! corruption surfacing in the run outcome.

use hiperrf::backend::{PulseRf, RfHealth};
use hiperrf::designs::{registry, Design};
use sfq_cpu::{GateLevelCpu, PipelineConfig};
use sfq_riscv::asm::assemble;
use sfq_sim::fault::FaultPlan;
use sfq_sim::violation::ViolationPolicy;
use sfq_workloads::{cosim_suite, Workload, PASS};

#[cfg(doc)]
use hiperrf::backend::AnalyticRf;

/// One kernel × design co-simulation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimRow {
    /// Kernel name.
    pub workload: &'static str,
    /// The structural design that served the operand traffic.
    pub design: Design,
    /// Instructions retired.
    pub retired: u64,
    /// Pulse-backend robustness counters for the run.
    pub health: RfHealth,
    /// CPI of the pulse-backed run.
    pub pulse_cpi: f64,
    /// CPI of the analytic run of the same kernel (`None` for the shift
    /// register, which has no analytic port model).
    pub analytic_cpi: Option<f64>,
    /// Per-access readout latency charged by the backend (gate cycles).
    pub readout_gate_cycles: u64,
    /// Mean simulated time one RF operation occupied the pulse engine
    /// (ps).
    pub mean_op_occupancy_ps: f64,
}

impl CosimRow {
    /// Whether the analytic and pulse timing models agreed exactly
    /// (vacuously true for designs without an analytic model).
    pub fn timing_agrees(&self) -> bool {
        self.analytic_cpi.is_none_or(|a| a == self.pulse_cpi)
    }
}

/// Runs one kernel against one design's netlist (and, when it exists,
/// the analytic model of the same design).
///
/// # Panics
///
/// Panics if the kernel fails to assemble, faults, or fails its
/// self-check — any of those is a reproduction bug, not a result.
pub fn run_cosim(w: &Workload, design: Design) -> CosimRow {
    let prog =
        assemble(&w.source, 0).unwrap_or_else(|e| panic!("{} failed to assemble: {e}", w.name));
    let mut cpu =
        GateLevelCpu::with_backend(Box::new(PulseRf::new(design)), PipelineConfig::sodor());
    let out = cpu
        .run(&prog, w.mem_size, w.budget)
        .unwrap_or_else(|e| panic!("{} faulted on {design}: {e}", w.name));
    assert_eq!(
        out.exit_code, PASS,
        "{} failed self-check on {design}",
        w.name
    );
    let op_stats = cpu.backend().op_stats();

    let analytic_cpi = design.arch_design().map(|arch| {
        let mut a = GateLevelCpu::new(arch, PipelineConfig::sodor());
        let out = a
            .run(&prog, w.mem_size, w.budget)
            .unwrap_or_else(|e| panic!("{} faulted analytically on {design}: {e}", w.name));
        out.stats.cpi()
    });

    CosimRow {
        workload: w.name,
        design,
        retired: out.stats.retired,
        health: out.rf,
        pulse_cpi: out.stats.cpi(),
        analytic_cpi,
        readout_gate_cycles: cpu.backend().readout_gate_cycles(),
        mean_op_occupancy_ps: op_stats.mean_occupancy_ps(),
    }
}

/// Runs the co-simulation matrix: every registered design × the
/// miniature kernel suite (one kernel under `--smoke`).
pub fn cosim_rows(smoke: bool) -> Vec<CosimRow> {
    let kernels = cosim_suite();
    let kernels = if smoke { &kernels[..1] } else { &kernels[..] };
    let mut rows = Vec::new();
    for w in kernels {
        for design in registry() {
            rows.push(run_cosim(w, design));
        }
    }
    rows
}

/// Renders the co-simulation matrix as a text table.
pub fn render(rows: &[CosimRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Co-simulation: gate-level CPU on pulse-level register files =="
    );
    let _ = writeln!(
        out,
        "{:<14} {:<16} {:>7} {:>8} {:>8} {:>9} {:>10} {:>9} {:>11}",
        "kernel",
        "design",
        "retired",
        "reads",
        "writes",
        "mismatch",
        "pulse CPI",
        "analytic",
        "ps/op"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:<16} {:>7} {:>8} {:>8} {:>9} {:>10.2} {:>9} {:>11.0}",
            r.workload,
            r.design.label(),
            r.retired,
            r.health.reads,
            r.health.writes,
            r.health.value_mismatches,
            r.pulse_cpi,
            r.analytic_cpi
                .map_or_else(|| "-".to_string(), |c| format!("{c:.2}")),
            r.mean_op_occupancy_ps,
        );
    }
    let clean = rows.iter().filter(|r| r.health.is_clean()).count();
    let agree = rows.iter().filter(|r| r.timing_agrees()).count();
    let _ = writeln!(
        out,
        "{clean}/{} runs clean (no corruption, violations, or drops); \
         {agree}/{} analytic/pulse CPI agreements",
        rows.len(),
        rows.len()
    );
    out
}

/// Demonstrates fault injection surfacing at application level: the same
/// kernel on a clean HiPerRF netlist and on one with a seeded delay-spread
/// fault plan under the `Degrade` policy.
///
/// # Panics
///
/// Panics if the injected faults do *not* alter the run outcome — the
/// point of the demonstration is that they must.
pub fn fault_demo() -> String {
    use std::fmt::Write as _;
    let w = &cosim_suite()[0];
    let prog = assemble(&w.source, 0).expect("assembles");
    let config = PipelineConfig::sodor();

    let mut clean_cpu = GateLevelCpu::with_backend(Box::new(PulseRf::new(Design::HiPerRf)), config);
    let clean = clean_cpu.run(&prog, w.mem_size, w.budget).expect("runs");

    let mut faulty_cpu =
        GateLevelCpu::with_backend(Box::new(PulseRf::new(Design::HiPerRf)), config);
    faulty_cpu.set_violation_policy(ViolationPolicy::Degrade);
    faulty_cpu.set_fault_plan(FaultPlan::new(0xc0511).with_delay_sigma(0.2));
    let faulty = faulty_cpu.run(&prog, w.mem_size, w.budget).expect("runs");

    assert!(
        clean.rf.is_clean(),
        "clean run must be clean: {:?}",
        clean.rf
    );
    assert_ne!(
        clean, faulty,
        "a 20% delay spread under Degrade must alter the outcome"
    );
    assert!(
        !faulty.rf.is_clean(),
        "injected faults must surface in the health counters: {:?}",
        faulty.rf
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- fault injection surfacing in `{}` on HiPerRF (σ = 20%, Degrade) --",
        w.name
    );
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>10} {:>11} {:>7}",
        "run", "reads", "writes", "mismatch", "violations", "drops"
    );
    for (label, h) in [("clean", clean.rf), ("faulty", faulty.rf)] {
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>10} {:>11} {:>7}",
            label, h.reads, h.writes, h.value_mismatches, h.violations, h.degraded_drops
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_clean_and_agrees() {
        let rows = cosim_rows(true);
        assert_eq!(rows.len(), registry().count());
        for r in &rows {
            assert!(
                r.health.is_clean(),
                "{} on {}: {:?}",
                r.workload,
                r.design,
                r.health
            );
            assert!(r.timing_agrees(), "{} on {}", r.workload, r.design);
            assert!(r.health.reads > 0 && r.health.writes > 0);
            assert!(r.mean_op_occupancy_ps > 0.0);
        }
        let text = render(&rows);
        assert!(text.contains("runs clean"));
    }
}
