//! `repro perf` — wall-clock instrumentation of the simulator core.
//!
//! Three measurements, each doubling as a correctness check:
//!
//! * **compiled engine vs dyn interpreter vs the seed stack** — the same
//!   register-file soak on five engine × scheduler × placement stacks
//!   (seed heap+interpreter, calendar+interpreter, calendar+compiled,
//!   lane-batched+compiled with the identity placement, and the same
//!   lane stack with the BFS affinity placement + prefetch) must produce
//!   identical reads, violations, and work counters; the table reports
//!   wall clock and events/s per stack plus the speedups, and the full
//!   (non-smoke) run *fails* if the compiled engine is less than
//!   [`MIN_ENGINE_SPEEDUP`]× faster than the interpreter on the same
//!   queue, the calendar+compiled stack less than [`MIN_STACK_SPEEDUP`]×
//!   faster than the seed stack, the lane-batched scheduler less than
//!   [`MIN_SCHED_SPEEDUP`]× faster than the calendar queue under the
//!   compiled engine, or the affinity placement below the
//!   [`MIN_DELIVERY_SPEEDUP`]× regression floor against the identity
//!   placement on the lane stack (placement is perf-neutral at
//!   cache-resident paper geometries — see the floor's docs for why this
//!   one is a regression floor). Smoke runs (4×4, <1000 events) render
//!   the same numbers
//!   but never enforce the floors: at that size a soak finishes in tens
//!   of microseconds and the "speedups" are pure scheduling noise,
//!   legitimately below 1.0.
//! * **three-scheduler comparison** — the same soak on every scheduler
//!   must produce identical reads, violations, and event counts; the
//!   table reports wall clock, events processed, peak queue depth, and
//!   throughput for each.
//! * **parallel Monte Carlo scaling** — the same yield/jitter sweep on
//!   1..N worker threads must produce bit-identical reports; the table
//!   reports wall clock and speedup vs the sequential run.
//!
//! Numbers are honest wall-clock measurements on the machine running the
//! report (a single-core host shows ~1× thread scaling; the determinism
//! assertions hold regardless). The engine comparison also feeds a
//! machine-readable trajectory line (see [`PerfReport::trajectory`] and
//! [`append_trajectory`]) so CI can track events/s across commits.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use hiperrf::config::RfGeometry;
use hiperrf::designs::registry;
use hiperrf::margins::{monte_carlo_jitter_with_threads, yield_curve_with_threads, Design};
use hiperrf::par;
use sfq_serve::json::Json;
use sfq_sim::prelude::{EngineKind, LayoutKind, SchedulerKind};
use sfq_sim::simulator::SimStats;

use crate::robustness::REPORT_SEED;

/// Floor on the compiled engine's soak speedup over the dyn interpreter
/// *on the same scheduler*, enforced by the full (non-smoke) `repro perf`
/// run.
///
/// The original ≥10× target assumed the soak was dispatch-bound; profiling
/// shows it is queue-bound. Per event on the 16×16 registry soak the
/// compiled engine spends ~50 ns vs the interpreter's ~78 ns, and
/// ~13–19 ns of both is the shared calendar-queue pop+push — so the
/// engine-only ratio is structurally capped near 2× (Amdahl on the
/// scheduler), however cheap dispatch gets. The measured ratio is
/// 1.3–2.5× across the registry; 1.2× is the regression floor that still
/// catches any change that de-compiles the hot path while tolerating a
/// loaded CI host. The full optimization-program gain is
/// [`MIN_STACK_SPEEDUP`]'s comparison instead, where the compiled engine
/// rides the calendar queue against the seed stack.
pub const MIN_ENGINE_SPEEDUP: f64 = 1.2;

/// Floor on the compiled-engine + calendar-queue stack's soak speedup
/// over the *seed* stack (dyn interpreter on the reference binary heap —
/// the configuration the original EXPERIMENTS.md baseline of
/// 6.5e6–1.3e7 events/s was recorded on), enforced by the full run. This
/// is the honest "whole optimization program" number: lowering pass,
/// enum dispatch, flat fan-out, and the timing wheel together — measured
/// 1.5–2.5× across the registry.
pub const MIN_STACK_SPEEDUP: f64 = 1.3;

/// Floor on the lane-batched scheduler's soak speedup over the calendar
/// queue *under the compiled engine*, enforced by the full (non-smoke)
/// run. This is the scheduler-overhaul part-2 number: horizon batches
/// served by a cursor plus self-echo lanes, against the part-1 timing
/// wheel. Measured 1.06–1.25× across the registry on the reference host;
/// the queue is only ~13–19 ns of a ~50 ns/event compiled soak, so Amdahl
/// caps any scheduler swap near 1.4× however fast the queue gets. The 0.9
/// floor is deliberately a *regression* floor, not a target: it catches a
/// lane-batched core that falls behind the calendar queue while tolerating
/// the ±10% wall-clock noise of a loaded single-core CI host. See
/// DESIGN.md "Scheduler part 2" for the per-design measurements.
pub const MIN_SCHED_SPEEDUP: f64 = 0.9;

/// Floor on the delivery-path layout's soak speedup: the lane-batched +
/// compiled stack with the BFS affinity placement and next-event prefetch
/// against the *same stack* with the identity placement and no prefetch
/// (the `reference-layout` feature pins the latter as the session
/// default). Enforced by the full (non-smoke) run only.
///
/// Like [`MIN_SCHED_SPEEDUP`] this is deliberately a *regression* floor,
/// not a target. The part-3 structural wins — the 16-byte packed
/// `Event` and the pre-packed fan-out rows —
/// apply to *every* compiled stack including the identity baseline, so
/// this A/B isolates only the placement permutation and the prefetch
/// hints. At the paper geometries (≤32×32, ≤~7.3k cells) the slot array
/// and CSR fit in L2, so placement is measurably perf-neutral: calibration
/// across the registry at 16×16/32×32 put affinity+prefetch at 0.95–1.0×
/// of identity (even a seeded random shuffle lands in the same band), the
/// extra `slot_of` indirection and prefetch instructions costing a few
/// percent that locality cannot buy back from a cache-resident working
/// set. The floor therefore catches layout machinery that *regresses* the
/// serve loop beyond that measured band plus CI noise, and the absolute
/// gain of the part-3 packing shows up in the `layout_events_per_sec`
/// trajectory instead. See DESIGN.md "Delivery path part 3".
pub const MIN_DELIVERY_SPEEDUP: f64 = 0.85;

/// Accumulates named wall-clock phases and renders them as a table.
///
/// Backs the per-section timing summary that `repro` prints after
/// multi-phase runs.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// An empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, records its wall-clock time under `label`, and returns
    /// its result.
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((label.to_string(), start.elapsed()));
        out
    }

    /// The recorded `(label, elapsed)` pairs, in execution order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Renders the phases as an aligned wall-clock table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- wall-clock per phase --");
        let _ = writeln!(out, "{:<24} {:>12}", "phase", "wall clock");
        let total: Duration = self.phases.iter().map(|(_, d)| *d).sum();
        for (label, elapsed) in &self.phases {
            let _ = writeln!(out, "{:<24} {:>12}", label, format_duration(*elapsed));
        }
        let _ = writeln!(out, "{:<24} {:>12}", "TOTAL", format_duration(total));
        out
    }
}

/// Renders a wall-clock duration with a unit that keeps 3-4 significant
/// digits.
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// One engine/scheduler pairing's measurement from the soak workload.
#[derive(Debug)]
struct SoakRun {
    kind: SchedulerKind,
    wall: Duration,
    stats: SimStats,
    /// Read-back values + violation count — compared across pairings.
    observed: (Vec<u64>, usize),
}

/// Write-all/read-all soak of one design on one scheduler × engine
/// pairing. The wall clock covers the simulation only — netlist
/// construction is engine-independent and would dilute an events/s
/// number — but starts before the first operation, so the compiled
/// engine pays for its lowering pass inside the measurement.
fn soak_on(
    design: Design,
    g: RfGeometry,
    kind: SchedulerKind,
    engine: EngineKind,
    layout: Option<LayoutKind>,
    rounds: u32,
) -> SoakRun {
    let mut rf = design.build(g);
    rf.set_scheduler(kind);
    rf.set_engine(engine);
    if let Some(layout) = layout {
        rf.set_layout_kind(layout);
    }
    // Pay the lazy engine compile (and, for the affinity placement, the
    // BFS layout pass) before the clock starts: the soak measures the
    // steady-state serve loop, not one-time setup.
    rf.prepare();
    let start = Instant::now();
    let mask = if g.width() == 64 {
        u64::MAX
    } else {
        (1u64 << g.width()) - 1
    };
    let mut reads = Vec::new();
    for round in 0..rounds {
        for reg in 0..g.registers() {
            rf.write(
                reg,
                (0x9E37_79B9 ^ (u64::from(round) << 8) ^ reg as u64) & mask,
            );
        }
        for reg in 0..g.registers() {
            reads.push(rf.read(reg));
        }
    }
    SoakRun {
        kind,
        wall: start.elapsed(),
        stats: rf.sim_stats(),
        observed: (reads, rf.violations().len()),
    }
}

/// The engine comparison table: every registered design soaked on five
/// stacks — the seed configuration (dyn interpreter on the reference
/// heap, the stack the EXPERIMENTS.md events/s baseline was recorded
/// on), the dyn interpreter on the calendar queue, the compiled engine
/// on the calendar queue, and the compiled engine on the lane-batched
/// scheduler under both the identity and the BFS affinity placements —
/// with a cross-stack equality assertion and, on the full run, the
/// [`MIN_ENGINE_SPEEDUP`], [`MIN_STACK_SPEEDUP`], [`MIN_SCHED_SPEEDUP`],
/// and [`MIN_DELIVERY_SPEEDUP`] floors. Returns the rendered table and
/// one machine-readable trajectory row per design.
fn engine_section(smoke: bool) -> (String, Json) {
    let g = if smoke {
        RfGeometry::paper_4x4()
    } else {
        RfGeometry::paper_16x16()
    };
    let rounds = if smoke { 1 } else { 4 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- execution engines: write-all/read-all soak at {g}, {rounds} round(s) --"
    );
    let _ = writeln!(
        out,
        "{:<16} {:<16} {:<15} {:>10} {:>10} {:>12} {:>9}",
        "design", "engine", "scheduler", "wall", "events", "events/s", "speedup"
    );
    let mut rows = Vec::new();
    let mut worst_engine = f64::INFINITY;
    let mut worst_stack = f64::INFINITY;
    let mut worst_sched = f64::INFINITY;
    let mut worst_delivery = f64::INFINITY;
    for design in registry() {
        // Best of three soaks per stack: one measurement at these sizes
        // is at the mercy of the host's scheduler noise.
        let best = |kind: SchedulerKind, engine: EngineKind, layout: Option<LayoutKind>| {
            let mut best = soak_on(design, g, kind, engine, layout, rounds);
            for _ in 0..2 {
                let next = soak_on(design, g, kind, engine, layout, rounds);
                if next.wall < best.wall {
                    best = next;
                }
            }
            best
        };
        let seed = best(
            SchedulerKind::ReferenceHeap,
            EngineKind::DynInterpreter,
            None,
        );
        let dyn_run = best(
            SchedulerKind::CalendarQueue,
            EngineKind::DynInterpreter,
            None,
        );
        let compiled = best(SchedulerKind::CalendarQueue, EngineKind::Compiled, None);
        // The delivery-path A/B pair: the same lane-batched + compiled
        // stack with the identity placement (the part-2 path, no
        // prefetch) and with the BFS affinity placement + prefetch.
        let lane = best(
            SchedulerKind::LaneBatched,
            EngineKind::Compiled,
            Some(LayoutKind::Identity),
        );
        let layout = best(
            SchedulerKind::LaneBatched,
            EngineKind::Compiled,
            Some(LayoutKind::Affinity),
        );
        for run in [&dyn_run, &compiled, &lane, &layout] {
            assert_eq!(
                seed.observed, run.observed,
                "{design}: stacks disagree on reads/violations"
            );
            assert_eq!(
                seed.stats.events_processed, run.stats.events_processed,
                "{design}: stacks processed different event counts"
            );
            assert_eq!(
                seed.stats.slot_bytes_touched, run.stats.slot_bytes_touched,
                "{design}: stacks disagree on slot bytes touched"
            );
            assert_eq!(
                seed.stats.fanout_rows_visited, run.stats.fanout_rows_visited,
                "{design}: stacks disagree on fan-out rows visited"
            );
        }
        assert_eq!(
            dyn_run.stats.peak_queue_depth, compiled.stats.peak_queue_depth,
            "{design}: engines disagree on peak queue depth"
        );
        assert_eq!(
            compiled.stats.peak_queue_depth, lane.stats.peak_queue_depth,
            "{design}: schedulers disagree on peak queue depth"
        );
        assert_eq!(
            lane.stats.peak_queue_depth, layout.stats.peak_queue_depth,
            "{design}: placements disagree on peak queue depth"
        );
        let engine_speedup = dyn_run.wall.as_secs_f64() / compiled.wall.as_secs_f64();
        let stack_speedup = seed.wall.as_secs_f64() / compiled.wall.as_secs_f64();
        let sched_speedup = compiled.wall.as_secs_f64() / lane.wall.as_secs_f64();
        let lane_stack_speedup = seed.wall.as_secs_f64() / lane.wall.as_secs_f64();
        let delivery_speedup = lane.wall.as_secs_f64() / layout.wall.as_secs_f64();
        let layout_stack_speedup = seed.wall.as_secs_f64() / layout.wall.as_secs_f64();
        worst_engine = worst_engine.min(engine_speedup);
        worst_stack = worst_stack.min(stack_speedup);
        worst_sched = worst_sched.min(sched_speedup);
        worst_delivery = worst_delivery.min(delivery_speedup);
        let dyn_label = EngineKind::DynInterpreter.label().to_string();
        let compiled_label = EngineKind::Compiled.label();
        for (engine, run, speedup) in [
            (dyn_label.clone(), &seed, "1.0x".to_string()),
            (
                dyn_label,
                &dyn_run,
                format!(
                    "{:.2}x",
                    seed.wall.as_secs_f64() / dyn_run.wall.as_secs_f64()
                ),
            ),
            (
                compiled_label.to_string(),
                &compiled,
                format!("{stack_speedup:.2}x"),
            ),
            (
                format!("{compiled_label}/ident"),
                &lane,
                format!("{lane_stack_speedup:.2}x"),
            ),
            (
                format!("{compiled_label}/layout"),
                &layout,
                format!("{layout_stack_speedup:.2}x"),
            ),
        ] {
            let throughput = run.stats.events_processed as f64 / run.wall.as_secs_f64();
            let _ = writeln!(
                out,
                "{:<16} {:<16} {:<15} {:>10} {:>10} {:>12.2e} {:>9}",
                design.label(),
                engine,
                run.kind.label(),
                format_duration(run.wall),
                run.stats.events_processed,
                throughput,
                speedup
            );
        }
        rows.push(Json::obj(vec![
            ("design", Json::str(design.label())),
            ("geometry", Json::str(g.to_string())),
            ("events", Json::u64(seed.stats.events_processed)),
            (
                "seed_events_per_sec",
                Json::Num(seed.stats.events_processed as f64 / seed.wall.as_secs_f64()),
            ),
            (
                "dyn_events_per_sec",
                Json::Num(dyn_run.stats.events_processed as f64 / dyn_run.wall.as_secs_f64()),
            ),
            (
                "compiled_events_per_sec",
                Json::Num(compiled.stats.events_processed as f64 / compiled.wall.as_secs_f64()),
            ),
            (
                "lane_events_per_sec",
                Json::Num(lane.stats.events_processed as f64 / lane.wall.as_secs_f64()),
            ),
            (
                "layout_events_per_sec",
                Json::Num(layout.stats.events_processed as f64 / layout.wall.as_secs_f64()),
            ),
            ("speedup", Json::Num(engine_speedup)),
            ("stack_speedup", Json::Num(stack_speedup)),
            ("sched_speedup", Json::Num(sched_speedup)),
            ("delivery_speedup", Json::Num(delivery_speedup)),
        ]));
    }
    let _ = writeln!(
        out,
        "check: all five stacks agree on every read, violation, and work counter"
    );
    if smoke {
        let _ = writeln!(
            out,
            "worst engine speedup {worst_engine:.2}x, worst stack speedup {worst_stack:.2}x, \
             worst scheduler speedup {worst_sched:.2}x, worst delivery speedup \
             {worst_delivery:.2}x (informational; floors {MIN_ENGINE_SPEEDUP}x / \
             {MIN_STACK_SPEEDUP}x / {MIN_SCHED_SPEEDUP}x / {MIN_DELIVERY_SPEEDUP}x are enforced \
             on the full run only — a 4x4 smoke soak is pure scheduling noise)"
        );
    } else {
        let _ = writeln!(
            out,
            "worst engine speedup {worst_engine:.2}x (floor {MIN_ENGINE_SPEEDUP}x), \
             worst stack speedup {worst_stack:.2}x (floor {MIN_STACK_SPEEDUP}x), \
             worst scheduler speedup {worst_sched:.2}x (floor {MIN_SCHED_SPEEDUP}x), \
             worst delivery speedup {worst_delivery:.2}x (floor {MIN_DELIVERY_SPEEDUP}x)"
        );
        assert!(
            worst_engine >= MIN_ENGINE_SPEEDUP,
            "compiled engine speedup {worst_engine:.2}x fell below the \
             {MIN_ENGINE_SPEEDUP}x floor"
        );
        assert!(
            worst_stack >= MIN_STACK_SPEEDUP,
            "compiled stack speedup {worst_stack:.2}x over the seed stack fell below \
             the {MIN_STACK_SPEEDUP}x floor"
        );
        assert!(
            worst_sched >= MIN_SCHED_SPEEDUP,
            "lane-batched scheduler speedup {worst_sched:.2}x over the calendar queue \
             fell below the {MIN_SCHED_SPEEDUP}x floor"
        );
        assert!(
            worst_delivery >= MIN_DELIVERY_SPEEDUP,
            "delivery-path layout speedup {worst_delivery:.2}x over the identity \
             placement fell below the {MIN_DELIVERY_SPEEDUP}x regression floor"
        );
    }
    (out, Json::Arr(rows))
}

/// The scheduler comparison table: every registered design soaked on all
/// three queue implementations, with a cross-scheduler equality assertion.
fn scheduler_section(smoke: bool) -> String {
    let g = if smoke {
        RfGeometry::paper_4x4()
    } else {
        RfGeometry::paper_16x16()
    };
    let rounds = if smoke { 1 } else { 2 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- event schedulers: write-all/read-all soak at {g}, {rounds} round(s) --"
    );
    let _ = writeln!(
        out,
        "{:<16} {:<16} {:>10} {:>10} {:>10} {:>12}",
        "design", "scheduler", "wall", "events", "peak q", "events/s"
    );
    for design in registry() {
        let runs: Vec<SoakRun> = SchedulerKind::ALL
            .iter()
            .map(|&kind| soak_on(design, g, kind, EngineKind::default(), None, rounds))
            .collect();
        for pair in runs.windows(2) {
            assert_eq!(
                pair[0].observed, pair[1].observed,
                "{design}: {} and {} disagree on reads/violations",
                pair[0].kind, pair[1].kind
            );
            assert_eq!(
                pair[0].stats.events_processed, pair[1].stats.events_processed,
                "{design}: schedulers processed different event counts"
            );
        }
        for run in &runs {
            let throughput = run.stats.events_processed as f64 / run.wall.as_secs_f64();
            let _ = writeln!(
                out,
                "{:<16} {:<16} {:>10} {:>10} {:>10} {:>12.2e}",
                design.label(),
                run.kind.label(),
                format_duration(run.wall),
                run.stats.events_processed,
                run.stats.peak_queue_depth,
                throughput
            );
        }
    }
    let _ = writeln!(
        out,
        "check: all three schedulers agree on every read, violation, and event count"
    );
    out
}

/// The thread-scaling table: the same Monte Carlo sweeps on 1..N worker
/// threads, with a bit-identity assertion against the sequential run.
fn threads_section(smoke: bool) -> String {
    let mut threads: Vec<usize> = vec![1, 2, 4];
    let avail = par::available_threads();
    if !threads.contains(&avail) {
        threads.push(avail);
        threads.sort_unstable();
    }

    let (jitter_g, jitter_trials) = if smoke {
        (RfGeometry::paper_4x4(), 8u32)
    } else {
        (RfGeometry::paper_32x32(), 24u32)
    };
    let (yield_g, yield_trials) = (RfGeometry::paper_4x4(), if smoke { 4u32 } else { 8 });
    let sigmas = [0.0, 0.05, 0.10];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- deterministic parallel Monte Carlo (default worker count {avail}) --"
    );
    let _ = writeln!(
        out,
        "workload A: jitter MC, {jitter_g} HiPerRF, {jitter_trials} trials"
    );
    let _ = writeln!(
        out,
        "workload B: yield curve, {yield_g} {}, {yield_trials} trials x {} sigmas",
        Design::HiPerRf.label(),
        sigmas.len()
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>9} {:>14} {:>9}   bit-identical",
        "threads", "A wall", "A speed", "B wall", "B speed"
    );

    let mut baseline: Option<(Duration, Duration)> = None;
    let mut reference = None;
    for &t in &threads {
        let start = Instant::now();
        let jitter = monte_carlo_jitter_with_threads(jitter_g, 6.0, jitter_trials, REPORT_SEED, t);
        let jitter_wall = start.elapsed();
        let start = Instant::now();
        let curve = yield_curve_with_threads(
            Design::HiPerRf,
            yield_g,
            &sigmas,
            yield_trials,
            REPORT_SEED,
            t,
        );
        let yield_wall = start.elapsed();

        match &reference {
            None => reference = Some((jitter, curve.clone())),
            Some((j0, c0)) => {
                assert_eq!(&jitter, j0, "jitter MC differs at {t} threads");
                assert_eq!(&curve, c0, "yield curve differs at {t} threads");
            }
        }
        let (j_base, y_base) = *baseline.get_or_insert((jitter_wall, yield_wall));
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>8.2}x {:>14} {:>8.2}x   yes",
            t,
            format_duration(jitter_wall),
            j_base.as_secs_f64() / jitter_wall.as_secs_f64(),
            format_duration(yield_wall),
            y_base.as_secs_f64() / yield_wall.as_secs_f64(),
        );
    }
    let _ = writeln!(
        out,
        "check: every thread count reproduced the 1-thread reports bit for bit"
    );
    out
}

/// The rendered `repro perf` report plus its machine-readable side.
pub struct PerfReport {
    /// The human-readable tables.
    pub text: String,
    /// One trajectory line for [`append_trajectory`]: the engine
    /// comparison rows plus run metadata.
    pub trajectory: Json,
}

/// The full `repro perf` report.
///
/// # Panics
///
/// Panics if the engines, schedulers, or placements disagree on any
/// observable, if the full run's speedups fall below
/// [`MIN_ENGINE_SPEEDUP`], [`MIN_STACK_SPEEDUP`], [`MIN_SCHED_SPEEDUP`],
/// or [`MIN_DELIVERY_SPEEDUP`], or if any thread count fails to
/// reproduce the sequential Monte Carlo reports exactly. Smoke runs
/// assert the cross-stack observables but never the floors.
pub fn perf_report(smoke: bool) -> PerfReport {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Simulator-core performance (seed {REPORT_SEED:#x}) =="
    );
    let mut timer = PhaseTimer::new();
    let (engines, rows) = timer.time("engines", || engine_section(smoke));
    let schedulers = timer.time("schedulers", || scheduler_section(smoke));
    let threads = timer.time("parallel MC", || threads_section(smoke));
    let _ = writeln!(out, "\n{engines}");
    let _ = writeln!(out, "{schedulers}");
    let _ = writeln!(out, "{threads}");
    let _ = write!(out, "{}", timer.render());
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let trajectory = Json::obj(vec![
        ("unix_s", Json::u64(unix_s)),
        ("smoke", Json::Bool(smoke)),
        ("engines", rows),
    ]);
    PerfReport {
        text: out,
        trajectory,
    }
}

/// Appends one trajectory line to `path` (JSON-lines: one `repro perf`
/// run per line), so successive runs accumulate an events/s history
/// instead of overwriting each other. Errors are reported, not fatal — a
/// read-only checkout must not fail the perf section.
pub fn append_trajectory(path: &Path, line: &Json) {
    use std::io::Write as _;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    match result {
        Ok(()) => println!("[trajectory appended to {}]", path.display()),
        Err(e) => eprintln!("[trajectory not written to {}: {e}]", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_report_smoke_renders_and_asserts() {
        let report = perf_report(true);
        let r = &report.text;
        assert!(r.contains("execution engines"), "{r}");
        assert!(r.contains("event schedulers"), "{r}");
        assert!(r.contains("bit for bit"), "{r}");
        assert!(r.contains("wall-clock per phase"), "{r}");
        // The trajectory line carries one row per registered design, each
        // with a finite speedup measurement.
        let rows = match report.trajectory.get("engines") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("missing engines rows: {other:?}"),
        };
        assert_eq!(rows.len(), registry().count());
        for row in rows {
            for field in [
                "speedup",
                "stack_speedup",
                "sched_speedup",
                "delivery_speedup",
            ] {
                let v = row.get(field).and_then(Json::as_f64).expect(field);
                assert!(v.is_finite() && v > 0.0, "{field}: {row}");
            }
            for field in ["lane_events_per_sec", "layout_events_per_sec"] {
                let v = row.get(field).and_then(Json::as_f64).expect(field);
                assert!(v.is_finite() && v > 0.0, "{field}: {row}");
            }
        }
        // The satellite fix for smoke-floor noise: a smoke run renders
        // the speedups as informational only (a 4x4 soak legitimately
        // lands below 1.0x) and tags its trajectory line so tooling can
        // filter it — reaching this assertion at all proves no floor
        // panicked above.
        assert!(r.contains("informational"), "{r}");
        assert_eq!(
            report.trajectory.get("smoke").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn trajectory_appends_one_line_per_run() {
        let dir = std::env::temp_dir().join(format!("hiperrf-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_perf.json");
        let line = Json::obj(vec![("speedup", Json::Num(12.5))]);
        append_trajectory(&path, &line);
        append_trajectory(&path, &line);
        let text = std::fs::read_to_string(&path).expect("trajectory file");
        assert_eq!(text.lines().count(), 2);
        for l in text.lines() {
            let parsed = Json::parse(l).expect("valid JSON line");
            assert_eq!(parsed.get("speedup").and_then(Json::as_f64), Some(12.5));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[ignore = "full-size wall-clock table; run with --release --ignored --nocapture"]
    fn engine_section_full_size() {
        // The four-stack table at 16x16 without the Monte Carlo phases —
        // the quick way to re-measure after a queue or engine change.
        let (text, _) = engine_section(false);
        eprintln!("{text}");
    }

    #[test]
    fn phase_timer_renders_all_phases() {
        let mut t = PhaseTimer::new();
        let x = t.time("alpha", || 41 + 1);
        assert_eq!(x, 42);
        t.time("beta", || ());
        let table = t.render();
        assert!(table.contains("alpha") && table.contains("beta") && table.contains("TOTAL"));
        assert_eq!(t.phases().len(), 2);
    }
}
