//! `repro perf` — wall-clock instrumentation of the simulator core.
//!
//! Two measurements, each doubling as a correctness check:
//!
//! * **calendar queue vs reference heap** — the same register-file soak on
//!   both schedulers must produce identical reads, violations, and event
//!   counts; the table reports wall clock, events processed, peak queue
//!   depth, and throughput for each.
//! * **parallel Monte Carlo scaling** — the same yield/jitter sweep on
//!   1..N worker threads must produce bit-identical reports; the table
//!   reports wall clock and speedup vs the sequential run.
//!
//! Numbers are honest wall-clock measurements on the machine running the
//! report (a single-core host shows ~1× thread scaling; the determinism
//! assertions hold regardless).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hiperrf::config::RfGeometry;
use hiperrf::designs::registry;
use hiperrf::margins::{monte_carlo_jitter_with_threads, yield_curve_with_threads, Design};
use hiperrf::par;
use sfq_sim::prelude::SchedulerKind;
use sfq_sim::simulator::SimStats;

use crate::robustness::REPORT_SEED;

/// Accumulates named wall-clock phases and renders them as a table.
///
/// Backs the per-section timing summary that `repro` prints after
/// multi-phase runs.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// An empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, records its wall-clock time under `label`, and returns
    /// its result.
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((label.to_string(), start.elapsed()));
        out
    }

    /// The recorded `(label, elapsed)` pairs, in execution order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Renders the phases as an aligned wall-clock table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- wall-clock per phase --");
        let _ = writeln!(out, "{:<24} {:>12}", "phase", "wall clock");
        let total: Duration = self.phases.iter().map(|(_, d)| *d).sum();
        for (label, elapsed) in &self.phases {
            let _ = writeln!(out, "{:<24} {:>12}", label, format_duration(*elapsed));
        }
        let _ = writeln!(out, "{:<24} {:>12}", "TOTAL", format_duration(total));
        out
    }
}

/// Renders a wall-clock duration with a unit that keeps 3-4 significant
/// digits.
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// One scheduler's measurement from the soak workload.
#[derive(Debug)]
struct SchedulerRun {
    kind: SchedulerKind,
    wall: Duration,
    stats: SimStats,
    /// Read-back values + violation count — compared across schedulers.
    observed: (Vec<u64>, usize),
}

/// Write-all/read-all soak of one design on one scheduler.
fn soak_on(design: Design, g: RfGeometry, kind: SchedulerKind, rounds: u32) -> SchedulerRun {
    let start = Instant::now();
    let mut rf = design.build(g);
    rf.set_scheduler(kind);
    let mask = if g.width() == 64 {
        u64::MAX
    } else {
        (1u64 << g.width()) - 1
    };
    let mut reads = Vec::new();
    for round in 0..rounds {
        for reg in 0..g.registers() {
            rf.write(
                reg,
                (0x9E37_79B9 ^ (u64::from(round) << 8) ^ reg as u64) & mask,
            );
        }
        for reg in 0..g.registers() {
            reads.push(rf.read(reg));
        }
    }
    SchedulerRun {
        kind,
        wall: start.elapsed(),
        stats: rf.sim_stats(),
        observed: (reads, rf.violations().len()),
    }
}

/// The scheduler comparison table: every registered design soaked on both
/// queue implementations, with a cross-scheduler equality assertion.
fn scheduler_section(smoke: bool) -> String {
    let g = if smoke {
        RfGeometry::paper_4x4()
    } else {
        RfGeometry::paper_16x16()
    };
    let rounds = if smoke { 1 } else { 2 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- event schedulers: write-all/read-all soak at {g}, {rounds} round(s) --"
    );
    let _ = writeln!(
        out,
        "{:<16} {:<16} {:>10} {:>10} {:>10} {:>12}",
        "design", "scheduler", "wall", "events", "peak q", "events/s"
    );
    for design in registry() {
        let runs: Vec<SchedulerRun> = SchedulerKind::ALL
            .iter()
            .map(|&kind| soak_on(design, g, kind, rounds))
            .collect();
        for pair in runs.windows(2) {
            assert_eq!(
                pair[0].observed, pair[1].observed,
                "{design}: {} and {} disagree on reads/violations",
                pair[0].kind, pair[1].kind
            );
            assert_eq!(
                pair[0].stats.events_processed, pair[1].stats.events_processed,
                "{design}: schedulers processed different event counts"
            );
        }
        for run in &runs {
            let throughput = run.stats.events_processed as f64 / run.wall.as_secs_f64();
            let _ = writeln!(
                out,
                "{:<16} {:<16} {:>10} {:>10} {:>10} {:>12.2e}",
                design.label(),
                run.kind.label(),
                format_duration(run.wall),
                run.stats.events_processed,
                run.stats.peak_queue_depth,
                throughput
            );
        }
    }
    let _ = writeln!(
        out,
        "check: both schedulers agree on every read, violation, and event count"
    );
    out
}

/// The thread-scaling table: the same Monte Carlo sweeps on 1..N worker
/// threads, with a bit-identity assertion against the sequential run.
fn threads_section(smoke: bool) -> String {
    let mut threads: Vec<usize> = vec![1, 2, 4];
    let avail = par::available_threads();
    if !threads.contains(&avail) {
        threads.push(avail);
        threads.sort_unstable();
    }

    let (jitter_g, jitter_trials) = if smoke {
        (RfGeometry::paper_4x4(), 8u32)
    } else {
        (RfGeometry::paper_32x32(), 24u32)
    };
    let (yield_g, yield_trials) = (RfGeometry::paper_4x4(), if smoke { 4u32 } else { 8 });
    let sigmas = [0.0, 0.05, 0.10];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- deterministic parallel Monte Carlo (default worker count {avail}) --"
    );
    let _ = writeln!(
        out,
        "workload A: jitter MC, {jitter_g} HiPerRF, {jitter_trials} trials"
    );
    let _ = writeln!(
        out,
        "workload B: yield curve, {yield_g} {}, {yield_trials} trials x {} sigmas",
        Design::HiPerRf.label(),
        sigmas.len()
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>9} {:>14} {:>9}   bit-identical",
        "threads", "A wall", "A speed", "B wall", "B speed"
    );

    let mut baseline: Option<(Duration, Duration)> = None;
    let mut reference = None;
    for &t in &threads {
        let start = Instant::now();
        let jitter = monte_carlo_jitter_with_threads(jitter_g, 6.0, jitter_trials, REPORT_SEED, t);
        let jitter_wall = start.elapsed();
        let start = Instant::now();
        let curve = yield_curve_with_threads(
            Design::HiPerRf,
            yield_g,
            &sigmas,
            yield_trials,
            REPORT_SEED,
            t,
        );
        let yield_wall = start.elapsed();

        match &reference {
            None => reference = Some((jitter, curve.clone())),
            Some((j0, c0)) => {
                assert_eq!(&jitter, j0, "jitter MC differs at {t} threads");
                assert_eq!(&curve, c0, "yield curve differs at {t} threads");
            }
        }
        let (j_base, y_base) = *baseline.get_or_insert((jitter_wall, yield_wall));
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>8.2}x {:>14} {:>8.2}x   yes",
            t,
            format_duration(jitter_wall),
            j_base.as_secs_f64() / jitter_wall.as_secs_f64(),
            format_duration(yield_wall),
            y_base.as_secs_f64() / yield_wall.as_secs_f64(),
        );
    }
    let _ = writeln!(
        out,
        "check: every thread count reproduced the 1-thread reports bit for bit"
    );
    out
}

/// The full `repro perf` report.
///
/// # Panics
///
/// Panics if the schedulers disagree on any observable, or if any thread
/// count fails to reproduce the sequential Monte Carlo reports exactly.
pub fn perf_report(smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Simulator-core performance (seed {REPORT_SEED:#x}) =="
    );
    let mut timer = PhaseTimer::new();
    let schedulers = timer.time("schedulers", || scheduler_section(smoke));
    let threads = timer.time("parallel MC", || threads_section(smoke));
    let _ = writeln!(out, "\n{schedulers}");
    let _ = writeln!(out, "{threads}");
    let _ = write!(out, "{}", timer.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_report_smoke_renders_and_asserts() {
        let r = perf_report(true);
        assert!(r.contains("event schedulers"), "{r}");
        assert!(r.contains("bit for bit"), "{r}");
        assert!(r.contains("wall-clock per phase"), "{r}");
    }

    #[test]
    fn phase_timer_renders_all_phases() {
        let mut t = PhaseTimer::new();
        let x = t.time("alpha", || 41 + 1);
        assert_eq!(x, 42);
        t.time("beta", || ());
        let table = t.render();
        assert!(table.contains("alpha") && table.contains("beta") && table.contains("TOTAL"));
        assert_eq!(t.phases().len(), 2);
    }
}
