//! Robustness reports: per-design margin tables, Monte Carlo yield
//! curves, and fault-injection demonstrations.
//!
//! These back the `repro margins` and `repro faults` subcommands. Every
//! report embeds its shape assertions so regenerating it *is* the check:
//!
//! * the clock-less HiPerRF write port shows a wider usable skew window
//!   than the clocked sampling reference (paper §II-D);
//! * behavioural bisection recovers the calibrated 53 ps NDROC re-arm and
//!   the HC-DRO separation constants;
//! * Monte Carlo yield is monotone non-increasing in σ for every design;
//! * fault injection is reproducible — the same seed renders the same
//!   report, byte for byte.

use std::fmt::Write as _;

use hiperrf::config::RfGeometry;
use hiperrf::demux::{build_demux, sel_head_start};
use hiperrf::harness::RegisterFile;
use hiperrf::hiperrf_rf::HiPerRf;
use hiperrf::margins::{
    clocked_reference_window, critical_sigma, design_skew_window, min_enable_spacing_ps,
    min_hc_clean_sep_ps, min_hc_train_sep_ps, soak_passes, yield_curve, Design,
};
use sfq_cells::timing::{HCDRO_HARD_SEP_PS, HCDRO_PULSE_SEP_PS, NDROC_REARM_PS, SYNC_TRACK_PS};
use sfq_cells::CircuitBuilder;
use sfq_sim::prelude::*;

/// Seed used by the deterministic margin/fault reports.
pub const REPORT_SEED: u64 = 0xC0FF_EE00;

/// Per-design margin table plus yield curves.
///
/// `smoke` trades sweep resolution and Monte Carlo depth for speed — the
/// CI fast path (`repro margins --smoke`).
///
/// # Panics
///
/// Panics if a paper-shape assertion fails (e.g. the clock-less port no
/// longer beats the clocked reference) — a regenerated report that prints
/// is a report that passed.
pub fn margins_table(smoke: bool) -> String {
    let g = RfGeometry::paper_4x4();
    let step = if smoke { 2.0 } else { 1.0 };
    let trials = if smoke { 3 } else { 8 };
    let sigmas: &[f64] = if smoke {
        &[0.0, 0.02, 0.05, 0.10]
    } else {
        &[0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30]
    };
    let levels: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3] };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Variation-aware margins (4x4, seed {REPORT_SEED:#x}) =="
    );

    // 1. Write-path skew windows, clock-less designs vs clocked reference.
    let _ = writeln!(
        out,
        "\n-- data-vs-enable skew windows (step {step:.0} ps) --"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>9} {:>9}",
        "write port", "min ps", "max ps", "width"
    );
    let mut windows = Vec::new();
    for design in Design::ALL {
        let w = design_skew_window(design, g, 12.0, step);
        let _ = writeln!(
            out,
            "{:<18} {:>+9.0} {:>+9.0} {:>9.0}",
            design.label(),
            w.min_ok_ps,
            w.max_ok_ps,
            w.width_ps()
        );
        windows.push((design, w));
    }
    let clocked = clocked_reference_window(12.0, step);
    let _ = writeln!(
        out,
        "{:<18} {:>+9.0} {:>+9.0} {:>9.0}   (SyncSampler aperture {:.0} ps)",
        "clocked reference",
        clocked.min_ok_ps,
        clocked.max_ok_ps,
        clocked.width_ps(),
        SYNC_TRACK_PS
    );
    let hiperrf_w = &windows
        .iter()
        .find(|(d, _)| *d == Design::HiPerRf)
        .expect("present")
        .1;
    assert!(
        hiperrf_w.width_ps() > clocked.width_ps(),
        "§II-D shape violated: clock-less HiPerRF window {hiperrf_w:?} \
         not wider than clocked reference {clocked:?}"
    );
    let _ = writeln!(
        out,
        "shape check: clock-less HiPerRF window {:.0} ps > clocked {:.0} ps (§II-D)",
        hiperrf_w.width_ps(),
        clocked.width_ps()
    );

    // 2. Behavioural recovery of the calibrated timing constants.
    let _ = writeln!(out, "\n-- calibrated constants recovered by bisection --");
    for &lv in levels {
        let m = min_enable_spacing_ps(lv);
        assert!(
            (m - NDROC_REARM_PS).abs() < 0.1,
            "NDROC re-arm mismatch at {lv} levels: {m} ps"
        );
        let _ = writeln!(
            out,
            "demux enable spacing, {lv} level(s): {m:>6.1} ps  (calibrated {NDROC_REARM_PS} ps)"
        );
    }
    let hard = min_hc_train_sep_ps();
    let clean = min_hc_clean_sep_ps();
    assert!(
        (hard - HCDRO_HARD_SEP_PS).abs() < 0.1,
        "HC hard threshold mismatch: {hard} ps"
    );
    assert!(
        (clean - HCDRO_PULSE_SEP_PS).abs() < 0.1,
        "HC design rule mismatch: {clean} ps"
    );
    let _ = writeln!(
        out,
        "hc-dro pulse loss below:     {hard:>6.1} ps  (hard threshold {HCDRO_HARD_SEP_PS} ps)"
    );
    let _ = writeln!(
        out,
        "hc-dro violation-free above: {clean:>6.1} ps  (design rule {HCDRO_PULSE_SEP_PS} ps)"
    );

    // 3. Critical delay variation and Monte Carlo yield per design.
    let _ = writeln!(
        out,
        "\n-- delay variation tolerance (Degrade policy soak) --"
    );
    for design in Design::ALL {
        let c = critical_sigma(design, g, REPORT_SEED);
        assert!(c > 0.0, "{design}: no variation tolerance at all");
        let _ = writeln!(
            out,
            "{:<18} critical sigma {:>5.1}%",
            design.label(),
            c * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\n-- Monte Carlo yield vs sigma ({trials} trials/design) --"
    );
    let mut header = format!("{:<18}", "design");
    for &s in sigmas {
        let _ = write!(header, " {:>7.0}%", s * 100.0);
    }
    let _ = writeln!(out, "{header}");
    for design in Design::ALL {
        let curve = yield_curve(design, g, sigmas, trials, REPORT_SEED);
        for pair in curve.points.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "{design}: yield not monotone non-increasing: {curve:?}"
            );
        }
        assert!(
            (curve.points[0].1 - 1.0).abs() < f64::EPSILON,
            "{design}: yield(0) != 1"
        );
        let mut row = format!("{:<18}", design.label());
        for &(_, y) in &curve.points {
            let _ = write!(row, " {:>7.0}%", y * 100.0);
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Drives one demux enable fire with `plan` installed and returns the
/// per-leaf pulse counts plus the simulator's bookkeeping.
fn demux_fault_run(
    policy: ViolationPolicy,
    plan: impl FnOnce(sfq_sim::netlist::Pin) -> FaultPlan,
) -> (Vec<usize>, usize, u64, (u64, u64)) {
    let mut b = CircuitBuilder::new();
    let d = build_demux(&mut b, 2);
    let mut sim = Simulator::new(b.finish());
    sim.set_violation_policy(policy);
    let probes: Vec<_> = d
        .outputs
        .iter()
        .enumerate()
        .map(|(i, &p)| sim.probe(p, format!("leaf{i}")))
        .collect();
    sim.set_fault_plan(plan(d.enable));
    let t = Time::from_ps(10.0);
    d.select_and_fire(&mut sim, 0, t, t + sel_head_start(2));
    sim.run();
    let leaves = probes.iter().map(|&p| sim.probe_trace(p).len()).collect();
    (
        leaves,
        sim.violations().len(),
        sim.degraded_drops(),
        sim.fault_counts(),
    )
}

/// Fault-injection demonstration report: pulse drops, duplications,
/// spurious pulses, and seeded delay variation, with the violation-policy
/// contrast (`Record` vs `Degrade`) made explicit.
///
/// # Panics
///
/// Panics if a reproducibility or policy-contrast assertion fails.
pub fn faults_report(smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fault injection (seed {REPORT_SEED:#x}) ==");

    // 1. Dropping the enable pulse: the selected leaf stays silent.
    let (leaves, _, _, counts) = demux_fault_run(ViolationPolicy::Record, |enable| {
        FaultPlan::new(REPORT_SEED).drop_nth(enable, 1)
    });
    assert_eq!(
        leaves,
        vec![0, 0, 0, 0],
        "dropped enable must reach no leaf"
    );
    let _ = writeln!(
        out,
        "\ndrop 1st enable delivery:      leaves {leaves:?}, faults applied {counts:?}"
    );

    // 2. Duplicating the enable 20 ps later: inside the 53 ps NDROC
    // re-arm. Under Record the duplicate routes again (2 pulses at the
    // leaf); under Degrade the violated NDROC destroys it — the demux
    // drops, it never misroutes.
    let dup =
        |enable| FaultPlan::new(REPORT_SEED).duplicate_nth(enable, 1, Duration::from_ps(20.0));
    let (rec_leaves, rec_viol, _, _) = demux_fault_run(ViolationPolicy::Record, dup);
    let (deg_leaves, deg_viol, deg_drops, _) = demux_fault_run(ViolationPolicy::Degrade, dup);
    assert_eq!(
        rec_leaves[0], 2,
        "Record: duplicate still routes: {rec_leaves:?}"
    );
    assert_eq!(
        deg_leaves,
        vec![1, 0, 0, 0],
        "Degrade: duplicate dropped, not misrouted"
    );
    assert!(
        rec_viol > 0 && deg_viol > 0,
        "re-arm violation must be recorded either way"
    );
    assert!(deg_drops > 0, "Degrade must account the destroyed pulse");
    let _ = writeln!(
        out,
        "duplicate enable +20 ps:       Record leaves {rec_leaves:?} ({rec_viol} violations)"
    );
    let _ = writeln!(
        out,
        "                               Degrade leaves {deg_leaves:?} ({deg_drops} degraded drop)"
    );

    // 3. A spurious enable long after the operation routes to the
    // still-selected leaf — the demux state-holding hazard (§III-A).
    let (sp_leaves, _, _, _) = demux_fault_run(ViolationPolicy::Record, |enable| {
        FaultPlan::new(REPORT_SEED).spurious(enable, Time::from_ps(400.0))
    });
    assert_eq!(
        sp_leaves,
        vec![2, 0, 0, 0],
        "spurious enable reuses the stale selection"
    );
    let _ = writeln!(
        out,
        "spurious enable at 400 ps:     leaves {sp_leaves:?} (stale selection reused)"
    );

    // 4. Seeded delay variation on a full HiPerRF soak.
    let g = RfGeometry::paper_4x4();
    let sigmas: &[f64] = if smoke {
        &[0.02, 0.10]
    } else {
        &[0.02, 0.05, 0.10, 0.20]
    };
    let _ = writeln!(
        out,
        "\n-- HiPerRF write-all/read-all soak under delay variation --"
    );
    for &sigma in sigmas {
        let passed = soak_passes(Design::HiPerRf, g, sigma, REPORT_SEED);
        let mut rf = HiPerRf::new(g);
        rf.set_violation_policy(ViolationPolicy::Degrade);
        rf.set_fault_plan(FaultPlan::new(REPORT_SEED).with_delay_sigma(sigma));
        rf.write(1, 0b1111);
        let got = rf.read(1);
        let _ = writeln!(
            out,
            "sigma {:>4.0}%: soak {}  (spot write 0b1111 -> {:#06b}, {} violations, {} drops)",
            sigma * 100.0,
            if passed { "PASS" } else { "FAIL" },
            got,
            rf.violations().len(),
            rf.degraded_drops()
        );
    }

    // 5. Reproducibility: the same seed must regenerate the same spot run.
    let spot = |seed: u64| {
        let mut rf = HiPerRf::new(g);
        rf.set_violation_policy(ViolationPolicy::Degrade);
        rf.set_fault_plan(FaultPlan::new(seed).with_delay_sigma(0.10));
        rf.write(1, 0b1111);
        (rf.read(1), rf.violations().to_vec(), rf.degraded_drops())
    };
    let a = spot(REPORT_SEED);
    let b = spot(REPORT_SEED);
    assert_eq!(
        a, b,
        "same seed must reproduce values, violations and drops exactly"
    );
    let _ = writeln!(
        out,
        "\nreproducibility: two seeded runs agree exactly ({} violations, {} drops)",
        a.1.len(),
        a.2
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_table_smoke_renders_and_asserts() {
        let t = margins_table(true);
        assert!(t.contains("clock-less HiPerRF window"), "{t}");
        assert!(t.contains("critical sigma"), "{t}");
    }

    #[test]
    fn faults_report_is_reproducible() {
        assert_eq!(faults_report(true), faults_report(true));
    }
}
