//! `repro lint` — the static-analysis matrix: every registered design,
//! linted with its own port context, one row per (design, geometry) and
//! one column per lint rule.
//!
//! The report is self-asserting: any error-severity finding on a registry
//! design aborts the run, so `repro lint --smoke` doubles as the CI gate
//! that keeps every shipped netlist DRC- and timing-clean.

use std::fmt::Write as _;

use hiperrf::config::RfGeometry;
use hiperrf::designs::registry;
use hiperrf::hashing::{design_digest, design_digest_raw, digest_hex};
use hiperrf::lint::lint_design;
use sfq_lint::{RuleId, Severity};

/// Column width for a rule: wide enough for its kebab-case id.
fn col(rule: RuleId) -> usize {
    rule.id().len().max(4)
}

/// Renders the per-design rule matrix, asserting every design is clean.
pub fn lint_matrix(smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Static lint matrix: netlist DRC + min/max-path timing =="
    );
    let sizes: &[RfGeometry] = if smoke {
        &[RfGeometry::paper_4x4()]
    } else {
        &[RfGeometry::paper_4x4(), RfGeometry::paper_16x16()]
    };

    let _ = write!(out, "{:<16} {:>12}", "design", "size");
    for rule in RuleId::ALL {
        let _ = write!(out, " {:>w$}", rule.id(), w = col(rule));
    }
    let _ = writeln!(
        out,
        " {:>7} {:>12} {:>16} {:>7}",
        "JJs", "worst slack", "typed=raw digest", "status"
    );

    for design in registry() {
        for &g in sizes {
            let report = lint_design(design, g);
            assert!(
                report.is_clean(),
                "{design} at {g} must lint clean:\n{report}"
            );
            let _ = write!(out, "{:<16} {:>12}", design.label(), format!("{g}"));
            for rule in RuleId::ALL {
                let _ = write!(out, " {:>w$}", report.count(rule), w = col(rule));
            }
            let worst = report.timing.as_ref().and_then(|t| t.worst_slack_ps);
            // The typed elaboration layer must reproduce the raw builders'
            // netlists exactly; the column doubles as the CI witness.
            let typed = design_digest(design, g);
            let raw = design_digest_raw(design, g);
            assert_eq!(
                typed,
                raw,
                "{design} at {g}: typed digest {} != raw digest {}",
                digest_hex(typed),
                digest_hex(raw)
            );
            let _ = writeln!(
                out,
                " {:>7} {:>12} {:>16} {:>7}",
                report.census.jj_total(),
                worst.map_or_else(|| "-".to_string(), |s| format!("{s:+.1} ps")),
                digest_hex(typed),
                "clean"
            );
        }
    }
    let _ = writeln!(
        out,
        "non-zero cycle / timing-slack counts are info-severity findings: clocked\n\
         feedback loops (HiPerRF loopback, shift rings) and pulse-train pins whose\n\
         within-operation spacing the dynamic checkers guard. Errors would abort\n\
         this report; the budget column cross-checks the lint census against\n\
         budget::structural_budget, and the typed=raw digest column asserts the\n\
         typed elaboration layer reproduces the raw builders' netlists exactly."
    );
    out
}

/// Worst info-severity detail lines for the full report: the actual
/// feedback witnesses and train pins on the flagship design.
pub fn lint_detail() -> String {
    let mut out = String::new();
    let report = lint_design(hiperrf::designs::Design::HiPerRf, RfGeometry::paper_4x4());
    let _ = writeln!(out, "-- HiPerRF 4x4, info-severity findings --");
    for finding in report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Info)
        .take(6)
    {
        let _ = writeln!(out, "  {finding}");
    }
    let infos = report.count_severity(Severity::Info);
    if infos > 6 {
        let _ = writeln!(out, "  ... and {} more", infos - 6);
    }
    out
}
