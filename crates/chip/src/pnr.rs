//! Place-and-route wire-delay model (paper §VI-C, Table IV, Fig. 15).
//!
//! The paper places and routes the designs with Cadence Innovus over
//! qPalace-extracted libraries and reduces the result to three statistics:
//! a mean gate-to-gate wire of **262 µm** of passive transmission line at
//! **1 ps / 100 µm** (2.62 ps per hop), readout paths of 15/19/17 hops for
//! the three designs at 32×32, and a loopback path whose **longest single
//! wire is only 4.6 ps** — much shorter than the visual appearance of
//! Fig. 9 suggests, and far below the 53 ps decoder cycle. This module
//! regenerates those statistics (the Fig. 15 stand-in is the segment-level
//! loopback report).

use hiperrf::config::RfGeometry;
use hiperrf::delay::{loopback_latency_ps, readout_delay_ps, RfDesign};
use hiperrf::designs::Design;
use sfq_cells::spec::{CellKind, Census};
use sfq_cells::timing::{MEAN_HOP_UM, PTL_HOP_PS, PTL_PS_PER_100UM};

/// The paper's longest loopback-path wire delay (ps, Fig. 15 discussion).
pub const PAPER_LONGEST_LOOPBACK_WIRE_PS: f64 = 4.6;

/// One placed wire segment of the loopback path.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSegment {
    /// Which connection the segment implements.
    pub name: &'static str,
    /// Routed length in µm.
    pub length_um: f64,
    /// PTL delay in ps.
    pub delay_ps: f64,
}

impl WireSegment {
    fn new(name: &'static str, length_um: f64) -> Self {
        WireSegment {
            name,
            length_um,
            delay_ps: length_um * PTL_PS_PER_100UM / 100.0,
        }
    }
}

/// The placed loopback path of HiPerRF (Fig. 15 stand-in): the segment
/// list from the LoopBuffer output back to the register write gates.
///
/// Segment lengths reflect the placement insight of the paper: although
/// the loopback *looks* long in the schematic, after placement the
/// LoopBuffer sits adjacent to the write-port mergers, and the longest
/// single wire (the fan to the far corner of the data broadcast tree) is
/// only 4.6 ps.
pub fn loopback_path(geometry: RfGeometry) -> Vec<WireSegment> {
    let n = geometry.registers() as f64;
    let tree_stages = n.log2() as usize;
    let mut segments = vec![
        WireSegment::new("loopbuffer -> output splitter", 150.0),
        WireSegment::new("output splitter -> loopback join merger", 210.0),
        WireSegment::new("join merger -> data tree root", 240.0),
    ];
    // Tree stages shrink geometrically toward the leaves except the first
    // span across the register array, which is the longest wire.
    let mut span = 460.0;
    for stage in 0..tree_stages {
        segments.push(match stage {
            0 => WireSegment::new("data tree span (longest wire)", span),
            _ => WireSegment::new("data tree stage", span),
        });
        span /= 1.6;
    }
    segments.push(WireSegment::new("tree leaf -> write gate", 120.0));
    segments
}

/// Total routed loopback wire delay (ps).
pub fn loopback_wire_delay_ps(geometry: RfGeometry) -> f64 {
    loopback_path(geometry).iter().map(|s| s.delay_ps).sum()
}

/// The longest single wire on the loopback path (ps).
pub fn longest_loopback_wire_ps(geometry: RfGeometry) -> f64 {
    loopback_path(geometry)
        .iter()
        .map(|s| s.delay_ps)
        .fold(0.0, f64::max)
}

/// Wire-hop count on the critical read path, *measured from the
/// elaborated netlist* rather than tabulated: the design is built, and its
/// hierarchical scopes are walked to recover the placed stage counts —
/// three hops per decoder level (NDROC, output-merger stage, inter-stage
/// link) with the decoder depth taken from the NDROC tree in the read
/// scope, plus the LoopBuffer latch and its output splitter, the HC-READ
/// counter depth, and the bank-output merge where the structure has them.
///
/// [`hiperrf::delay::readout_hops`] is the closed-form cross-check; tests
/// assert the two agree at every paper size.
pub fn structural_readout_hops(design: RfDesign, geometry: RfGeometry) -> u32 {
    let rf = Design::from_arch(design).build(geometry);
    let netlist = rf.netlist();
    let banked = netlist.top_scopes().contains(&"bank0");
    let (read, output) = if banked {
        ("bank0/read", "bank0/output")
    } else {
        ("read", "output")
    };
    // Decoder depth: a binary NDROC tree has 2^levels - 1 nodes.
    let ndrocs = Census::of_scope(netlist, read).count(CellKind::Ndroc);
    let levels = (ndrocs + 1).ilog2();
    let out = Census::of_scope(netlist, output);
    // LoopBuffer stage: the NDRO latch plus its placed output splitter.
    let loopbuffer_ndros = out.count(CellKind::Ndro);
    let loopbuffer = if loopbuffer_ndros > 0 { 2 } else { 0 };
    // HC-READ serial decode: counter-bit depth per column (the LoopBuffer
    // has one NDRO per column, so the ratio is the per-column depth).
    let counter_depth = out
        .count(CellKind::CounterBit)
        .checked_div(loopbuffer_ndros)
        .unwrap_or(0) as u32;
    3 * levels + loopbuffer + counter_depth + u32::from(banked)
}

/// A row of the Table IV report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Design.
    pub design: RfDesign,
    /// Readout delay without wires (Table III).
    pub readout_ps: f64,
    /// Readout delay with PTL wire delay.
    pub readout_with_wires_ps: f64,
    /// Loopback latency with wires (`None` for baseline).
    pub loopback_ps: Option<f64>,
}

/// Regenerates Table IV for a geometry, with the wire-hop counts measured
/// from the elaborated netlists ([`structural_readout_hops`]).
pub fn table4(geometry: RfGeometry) -> Vec<Table4Row> {
    [
        RfDesign::NdroBaseline,
        RfDesign::HiPerRf,
        RfDesign::DualBanked,
    ]
    .iter()
    .map(|&design| {
        let readout_ps = readout_delay_ps(design, geometry);
        let hops = structural_readout_hops(design, geometry);
        Table4Row {
            design,
            readout_ps,
            readout_with_wires_ps: readout_ps + f64::from(hops) * PTL_HOP_PS,
            loopback_ps: loopback_latency_ps(design, geometry),
        }
    })
    .collect()
}

/// Mean wire statistics from the placement model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireStats {
    /// Mean gate-to-gate wire length (µm).
    pub mean_hop_um: f64,
    /// Mean per-hop delay (ps).
    pub mean_hop_ps: f64,
}

/// The paper's placement statistics.
pub fn wire_stats() -> WireStats {
    WireStats {
        mean_hop_um: MEAN_HOP_UM,
        mean_hop_ps: MEAN_HOP_UM * PTL_PS_PER_100UM / 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_loopback_wire_matches_paper() {
        let longest = longest_loopback_wire_ps(RfGeometry::paper_32x32());
        assert!(
            (longest - PAPER_LONGEST_LOOPBACK_WIRE_PS).abs() < 1e-9,
            "{longest}"
        );
    }

    #[test]
    fn loopback_wires_are_far_below_decoder_latency() {
        // Paper: "The longest delay on the LoopBack path is only 4.6ps,
        // which is much smaller than the decoder latencies (53ps)."
        for seg in loopback_path(RfGeometry::paper_32x32()) {
            assert!(seg.delay_ps < 53.0, "{seg:?}");
        }
    }

    #[test]
    fn mean_hop_is_262um() {
        let s = wire_stats();
        assert_eq!(s.mean_hop_um, 262.0);
        assert!((s.mean_hop_ps - 2.62).abs() < 1e-12);
    }

    #[test]
    fn table4_has_three_rows_with_ordering() {
        let rows = table4(RfGeometry::paper_32x32());
        assert_eq!(rows.len(), 3);
        assert!(rows[0].loopback_ps.is_none());
        assert!(rows[1].loopback_ps.is_some());
        // Wires always add delay.
        for r in &rows {
            assert!(r.readout_with_wires_ps > r.readout_ps);
        }
    }

    #[test]
    fn smaller_files_have_shorter_loopback_trees() {
        let small = loopback_wire_delay_ps(RfGeometry::paper_4x4());
        let large = loopback_wire_delay_ps(RfGeometry::paper_32x32());
        assert!(small < large);
    }

    #[test]
    fn structural_hops_match_closed_form_everywhere() {
        for g in RfGeometry::paper_sizes() {
            for d in [
                RfDesign::NdroBaseline,
                RfDesign::HiPerRf,
                RfDesign::DualBanked,
            ] {
                assert_eq!(
                    structural_readout_hops(d, g),
                    hiperrf::delay::readout_hops(d, g.demux_levels()),
                    "{d:?} at {g}"
                );
            }
        }
    }

    #[test]
    fn structural_hops_give_paper_table4_readout() {
        // 15 / 19 / 17 hops at 32×32 per the paper's placement discussion,
        // recovered from the netlists and matching Table IV exactly.
        let g = RfGeometry::paper_32x32();
        let hops: Vec<u32> = [
            RfDesign::NdroBaseline,
            RfDesign::HiPerRf,
            RfDesign::DualBanked,
        ]
        .iter()
        .map(|&d| structural_readout_hops(d, g))
        .collect();
        assert_eq!(hops, vec![15, 19, 17]);
        for (row, want) in table4(g).iter().zip(hiperrf::delay::paper::READOUT_WIRES) {
            assert!(
                (row.readout_with_wires_ps - want).abs() < 0.1,
                "{:?}: got {}, want {want}",
                row.design,
                row.readout_with_wires_ps
            );
        }
    }
}
