//! Derived chip-level metrics: die area from JJ density, and static
//! energy per workload.
//!
//! The paper's introduction cites a projected density of ~10⁷ JJ/cm² for
//! SFQ circuits, and its Table II gives static power; combining them with
//! the pipeline simulator's run times yields two numbers the paper implies
//! but never prints: the register file's die-area saving and the *net
//! energy* effect of HiPerRF — it burns less static power but runs ~10%
//! longer, so the win depends on the register file's share of chip power.

use hiperrf::budget::structural_budget;
use hiperrf::config::RfGeometry;
use hiperrf::delay::RfDesign;
use hiperrf::designs::Design;

use crate::sodor::rest_of_core;

/// Projected SFQ integration density (JJ per cm², paper §I).
pub const JJ_PER_CM2: f64 = 1.0e7;

/// Die area for a JJ count at the projected density, in mm².
pub fn area_mm2(jj: u64) -> f64 {
    jj as f64 / JJ_PER_CM2 * 100.0
}

/// The register file's static power for a design at 32×32 (µW), summed
/// over the cells of the elaborated netlist.
pub fn rf_static_power_uw(design: RfDesign) -> f64 {
    structural_budget(Design::from_arch(design), RfGeometry::paper_32x32()).static_power_uw()
}

/// Whole-chip static power (µW): rest-of-core at the library's mean
/// per-JJ bias power plus the design-specific register file.
pub fn chip_static_power_uw(design: RfDesign) -> f64 {
    // Mean bias power of the non-RF logic, per JJ: clocked-gate-dominated
    // logic sits near 0.2 µW/JJ in our calibrated library.
    const CORE_UW_PER_JJ: f64 = 0.2;
    let rest: u64 = rest_of_core().iter().map(|c| c.jj).sum();
    rest as f64 * CORE_UW_PER_JJ + rf_static_power_uw(design)
}

/// Static energy of a run: chip power × wall-clock time, in femtojoules.
pub fn static_energy_fj(design: RfDesign, wall_ns: f64) -> f64 {
    // µW × ns = fJ.
    chip_static_power_uw(design) * wall_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_area_saving_matches_jj_saving() {
        let g = RfGeometry::paper_32x32();
        let base = area_mm2(structural_budget(Design::NdroBaseline, g).jj_total());
        let hi = area_mm2(structural_budget(Design::HiPerRf, g).jj_total());
        // ~0.37 mm² -> ~0.16 mm² at 10^7 JJ/cm².
        assert!(base > 0.3 && base < 0.45, "{base}");
        assert!(hi / base < 0.5);
    }

    #[test]
    fn structural_power_matches_closed_form() {
        let g = RfGeometry::paper_32x32();
        for d in [
            RfDesign::NdroBaseline,
            RfDesign::HiPerRf,
            RfDesign::DualBanked,
        ] {
            let closed =
                hiperrf::budget::closed_form_budget(Design::from_arch(d), g).static_power_uw();
            assert!((rf_static_power_uw(d) - closed).abs() < 1e-9, "{d:?}");
        }
    }

    #[test]
    fn chip_power_ordering() {
        let base = chip_static_power_uw(RfDesign::NdroBaseline);
        let hi = chip_static_power_uw(RfDesign::HiPerRf);
        let dual = chip_static_power_uw(RfDesign::DualBanked);
        assert!(hi < dual && dual < base, "{hi} {dual} {base}");
    }

    #[test]
    fn energy_scales_with_time() {
        let e1 = static_energy_fj(RfDesign::HiPerRf, 100.0);
        let e2 = static_energy_fj(RfDesign::HiPerRf, 200.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hiperrf_wins_energy_despite_longer_runtime() {
        // The RF power saving (~3.4 mW of ~28 mW chip power) outweighs the
        // ~11% runtime increase.
        let base_e = static_energy_fj(RfDesign::NdroBaseline, 100.0);
        let hi_e = static_energy_fj(RfDesign::HiPerRf, 111.0);
        assert!(hi_e < base_e, "hi {hi_e} vs base {base_e}");
    }
}
