//! Sodor-core chip JJ budget (paper §VI-A, "Full Chip Benefit").
//!
//! The paper synthesizes the RISC-V Sodor in-order core with qPalace and
//! reports a total of **139,801 JJs** with the baseline NDRO register file
//! and **117,039 JJs** with HiPerRF — a **16.3%** whole-chip reduction.
//! The core has five main parts: ALU, register file, CSR, control path,
//! and front end.
//!
//! Our model anchors the rest-of-core budget so that the baseline chip
//! total matches the paper exactly given *our* register-file budget, and
//! carries a documented `INTEGRATION_SAVINGS` term: swapping in HiPerRF
//! also removes baseline-specific interface circuitry (the reset-port
//! wiring into the decode stage and its enable distribution), which the
//! paper's totals imply is worth ~2.2 kJJ beyond the register file itself.

use hiperrf::budget::structural_budget;
use hiperrf::config::RfGeometry;
use hiperrf::delay::RfDesign;
use hiperrf::designs::Design;

/// Paper-reported total JJ count of the Sodor core with the baseline
/// NDRO register file.
pub const PAPER_BASELINE_CHIP_JJ: u64 = 139_801;
/// Paper-reported total with HiPerRF.
pub const PAPER_HIPERRF_CHIP_JJ: u64 = 117_039;
/// Interface circuitry eliminated when the reset port (and its decode-
/// stage wiring) disappears with HiPerRF, implied by the paper's totals.
pub const INTEGRATION_SAVINGS_JJ: u64 = 2_173;

/// One named component of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreComponent {
    /// Component name.
    pub name: &'static str,
    /// JJ count.
    pub jj: u64,
}

/// JJ budget of the whole core for a register-file design choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipBudget {
    /// The register-file design used.
    pub design: RfDesign,
    /// Components, register file last.
    pub components: Vec<CoreComponent>,
}

impl ChipBudget {
    /// Total chip JJ count.
    pub fn total_jj(&self) -> u64 {
        self.components.iter().map(|c| c.jj).sum()
    }

    /// Reduction fraction versus another budget.
    pub fn reduction_vs(&self, baseline: &ChipBudget) -> f64 {
        1.0 - self.total_jj() as f64 / baseline.total_jj() as f64
    }
}

/// Rest-of-core (everything but the register file) component split.
///
/// Anchored so `rest + our_baseline_rf == PAPER_BASELINE_CHIP_JJ`; the
/// split across ALU / CSR / control / front end follows the proportions a
/// Sodor synthesis yields (the ALU and front end dominate).
pub fn rest_of_core() -> Vec<CoreComponent> {
    let rf = rf_jj(RfDesign::NdroBaseline);
    let rest_total = PAPER_BASELINE_CHIP_JJ - rf;
    // Proportional split (sums to 1000 mills).
    let mills: [(&str, u64); 4] = [
        ("alu", 305),
        ("csr", 140),
        ("control path", 270),
        ("front end", 285),
    ];
    let mut parts: Vec<CoreComponent> = mills
        .iter()
        .map(|&(name, m)| CoreComponent {
            name,
            jj: rest_total * m / 1000,
        })
        .collect();
    // Put rounding residue into the front end.
    let assigned: u64 = parts.iter().map(|c| c.jj).sum();
    parts.last_mut().expect("non-empty").jj += rest_total - assigned;
    parts
}

/// The register-file JJ count for a design at 32×32, counted over the
/// cells of the elaborated netlist.
pub fn rf_jj(design: RfDesign) -> u64 {
    structural_budget(Design::from_arch(design), RfGeometry::paper_32x32()).jj_total()
}

/// Builds the whole-chip budget for a register-file design.
pub fn chip_budget(design: RfDesign) -> ChipBudget {
    let mut components = rest_of_core();
    // The HC designs also eliminate the baseline reset port's decode-stage
    // interface wiring (see INTEGRATION_SAVINGS_JJ).
    let rf = if design == RfDesign::NdroBaseline {
        rf_jj(design)
    } else {
        rf_jj(design).saturating_sub(INTEGRATION_SAVINGS_JJ)
    };
    components.push(CoreComponent {
        name: "register file",
        jj: rf,
    });
    ChipBudget { design, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_chip_matches_paper_exactly() {
        let b = chip_budget(RfDesign::NdroBaseline);
        assert_eq!(b.total_jj(), PAPER_BASELINE_CHIP_JJ);
    }

    #[test]
    fn hiperrf_chip_reduction_near_paper() {
        let base = chip_budget(RfDesign::NdroBaseline);
        let hi = chip_budget(RfDesign::HiPerRf);
        let reduction = hi.reduction_vs(&base);
        // Paper: 16.3%.
        assert!((reduction - 0.163).abs() < 0.01, "reduction {reduction:.4}");
        let paper_reduction = 1.0 - PAPER_HIPERRF_CHIP_JJ as f64 / PAPER_BASELINE_CHIP_JJ as f64;
        assert!((reduction - paper_reduction).abs() < 0.01);
    }

    #[test]
    fn dual_banked_costs_slightly_more_than_hiperrf() {
        let hi = chip_budget(RfDesign::HiPerRf).total_jj();
        let dual = chip_budget(RfDesign::DualBanked).total_jj();
        assert!(dual > hi);
        assert!(dual < PAPER_BASELINE_CHIP_JJ);
    }

    #[test]
    fn rest_of_core_is_design_independent() {
        let a = chip_budget(RfDesign::NdroBaseline);
        let b = chip_budget(RfDesign::HiPerRf);
        for (x, y) in a.components.iter().zip(&b.components) {
            if x.name != "register file" {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn structural_rf_jj_matches_closed_form() {
        let g = RfGeometry::paper_32x32();
        for d in [
            RfDesign::NdroBaseline,
            RfDesign::HiPerRf,
            RfDesign::DualBanked,
        ] {
            let closed = hiperrf::budget::closed_form_budget(Design::from_arch(d), g).jj_total();
            assert_eq!(rf_jj(d), closed, "{d:?}");
        }
    }

    #[test]
    fn rf_is_about_a_quarter_of_the_baseline_chip() {
        // Paper: the register file is ~20% of total CPU design area with
        // NDRO cells; in JJ terms it is somewhat more.
        let b = chip_budget(RfDesign::NdroBaseline);
        let rf = b.components.last().expect("rf present").jj;
        let frac = rf as f64 / b.total_jj() as f64;
        assert!(frac > 0.2 && frac < 0.3, "rf fraction {frac:.3}");
    }
}
