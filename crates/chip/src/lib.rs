//! # sfq-chip — Sodor-core chip budget and place-and-route models
//!
//! The whole-chip side of the HiPerRF evaluation (paper §VI-A full-chip
//! benefit and §VI-C wire-delay impact):
//!
//! * [`sodor`] — the five-component Sodor core JJ budget, regenerating the
//!   paper's 139,801 → 117,039 JJ (−16.3%) headline when HiPerRF replaces
//!   the baseline register file;
//! * [`pnr`] — the placement statistics (262 µm mean PTL hop, 2.62 ps),
//!   Table IV with wire delays, and the Fig. 15 stand-in loopback-path
//!   report (longest loopback wire 4.6 ps).

pub mod energy;
pub mod pnr;
pub mod sodor;

pub use pnr::{loopback_path, table4, wire_stats};
pub use sodor::{chip_budget, ChipBudget};
