//! Structured lint results: rule ids, severities, findings, and the
//! per-netlist report with its census and timing summary.

use std::fmt;

use sfq_cells::Census;

/// Stable machine-readable identifiers for every lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// Component kind without a pin profile.
    UnknownKind,
    /// Wire endpoint outside the cell's pin range.
    PinRange,
    /// Parallel wires between the same pin pair.
    DupWire,
    /// Output pin driving more than one sink.
    Fanout,
    /// Input pin driven by more than one source.
    Fanin,
    /// Merger without exactly two driven inputs.
    MergerInputs,
    /// Input pin neither wired nor declared external.
    DanglingInput,
    /// Storage cell with no driven input at all.
    UndrivenStorage,
    /// Component unreachable from every external input.
    Unreachable,
    /// Output pin driving nothing without being a declared external
    /// output — its pulses silently disappear.
    DroppedWire,
    /// Feedback loop (witness path + suggested cuts).
    Cycle,
    /// Static separation slack against a re-arm/separation window.
    TimingSlack,
    /// Lint-walk census diverging from the structural budget.
    Budget,
}

impl RuleId {
    /// Every rule, in the order the engine runs them — the column order
    /// of the `repro lint` matrix.
    pub const ALL: [RuleId; 13] = [
        RuleId::UnknownKind,
        RuleId::PinRange,
        RuleId::DupWire,
        RuleId::Fanout,
        RuleId::Fanin,
        RuleId::MergerInputs,
        RuleId::DanglingInput,
        RuleId::UndrivenStorage,
        RuleId::Unreachable,
        RuleId::DroppedWire,
        RuleId::Cycle,
        RuleId::TimingSlack,
        RuleId::Budget,
    ];

    /// The kebab-case rule id used in reports and tests.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnknownKind => "unknown-kind",
            RuleId::PinRange => "pin-range",
            RuleId::DupWire => "dup-wire",
            RuleId::Fanout => "fanout",
            RuleId::Fanin => "fanin",
            RuleId::MergerInputs => "merger-inputs",
            RuleId::DanglingInput => "dangling-input",
            RuleId::UndrivenStorage => "undriven-storage",
            RuleId::Unreachable => "unreachable",
            RuleId::DroppedWire => "dropped-wire",
            RuleId::Cycle => "cycle",
            RuleId::TimingSlack => "timing-slack",
            RuleId::Budget => "budget",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How serious a finding is. Only errors gate simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected-but-noteworthy structure (clocked feedback, train pins).
    Info,
    /// Suspicious but not simulation-blocking.
    Warning,
    /// A defect; the FailFast gate refuses to simulate with these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One lint diagnosis.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// How serious it is.
    pub severity: Severity,
    /// Hierarchical component path via the scope tree (`bank0/reg3/hcdro2`),
    /// empty for netlist-global findings.
    pub path: String,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub fix_hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = if self.path.is_empty() {
            String::new()
        } else {
            format!(" at {}", self.path)
        };
        write!(
            f,
            "[{}] {}{}: {} (fix: {})",
            self.severity, self.rule, at, self.message, self.fix_hint
        )
    }
}

/// Summary of the separation-slack pass.
#[derive(Debug, Clone)]
pub struct TimingSummary {
    /// Issue period the netlist was analysed against (ps).
    pub issue_period_ps: f64,
    /// Number of guarded pins with a defined arrival.
    pub checked_pins: usize,
    /// The smallest slack over all checked pins (ps), if any pin was
    /// reachable.
    pub worst_slack_ps: Option<f64>,
    /// `path.PIN` of the worst-slack pin.
    pub worst_pin: String,
}

/// The structured result of linting one netlist.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Every finding, in rule order.
    pub findings: Vec<Finding>,
    /// Cell census gathered during the lint walk (the budget cross-check
    /// input).
    pub census: Census,
    /// Components visited.
    pub components: usize,
    /// Wires visited.
    pub wires: usize,
    /// Separation-slack summary, when a [`crate::TimingSpec`] was given
    /// and the trigger graph was analysable.
    pub timing: Option<TimingSummary>,
}

impl LintReport {
    /// Findings of one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Findings at one severity.
    pub fn count_severity(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Error-severity findings (the FailFast gate input).
    pub fn errors(&self) -> usize {
        self.count_severity(Severity::Error)
    }

    /// `true` when no error-severity finding is present. Warnings and
    /// infos (clocked feedback, train pins) do not block simulation.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// The distinct rule ids that fired, in [`RuleId::ALL`] order.
    pub fn fired_rules(&self) -> Vec<RuleId> {
        RuleId::ALL
            .into_iter()
            .filter(|&r| self.count(r) > 0)
            .collect()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint: {} components, {} wires, {} JJ, {:.2} µW — {} error(s), {} warning(s), {} info(s)",
            self.components,
            self.wires,
            self.census.jj_total(),
            self.census.static_power_uw(),
            self.errors(),
            self.count_severity(Severity::Warning),
            self.count_severity(Severity::Info),
        )?;
        if let Some(t) = &self.timing {
            match t.worst_slack_ps {
                Some(s) => writeln!(
                    f,
                    "timing: issue period {:.1} ps, {} guarded pins, worst slack {:+.1} ps at {}",
                    t.issue_period_ps, t.checked_pins, s, t.worst_pin
                )?,
                None => writeln!(
                    f,
                    "timing: issue period {:.1} ps, no guarded pin reachable",
                    t.issue_period_ps
                )?,
            }
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}
