//! The rule engine: one pass over the wire set, one reachability walk,
//! one cycle enumeration, and one min/max trigger-aware STA pass.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use sfq_cells::sta::{trigger_arrival_times, trigger_pins, Sense};
use sfq_cells::{sta, Census};
use sfq_sim::netlist::{ComponentId, Netlist, Pin};

use crate::pins::{input_pin_name, profile_of, separation_windows, PinProfile};
use crate::report::{Finding, LintReport, RuleId, Severity, TimingSummary};
use crate::LintPorts;

pub(crate) fn run(netlist: &Netlist, ports: &LintPorts) -> LintReport {
    let ids: Vec<ComponentId> = netlist.iter().map(|(id, _, _)| id).collect();
    let profiles: Vec<Option<&'static PinProfile>> = ids
        .iter()
        .map(|&id| profile_of(netlist.component(id).kind()))
        .collect();
    let external: BTreeSet<Pin> = ports.external_inputs.iter().copied().collect();
    let mut findings = Vec::new();

    // unknown-kind: cells the profile table does not know. All pin-indexed
    // rules skip them; everything graph-shaped still applies.
    for (i, &id) in ids.iter().enumerate() {
        if profiles[i].is_none() {
            findings.push(Finding {
                rule: RuleId::UnknownKind,
                severity: Severity::Warning,
                path: netlist.label(id).to_string(),
                message: format!(
                    "component kind \"{}\" has no pin profile",
                    netlist.component(id).kind()
                ),
                fix_hint: "add the cell to the sfq-lint pin-profile table".into(),
            });
        }
    }

    // One deterministic pass over the wire set builds every adjacency the
    // structural rules need.
    let mut wires: Vec<(Pin, Pin, f64)> = netlist
        .wires()
        .map(|w| (w.from, w.to, w.delay.as_ps()))
        .collect();
    wires.sort_by_key(|&(from, to, _)| (from, to));
    // Sinks per output pin / sources (with wire delay) per input pin.
    let mut sinks: BTreeMap<Pin, Vec<Pin>> = BTreeMap::new();
    let mut sources: BTreeMap<Pin, Vec<(Pin, f64)>> = BTreeMap::new();
    for &(from, to, delay) in &wires {
        sinks.entry(from).or_default().push(to);
        sources.entry(to).or_default().push((from, delay));
    }

    // pin-range: both endpoints must exist on their cells.
    for &(from, to, _) in &wires {
        if let Some(p) = profiles[from.component.index()] {
            if from.index >= p.outputs {
                findings.push(Finding {
                    rule: RuleId::PinRange,
                    severity: Severity::Error,
                    path: netlist.label(from.component).to_string(),
                    message: format!(
                        "wire driven from output pin {} but a {} has only {} output pin(s)",
                        from.index, p.kind, p.outputs
                    ),
                    fix_hint: "rewire to an existing output pin".into(),
                });
            }
        }
        if let Some(p) = profiles[to.component.index()] {
            if to.index >= p.inputs {
                findings.push(Finding {
                    rule: RuleId::PinRange,
                    severity: Severity::Error,
                    path: netlist.label(to.component).to_string(),
                    message: format!(
                        "wire lands on input pin {} but a {} has only {} input pin(s)",
                        to.index, p.kind, p.inputs
                    ),
                    fix_hint: "rewire to an existing input pin".into(),
                });
            }
        }
    }

    // dup-wire: parallel wires between the same pin pair double every
    // pulse regardless of their delays.
    for (to, srcs) in &sources {
        let mut seen: BTreeMap<Pin, usize> = BTreeMap::new();
        for &(from, _) in srcs {
            *seen.entry(from).or_default() += 1;
        }
        for (from, count) in seen {
            if count > 1 {
                findings.push(Finding {
                    rule: RuleId::DupWire,
                    severity: Severity::Error,
                    path: netlist.label(to.component).to_string(),
                    message: format!(
                        "{count} parallel wires from {} pin {} land on input pin {}",
                        netlist.label(from.component),
                        from.index,
                        to.index
                    ),
                    fix_hint: "delete the redundant wire".into(),
                });
            }
        }
    }

    // fanout: an SFQ pulse cannot drive two loads; fan-out needs explicit
    // splitter cells (which provide one sink per output pin).
    for (from, tos) in &sinks {
        let distinct: BTreeSet<Pin> = tos.iter().copied().collect();
        if distinct.len() > 1 {
            let kind = netlist.component(from.component).kind();
            findings.push(Finding {
                rule: RuleId::Fanout,
                severity: Severity::Error,
                path: netlist.label(from.component).to_string(),
                message: format!(
                    "output pin {} drives {} sinks (max 1 per output pin)",
                    from.index,
                    distinct.len()
                ),
                fix_hint: if kind == "splitter" {
                    "cascade another splitter".into()
                } else {
                    "insert a splitter (tree)".into()
                },
            });
        }
    }

    // fanin: reconvergent wires must meet in a merger, never on one pin.
    for (to, srcs) in &sources {
        let distinct: BTreeSet<Pin> = srcs.iter().map(|&(from, _)| from).collect();
        if distinct.len() > 1 {
            findings.push(Finding {
                rule: RuleId::Fanin,
                severity: Severity::Error,
                path: netlist.label(to.component).to_string(),
                message: format!(
                    "input pin {} ({}) is driven by {} sources",
                    to.index,
                    input_pin_name(netlist.component(to.component).kind(), to.index),
                    distinct.len()
                ),
                fix_hint: "insert a merger".into(),
            });
        }
    }

    // Driven-input view per component: wired or declared external.
    let driven_inputs = |i: usize| -> BTreeSet<u8> {
        let id = ids[i];
        let inputs = profiles[i].map_or(0, |p| p.inputs);
        (0..inputs)
            .filter(|&pin| {
                let p = Pin::new(id, pin);
                sources.contains_key(&p) || external.contains(&p)
            })
            .collect()
    };

    // undriven-storage: a storage cell nothing ever pulses. Flagged cells
    // are excluded from dangling-input/unreachable so each defect maps to
    // exactly one rule.
    let mut undriven_storage: HashSet<usize> = HashSet::new();
    for (i, &id) in ids.iter().enumerate() {
        if profiles[i].is_none() || netlist.component(id).stored().is_none() {
            continue;
        }
        if driven_inputs(i).is_empty() {
            undriven_storage.insert(i);
            findings.push(Finding {
                rule: RuleId::UndrivenStorage,
                severity: Severity::Error,
                path: netlist.label(id).to_string(),
                message: format!(
                    "storage cell ({}) has no driven or external input",
                    netlist.component(id).kind()
                ),
                fix_hint: "wire its data/clock pins or remove the cell".into(),
            });
        }
    }

    // merger-inputs / dangling-input: mergers get the dedicated rule
    // (their whole contract is "exactly two driven inputs"); every other
    // profiled cell must have each input pin wired or declared external.
    for (i, &id) in ids.iter().enumerate() {
        let Some(p) = profiles[i] else { continue };
        if undriven_storage.contains(&i) {
            continue;
        }
        let driven = driven_inputs(i);
        if p.kind == "merger" {
            if driven.len() != 2 {
                findings.push(Finding {
                    rule: RuleId::MergerInputs,
                    severity: Severity::Error,
                    path: netlist.label(id).to_string(),
                    message: format!(
                        "merger has {} driven input(s), needs exactly 2",
                        driven.len()
                    ),
                    fix_hint: "drive both IN_A and IN_B, or replace the merger with a wire".into(),
                });
            }
            continue;
        }
        for pin in 0..p.inputs {
            if !driven.contains(&pin) {
                findings.push(Finding {
                    rule: RuleId::DanglingInput,
                    severity: Severity::Error,
                    path: netlist.label(id).to_string(),
                    message: format!(
                        "input pin {} ({}) is neither wired nor a declared external port",
                        pin,
                        input_pin_name(p.kind, pin)
                    ),
                    fix_hint: "wire the pin or declare it in LintPorts::external_inputs".into(),
                });
            }
        }
    }

    // unreachable: breadth-first from every component owning an external
    // input, across all wires (any input reaches all outputs).
    let mut reachable = vec![false; ids.len()];
    let mut queue: Vec<usize> = external
        .iter()
        .map(|p| p.component.index())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    for &i in &queue {
        reachable[i] = true;
    }
    while let Some(i) = queue.pop() {
        for out_pin in sinks.range(Pin::new(ids[i], 0)..=Pin::new(ids[i], u8::MAX)) {
            for to in out_pin.1 {
                let j = to.component.index();
                if !reachable[j] {
                    reachable[j] = true;
                    queue.push(j);
                }
            }
        }
    }
    for (i, &id) in ids.iter().enumerate() {
        if !reachable[i] && !undriven_storage.contains(&i) {
            findings.push(Finding {
                rule: RuleId::Unreachable,
                severity: Severity::Error,
                path: netlist.label(id).to_string(),
                message: "no external input can ever pulse this component".into(),
                fix_hint: "connect it to a driven region or declare its inputs external".into(),
            });
        }
    }

    // dropped-wire: an output pin driving nothing that was not declared an
    // external output — its pulses silently disappear. This is the static
    // backstop of the typed builder's endpoint ledger. Components already
    // carrying a structural error are skipped so each defect keeps mapping
    // to exactly one rule (an isolated cell is "unreachable", not also
    // "dropping" every output).
    let external_outputs: BTreeSet<Pin> = ports.external_outputs.iter().copied().collect();
    let flagged: HashSet<String> = findings
        .iter()
        .filter(|f| f.severity == Severity::Error && !f.path.is_empty())
        .map(|f| f.path.clone())
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let Some(p) = profiles[i] else { continue };
        if flagged.contains(netlist.label(id)) {
            continue;
        }
        for pin in 0..p.outputs {
            let out = Pin::new(id, pin);
            if sinks.contains_key(&out) || external_outputs.contains(&out) {
                continue;
            }
            findings.push(Finding {
                rule: RuleId::DroppedWire,
                severity: Severity::Error,
                path: netlist.label(id).to_string(),
                message: format!(
                    "output pin {pin} drives nothing and is not a declared external \
                     output — its pulses would silently disappear"
                ),
                fix_hint: "consume the output or declare it in LintPorts::external_outputs".into(),
            });
        }
    }

    // cycle: every feedback loop gets a witness path. Loops in which each
    // hop enters a *trigger* pin circulate pulses unconditionally (an
    // oscillator — error); loops interrupted by a clocked element are the
    // designed feedback of this paper (loopback, shift rings — info).
    let cycles = sta::find_cycles(netlist, &HashSet::new());
    for cycle in &cycles {
        let free_running = cycle.iter().enumerate().all(|(k, &a)| {
            let b = cycle[(k + 1) % cycle.len()];
            (0..4u8).any(|out_pin| {
                netlist.fanout(Pin::new(a, out_pin)).iter().any(|&(to, _)| {
                    to.component == b
                        && trigger_pins(netlist.component(b).kind()).contains(&to.index)
                })
            })
        });
        let witness = cycle
            .iter()
            .map(|&id| netlist.label(id))
            .collect::<Vec<_>>()
            .join(" -> ");
        let cuts = sta::suggest_cuts(netlist, cycle)
            .iter()
            .map(|&id| netlist.label(id))
            .collect::<Vec<_>>()
            .join(", ");
        findings.push(Finding {
            rule: RuleId::Cycle,
            severity: if free_running {
                Severity::Error
            } else {
                Severity::Info
            },
            path: netlist.label(cycle[0]).to_string(),
            message: if free_running {
                format!("free-running pulse loop [{witness}]")
            } else {
                format!("clocked feedback loop [{witness}]")
            },
            fix_hint: if free_running {
                "break the loop or insert a clocked cell".into()
            } else {
                format!("for all-pin STA, cut at: {cuts}")
            },
        });
    }

    // timing-slack: min/max trigger-aware STA against the separation
    // windows (see the crate docs for the slack model).
    let mut timing = None;
    if let Some(spec) = &ports.timing {
        timing = timing_pass(netlist, &ids, spec, &sources, &mut findings);
    }

    LintReport {
        findings,
        census: Census::of(netlist),
        components: netlist.component_count(),
        wires: netlist.wire_count(),
        timing,
    }
}

fn timing_pass(
    netlist: &Netlist,
    ids: &[ComponentId],
    spec: &crate::TimingSpec,
    sources: &BTreeMap<Pin, Vec<(Pin, f64)>>,
    findings: &mut Vec<Finding>,
) -> Option<TimingSummary> {
    let no_cuts = HashSet::new();
    // A trigger-graph cycle already produced a `cycle` error above; the
    // slack pass is undefined then.
    let earliest = trigger_arrival_times(netlist, &spec.starts, &no_cuts, Sense::Earliest).ok()?;
    let latest = trigger_arrival_times(netlist, &spec.starts, &no_cuts, Sense::Latest).ok()?;
    let starts: BTreeSet<Pin> = spec.starts.iter().copied().collect();

    let mut checked_pins = 0;
    let mut worst: Option<(f64, String)> = None;
    for &id in ids {
        let kind = netlist.component(id).kind();
        for window in separation_windows(kind) {
            let pin = Pin::new(id, window.pin);
            // Earliest/latest possible pulse arrival at this exact pin:
            // the start injection plus every incoming wire, each shifted
            // by its source cell's arrival + propagation + wire delay.
            let mut lo: Option<f64> = None;
            let mut hi: Option<f64> = None;
            let mut merge = |a: f64, b: f64| {
                lo = Some(lo.map_or(a, |v| v.min(a)));
                hi = Some(hi.map_or(b, |v| v.max(b)));
            };
            if starts.contains(&pin) {
                merge(0.0, 0.0);
            }
            for &(from, wire_ps) in sources.get(&pin).map_or(&[][..], Vec::as_slice) {
                let Some(prop) = netlist.component(from.component).propagation_delay() else {
                    continue;
                };
                if let (Some(e), Some(l)) = (earliest.at(from.component), latest.at(from.component))
                {
                    merge(e + prop.as_ps() + wire_ps, l + prop.as_ps() + wire_ps);
                }
            }
            let (Some(lo), Some(hi)) = (lo, hi) else {
                continue; // pin never pulsed under this schedule
            };
            checked_pins += 1;
            let spread = hi - lo;
            let slack = spec.issue_period_ps - spread - window.window_ps;
            let pin_name = input_pin_name(kind, window.pin);
            let pin_path = format!("{}.{}", netlist.label(id), pin_name);
            if worst.as_ref().is_none_or(|(w, _)| slack < *w) {
                worst = Some((slack, pin_path.clone()));
            }
            if slack < -1e-9 {
                findings.push(Finding {
                    rule: RuleId::TimingSlack,
                    severity: Severity::Error,
                    path: netlist.label(id).to_string(),
                    message: format!(
                        "{pin_name} arrivals span [{lo:.1}, {hi:.1}] ps; issue period {:.1} ps \
                         leaves {slack:+.1} ps slack against the {:.0} ps window \
                         (dynamic kind \"{}\")",
                        spec.issue_period_ps, window.window_ps, window.violation_kind
                    ),
                    fix_hint: "slow the issue schedule or rebalance the reconvergent paths".into(),
                });
            } else if spread > 1e-9 {
                findings.push(Finding {
                    rule: RuleId::TimingSlack,
                    severity: Severity::Info,
                    path: netlist.label(id).to_string(),
                    message: format!(
                        "{pin_name} is a pulse-train pin (arrival spread {spread:.1} ps); \
                         within-operation separation is enforced dynamically, not statically"
                    ),
                    fix_hint: "none needed — covered by the runtime violation checkers".into(),
                });
            }
        }
    }
    Some(TimingSummary {
        issue_period_ps: spec.issue_period_ps,
        checked_pins,
        worst_slack_ps: worst.as_ref().map(|(s, _)| *s),
        worst_pin: worst.map(|(_, p)| p).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use sfq_cells::storage::Ndroc;
    use sfq_cells::transport::{Jtl, Merger, Splitter};
    use sfq_cells::CircuitBuilder;
    use sfq_sim::netlist::Pin;

    use crate::{lint, LintPorts, RuleId, Severity, TimingSpec};

    /// A legal chain: jtl -> splitter -> two jtls -> merger -> NDROC CLK.
    fn clean_fixture() -> (sfq_sim::netlist::Netlist, LintPorts) {
        let mut b = CircuitBuilder::new();
        let root = b.jtl();
        let s = b.splitter();
        let j0 = b.jtl();
        let j1 = b.jtl();
        let m = b.merger();
        let nd = b.ndroc();
        b.connect(Pin::new(root, Jtl::OUT), Pin::new(s, Splitter::IN));
        b.connect(Pin::new(s, Splitter::OUT0), Pin::new(j0, Jtl::IN));
        b.connect(Pin::new(s, Splitter::OUT1), Pin::new(j1, Jtl::IN));
        b.connect(Pin::new(j0, Jtl::OUT), Pin::new(m, Merger::IN_A));
        b.connect(Pin::new(j1, Jtl::OUT), Pin::new(m, Merger::IN_B));
        b.connect(Pin::new(m, Merger::OUT), Pin::new(nd, Ndroc::CLK));
        let start = Pin::new(root, Jtl::IN);
        let ports = LintPorts {
            external_inputs: vec![start, Pin::new(nd, Ndroc::SET), Pin::new(nd, Ndroc::RESET)],
            external_outputs: vec![Pin::new(nd, Ndroc::OUT0), Pin::new(nd, Ndroc::OUT1)],
            timing: Some(TimingSpec {
                starts: vec![start],
                issue_period_ps: 120.0,
            }),
        };
        (b.finish(), ports)
    }

    #[test]
    fn clean_fixture_lints_clean() {
        let (netlist, ports) = clean_fixture();
        let report = lint(&netlist, &ports);
        assert!(report.is_clean(), "unexpected findings:\n{report}");
        // Symmetric reconvergence: zero spread, slack = 120 - 53 = 67.
        let t = report.timing.expect("timing spec provided");
        assert_eq!(t.checked_pins, 1);
        assert_eq!(t.worst_slack_ps, Some(67.0));
    }

    #[test]
    fn undeclared_ports_are_dangling() {
        let (netlist, mut ports) = clean_fixture();
        ports.external_inputs.truncate(1); // drop SET/RESET declarations
        let report = lint(&netlist, &ports);
        assert_eq!(report.fired_rules(), vec![RuleId::DanglingInput]);
        assert_eq!(report.count(RuleId::DanglingInput), 2);
    }

    #[test]
    fn shrunk_issue_period_breaks_slack() {
        let (netlist, mut ports) = clean_fixture();
        ports.timing.as_mut().unwrap().issue_period_ps = 40.0;
        let report = lint(&netlist, &ports);
        assert_eq!(report.fired_rules(), vec![RuleId::TimingSlack]);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.timing.unwrap().worst_slack_ps, Some(-13.0));
    }

    #[test]
    fn budget_check_appends_on_mismatch() {
        let (netlist, ports) = clean_fixture();
        let mut report = lint(&netlist, &ports);
        let jj = report.census.jj_total();
        let uw = report.census.static_power_uw();
        crate::budget_check(&mut report, jj, uw);
        assert!(report.is_clean());
        crate::budget_check(&mut report, jj + 2, uw);
        assert_eq!(report.fired_rules(), vec![RuleId::Budget]);
    }

    #[test]
    fn train_pins_get_info_not_error() {
        // Asymmetric reconvergence (2 vs 7 ps JTLs): spread 5 ps at the
        // NDROC CLK -> info finding, still clean at a slow schedule.
        let mut b = CircuitBuilder::new();
        let root = b.jtl();
        let s = b.splitter();
        let j0 = b.jtl();
        let j1 = b.jtl_with_delay(sfq_sim::time::Duration::from_ps(7.0));
        let m = b.merger();
        let nd = b.ndroc();
        b.connect(Pin::new(root, Jtl::OUT), Pin::new(s, Splitter::IN));
        b.connect(Pin::new(s, Splitter::OUT0), Pin::new(j0, Jtl::IN));
        b.connect(Pin::new(s, Splitter::OUT1), Pin::new(j1, Jtl::IN));
        b.connect(Pin::new(j0, Jtl::OUT), Pin::new(m, Merger::IN_A));
        b.connect(Pin::new(j1, Jtl::OUT), Pin::new(m, Merger::IN_B));
        b.connect(Pin::new(m, Merger::OUT), Pin::new(nd, Ndroc::CLK));
        let start = Pin::new(root, Jtl::IN);
        let ports = LintPorts {
            external_inputs: vec![start, Pin::new(nd, Ndroc::SET), Pin::new(nd, Ndroc::RESET)],
            external_outputs: vec![Pin::new(nd, Ndroc::OUT0), Pin::new(nd, Ndroc::OUT1)],
            timing: Some(TimingSpec {
                starts: vec![start],
                issue_period_ps: 120.0,
            }),
        };
        let report = lint(&b.finish(), &ports);
        assert!(report.is_clean(), "unexpected errors:\n{report}");
        assert_eq!(report.count(RuleId::TimingSlack), 1);
        assert_eq!(report.count_severity(Severity::Info), 1);
        assert_eq!(report.timing.unwrap().worst_slack_ps, Some(62.0));
    }
}
