//! Per-kind pin profiles: how many input/output pins each cell has, what
//! they are called, and which separation windows apply. This mirrors the
//! pin constants of `sfq-cells` (`Jtl::IN`, `Ndroc::CLK`, …) in a form
//! the rule engine can index by the component's `kind()` string.

use sfq_cells::timing::{HCDRO_PULSE_SEP_PS, NDROC_REARM_PS};

/// Static pin-count profile of a cell kind.
#[derive(Debug, Clone, Copy)]
pub struct PinProfile {
    /// The `kind()` string of the cell.
    pub kind: &'static str,
    /// Number of input pins (indices `0..inputs`).
    pub inputs: u8,
    /// Number of output pins (indices `0..outputs`).
    pub outputs: u8,
    /// Input pin names, indexed by pin.
    pub input_names: &'static [&'static str],
}

const PROFILES: &[PinProfile] = &[
    PinProfile {
        kind: "jtl",
        inputs: 1,
        outputs: 1,
        input_names: &["IN"],
    },
    PinProfile {
        kind: "splitter",
        inputs: 1,
        outputs: 2,
        input_names: &["IN"],
    },
    PinProfile {
        kind: "merger",
        inputs: 2,
        outputs: 1,
        input_names: &["IN_A", "IN_B"],
    },
    PinProfile {
        kind: "dro",
        inputs: 2,
        outputs: 1,
        input_names: &["D", "CLK"],
    },
    PinProfile {
        kind: "hcdro",
        inputs: 2,
        outputs: 1,
        input_names: &["D", "CLK"],
    },
    PinProfile {
        kind: "ndro",
        inputs: 3,
        outputs: 1,
        input_names: &["SET", "RESET", "CLK"],
    },
    PinProfile {
        kind: "ndroc",
        inputs: 3,
        outputs: 2,
        input_names: &["SET", "RESET", "CLK"],
    },
    PinProfile {
        kind: "dand",
        inputs: 2,
        outputs: 1,
        input_names: &["A", "B"],
    },
    PinProfile {
        kind: "and",
        inputs: 3,
        outputs: 1,
        input_names: &["A", "B", "CLK"],
    },
    PinProfile {
        kind: "xor",
        inputs: 3,
        outputs: 1,
        input_names: &["A", "B", "CLK"],
    },
    PinProfile {
        kind: "not",
        inputs: 2,
        outputs: 1,
        input_names: &["A", "CLK"],
    },
    PinProfile {
        kind: "sync",
        inputs: 2,
        outputs: 1,
        input_names: &["D", "CLK"],
    },
    PinProfile {
        kind: "counter_bit",
        inputs: 3,
        outputs: 2,
        input_names: &["IN", "READ", "RESET"],
    },
];

/// Looks up the pin profile for a cell kind, if it is a library cell.
pub fn profile_of(kind: &str) -> Option<&'static PinProfile> {
    PROFILES.iter().find(|p| p.kind == kind)
}

/// Name of an input pin for diagnostics (`"?"` when out of range or the
/// kind is unknown).
pub fn input_pin_name(kind: &str, pin: u8) -> &'static str {
    profile_of(kind)
        .and_then(|p| p.input_names.get(pin as usize).copied())
        .unwrap_or("?")
}

/// A minimum pulse-separation requirement at one input pin — the static
/// shadow of a dynamic violation check.
#[derive(Debug, Clone, Copy)]
pub struct SeparationWindow {
    /// The guarded input pin.
    pub pin: u8,
    /// Required separation between successive pulses at the pin (ps).
    pub window_ps: f64,
    /// The dynamic violation kind this window corresponds to.
    pub violation_kind: &'static str,
}

const NDROC_WINDOWS: &[SeparationWindow] = &[SeparationWindow {
    pin: 2, // Ndroc::CLK
    window_ps: NDROC_REARM_PS,
    violation_kind: "re-arm",
}];

const HCDRO_WINDOWS: &[SeparationWindow] = &[
    SeparationWindow {
        pin: 0, // HcDro::D
        window_ps: HCDRO_PULSE_SEP_PS,
        violation_kind: "hold",
    },
    SeparationWindow {
        pin: 1, // HcDro::CLK
        window_ps: HCDRO_PULSE_SEP_PS,
        violation_kind: "hold",
    },
];

/// The separation windows guarding a cell kind's input pins.
pub fn separation_windows(kind: &str) -> &'static [SeparationWindow] {
    match kind {
        "ndroc" => NDROC_WINDOWS,
        "hcdro" => HCDRO_WINDOWS,
        _ => &[],
    }
}
