//! `sfq-lint`: static netlist DRC and min/max-path timing analysis.
//!
//! The qPalace/qSTA-style pre-flight pass of the HiPerRF reproduction:
//! every rule runs over a plain [`Netlist`]
//! without simulating, so malformed circuits are caught at construction
//! time rather than (maybe) by the dynamic violation checkers. The rule
//! families, in the order they run:
//!
//! | rule id            | severity | what it catches |
//! |--------------------|----------|-----------------|
//! | `unknown-kind`     | warning  | components without a pin profile (test doubles) |
//! | `pin-range`        | error    | wires referencing pin indices a cell does not have |
//! | `dup-wire`         | error    | parallel wires between the same pin pair (double driving) |
//! | `fanout`           | error    | an output pin driving more than one sink (SFQ fan-out needs explicit splitters) |
//! | `fanin`            | error    | an input pin driven by more than one source (reconvergence needs a merger) |
//! | `merger-inputs`    | error    | mergers without exactly two driven inputs |
//! | `dangling-input`   | error    | input pins neither wired nor declared as external ports |
//! | `undriven-storage` | error    | storage cells with no driven input at all |
//! | `unreachable`      | error    | components no external input can ever pulse |
//! | `dropped-wire`     | error    | output pins driving nothing without a declared external output — pulses silently disappearing (the static backstop of the typed builder's endpoint ledger) |
//! | `cycle`            | error/info | feedback loops, with a witness path and suggested cut set; free-running transport loops are errors, clocked feedback (HiPerRF loopback, shift rings) is informational |
//! | `timing-slack`     | error/info | static separation slack from min/max-path STA against the NDROC 53 ps re-arm and HC-DRO 10 ps windows |
//! | `budget`           | error    | lint-walk JJ count / static power diverging from `budget::structural_budget` (appended by [`budget_check`]) |
//!
//! The timing rule is the static counterpart of the dynamic `violation.rs`
//! checks: with operations issued every `issue_period_ps`, the latest
//! pulse of one operation and the earliest pulse of the next arrive at a
//! pin at least `issue_period − (max_arrival − min_arrival)` apart, so a
//! *negative* `slack = issue_period − spread − window` means the schedule
//! can statically violate the cell's re-arm/separation window. Pins whose
//! min/max arrivals differ (pulse-train pins) additionally get an `info`
//! finding: their *within*-operation spacing is not statically provable
//! and remains guarded by the dynamic checkers.

mod pins;
mod report;
mod rules;

pub use pins::{input_pin_name, profile_of, separation_windows, PinProfile, SeparationWindow};
pub use report::{Finding, LintReport, RuleId, Severity, TimingSummary};

use sfq_sim::netlist::{Netlist, Pin};

/// The issue schedule a netlist is analysed against.
#[derive(Debug, Clone)]
pub struct TimingSpec {
    /// Pins carrying the pulse front of one operation (injected at t = 0).
    pub starts: Vec<Pin>,
    /// Gap between successive operations (ps).
    pub issue_period_ps: f64,
}

/// The external-port context a design supplies for linting: which input
/// pins the test bench drives (so they are neither dangling nor
/// unreachable roots) and, optionally, the issue schedule for the static
/// timing rule.
#[derive(Debug, Clone, Default)]
pub struct LintPorts {
    /// Input pins injected from outside the netlist.
    pub external_inputs: Vec<Pin>,
    /// Output pins observed from outside the netlist (probe pads, monitor
    /// branches) — exempt from the `dropped-wire` rule.
    pub external_outputs: Vec<Pin>,
    /// Issue schedule for the separation-slack rule; `None` skips it.
    pub timing: Option<TimingSpec>,
}

/// Runs every structural and timing rule over `netlist`.
pub fn lint(netlist: &Netlist, ports: &LintPorts) -> LintReport {
    rules::run(netlist, ports)
}

/// Appends the `budget` cross-check: the census the lint walk produced
/// must agree with an independently derived budget (JJ count and static
/// power). `hiperrf::lint` feeds this from `budget::structural_budget`.
pub fn budget_check(report: &mut LintReport, expected_jj: u64, expected_power_uw: f64) {
    let jj = report.census.jj_total();
    let power = report.census.static_power_uw();
    if jj != expected_jj || (power - expected_power_uw).abs() > 1e-6 {
        report.findings.push(Finding {
            rule: RuleId::Budget,
            severity: Severity::Error,
            path: String::new(),
            message: format!(
                "lint walk counted {jj} JJ / {power:.2} µW but the structural budget \
                 expects {expected_jj} JJ / {expected_power_uw:.2} µW"
            ),
            fix_hint: "reconcile the netlist with budget::structural_budget — a cell was \
                       added or removed outside the budgeted scopes"
                .into(),
        });
    }
}
