//! Trait-level conformance suite for the design registry.
//!
//! Every design enumerated by [`hiperrf::designs::registry`] is driven
//! purely through the [`RegisterFile`] trait — no concrete types — so a
//! new variant only has to implement the trait and register itself to be
//! held to the same contract:
//!
//! * write/read round trips for every register,
//! * destructive reads restore the stored value (peek after read),
//! * peeking never perturbs stored state or port behaviour,
//! * fault-plan replay is deterministic under a fixed seed,
//! * violation-policy behaviour: clean runs stay clean under `Degrade`,
//!   `Record` never destroys pulses, and every `Degrade` drop is
//!   explained by a recorded violation,
//! * scheduler independence: round trips behave identically on the
//!   calendar queue, the lane-batched queue, and the reference heap, and
//!   the scheduler counters stay sane (events flow, simulated time never
//!   runs backwards, peak queue depth is exact on every scheduler).

use hiperrf::config::RfGeometry;
use hiperrf::designs::{registry, Design};
use sfq_sim::prelude::*;

fn small() -> RfGeometry {
    RfGeometry::paper_4x4()
}

/// A width-fitting value that differs per register.
fn pattern(reg: usize, width: usize) -> u64 {
    (reg as u64).wrapping_mul(0b1011).wrapping_add(0b0101) & ((1u64 << width) - 1)
}

#[test]
fn write_read_round_trips_every_register() {
    for design in registry() {
        let mut rf = design.build(small());
        let g = rf.geometry();
        for reg in 0..g.registers() {
            rf.write(reg, pattern(reg, g.width()));
        }
        for reg in 0..g.registers() {
            assert_eq!(rf.read(reg), pattern(reg, g.width()), "{design} r{reg}");
        }
        assert!(
            rf.violations().is_empty(),
            "{design}: {:?}",
            rf.violations()
        );
    }
}

#[test]
fn destructive_reads_are_restored() {
    // HC-DRO pops destroy the stored fluxons; the LoopBuffer must put
    // them back. Non-destructive designs must trivially hold the value.
    for design in registry() {
        let mut rf = design.build(small());
        rf.write(2, 0b1101);
        for i in 0..5 {
            assert_eq!(rf.read(2), 0b1101, "{design} read {i}");
            assert_eq!(rf.peek(2), 0b1101, "{design} state after read {i}");
        }
        assert!(rf.violations().is_empty(), "{design}");
    }
}

#[test]
fn peek_does_not_perturb_state() {
    for design in registry() {
        let mut rf = design.build(small());
        rf.write(1, 0b0111);
        rf.write(3, 0b1000);
        for _ in 0..50 {
            assert_eq!(rf.peek(1), 0b0111, "{design}");
            assert_eq!(rf.peek(3), 0b1000, "{design}");
        }
        // Ports still behave after heavy peeking.
        assert_eq!(rf.read(1), 0b0111, "{design}");
        assert_eq!(rf.read(3), 0b1000, "{design}");
        assert!(rf.violations().is_empty(), "{design}");
    }
}

#[test]
fn skewless_skewed_write_equals_plain_write() {
    for design in registry() {
        let mut a = design.build(small());
        let mut b = design.build(small());
        a.write(1, 0b1001);
        b.write_skewed(1, 0b1001, 0.0);
        assert_eq!(a.peek(1), b.peek(1), "{design}");
        assert_eq!(a.read(1), b.read(1), "{design}");
    }
}

/// One seeded soak under a violation policy; returns everything an
/// identical replay must reproduce.
fn faulted_soak(
    design: Design,
    policy: ViolationPolicy,
    seed: u64,
    sigma: f64,
) -> (Vec<u64>, usize, u64) {
    let mut rf = design.build(small());
    rf.set_violation_policy(policy);
    rf.set_fault_plan(FaultPlan::new(seed).with_delay_sigma(sigma));
    let g = rf.geometry();
    let mut reads = Vec::new();
    for reg in 0..g.registers() {
        rf.write(reg, pattern(reg, g.width()));
    }
    for reg in 0..g.registers() {
        reads.push(rf.read(reg));
    }
    (reads, rf.violations().len(), rf.degraded_drops())
}

#[test]
fn fault_plan_replay_is_deterministic() {
    for design in registry() {
        for sigma in [0.02, 0.08] {
            let a = faulted_soak(design, ViolationPolicy::Degrade, 0x5EED_CAFE, sigma);
            let b = faulted_soak(design, ViolationPolicy::Degrade, 0x5EED_CAFE, sigma);
            assert_eq!(a, b, "{design} at sigma {sigma}: replay diverged");
        }
    }
}

#[test]
fn violation_policies_behave_as_documented() {
    // Record never destroys pulses; Degrade only drops a pulse when it
    // also records the violation that caused the drop.
    for design in registry() {
        for seed in [1u64, 2, 3] {
            let (_, _, record_drops) = faulted_soak(design, ViolationPolicy::Record, seed, 0.12);
            assert_eq!(
                record_drops, 0,
                "{design} seed {seed}: Record dropped pulses"
            );
            let (_, violations, drops) = faulted_soak(design, ViolationPolicy::Degrade, seed, 0.12);
            if drops > 0 {
                assert!(violations > 0, "{design} seed {seed}: unexplained drops");
            }
        }
    }
}

#[test]
fn zero_sigma_degrade_runs_stay_clean() {
    for design in registry() {
        let (reads, violations, drops) = faulted_soak(design, ViolationPolicy::Degrade, 7, 0.0);
        let g = small();
        for (reg, &read) in reads.iter().enumerate() {
            assert_eq!(read, pattern(reg, g.width()), "{design} r{reg}");
        }
        assert_eq!(violations, 0, "{design}");
        assert_eq!(drops, 0, "{design}");
    }
}

#[test]
fn round_trips_hold_on_every_scheduler() {
    // The same conformance sweep, parametrized over both event-queue
    // implementations: a design must not care which scheduler it runs on.
    for design in registry() {
        let per_kind: Vec<(Vec<u64>, usize, u64)> = SchedulerKind::ALL
            .iter()
            .map(|&kind| {
                let mut rf = design.build(small());
                rf.set_scheduler(kind);
                assert_eq!(rf.scheduler_kind(), kind, "{design}");
                let g = rf.geometry();
                for reg in 0..g.registers() {
                    rf.write(reg, pattern(reg, g.width()));
                }
                let reads = (0..g.registers()).map(|reg| rf.read(reg)).collect();
                (
                    reads,
                    rf.violations().len(),
                    rf.sim_stats().events_processed,
                )
            })
            .collect();
        for pair in per_kind.windows(2) {
            assert_eq!(pair[0], pair[1], "{design}: schedulers disagree");
        }
    }
}

#[test]
fn sim_stats_are_sane_and_monotone() {
    for design in registry() {
        let mut rf = design.build(small());
        let before = rf.sim_stats();
        rf.write(1, 0b1010);
        let after_write = rf.sim_stats();
        assert!(
            after_write.events_processed > before.events_processed,
            "{design}: a write must process events"
        );
        assert!(
            after_write.peak_queue_depth > 0,
            "{design}: a write must enqueue events"
        );
        let _ = rf.read(1);
        let after_read = rf.sim_stats();
        assert!(
            after_read.events_processed > after_write.events_processed,
            "{design}: a read must process events"
        );
        assert!(
            after_read.sim_time_advanced >= after_write.sim_time_advanced,
            "{design}: sim time went backwards"
        );
        assert!(
            after_read.peak_queue_depth >= after_write.peak_queue_depth,
            "{design}: peak queue depth shrank"
        );
    }
}

#[test]
fn peak_queue_depth_is_exact_under_lane_batching() {
    // The lane-batched scheduler spreads pending events over a serving
    // batch, per-cell self-echo lanes, an insertion buffer, the wheel,
    // and an overflow heap. `peak_queue_depth` must still count every
    // pending event exactly — the same number the reference heap (whose
    // `len()` is trivially exact) reports — and stay monotone within a
    // run.
    for design in registry() {
        let depth_trace = |kind: SchedulerKind| {
            let mut rf = design.build(small());
            rf.set_scheduler(kind);
            let g = rf.geometry();
            let mut peaks = Vec::new();
            for reg in 0..g.registers() {
                rf.write(reg, pattern(reg, g.width()));
                peaks.push(rf.sim_stats().peak_queue_depth);
            }
            for reg in 0..g.registers() {
                let _ = rf.read(reg);
                peaks.push(rf.sim_stats().peak_queue_depth);
            }
            peaks
        };
        let reference = depth_trace(SchedulerKind::ReferenceHeap);
        let lane = depth_trace(SchedulerKind::LaneBatched);
        assert_eq!(
            reference, lane,
            "{design}: lane-batched peak depth diverged from the heap"
        );
        assert!(
            lane.windows(2).all(|w| w[0] <= w[1]),
            "{design}: peak depth must be monotone within a run"
        );
        assert!(*lane.last().unwrap() > 0, "{design}: no events enqueued");
    }
}

#[test]
fn census_matches_structural_budget() {
    for design in registry() {
        let rf = design.build(small());
        let budget = hiperrf::budget::structural_budget(design, small());
        assert_eq!(rf.census(), budget.census(), "{design}");
    }
}

#[test]
fn arch_mapping_round_trips() {
    for design in registry() {
        if let Some(arch) = design.arch_design() {
            assert_eq!(Design::from_arch(arch), design, "{design}");
        }
    }
}
