//! Readout-delay and loopback-latency models (paper Tables III and IV).
//!
//! The readout delay is the time from the decoder issuing a read enable to
//! the operand bits being available to the ALU. It decomposes into named
//! per-stage terms; the per-level term covers one NDROC demux stage plus
//! one output-merger-tree stage plus the inter-stage link, and the constant
//! tail covers the storage-cell pop and the output conditioning:
//!
//! * baseline NDRO RF: `L` levels × 33.5 ps + 10 ps tail,
//! * HiPerRF: `L` levels × 32.5 ps + 57.8 ps tail (HC-CLK serialization,
//!   LoopBuffer transit, HC-READ decode),
//! * dual-banked: `L-1` levels (half-depth demux) × 32.5 ps + the HiPerRF
//!   tail + a 4.5 ps bank-output stage.
//!
//! These compositions reproduce the paper's Table III **exactly** at all
//! nine entries. Table IV adds place-and-route wire delay at 2.62 ps per
//! gate-to-gate hop (262 µm mean PTL wire at 1 ps/100 µm, paper §VI-C).

use sfq_cells::timing::{
    HCDRO_CLK_TO_OUT_PS, HCDRO_PULSE_SEP_PS, MERGER_DELAY_PS, NDROC_PROP_PS, NDRO_CLK_TO_OUT_PS,
    PTL_HOP_PS, RF_CYCLE_PS, SPLITTER_DELAY_PS,
};

use crate::config::RfGeometry;

/// The three register-file designs of the evaluation, plus the compiler-
/// ideal banked variant used in Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfDesign {
    /// Baseline clock-less NDRO register file (paper §III).
    NdroBaseline,
    /// Single-bank HiPerRF (paper §IV).
    HiPerRf,
    /// Dual-banked HiPerRF (paper §V).
    DualBanked,
    /// Dual-banked HiPerRF with an ideal bank-aware compiler: every
    /// instruction's two sources land in different banks (paper §VI-B).
    DualBankedIdeal,
}

impl RfDesign {
    /// All four designs in the paper's reporting order.
    pub const ALL: [RfDesign; 4] = [
        RfDesign::NdroBaseline,
        RfDesign::HiPerRf,
        RfDesign::DualBanked,
        RfDesign::DualBankedIdeal,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            RfDesign::NdroBaseline => "NDRO RF (Baseline Design)",
            RfDesign::HiPerRf => "HiPerRF",
            RfDesign::DualBanked => "Dual-banked HiPerRF",
            RfDesign::DualBankedIdeal => "Dual-banked HiPerRF (ideal)",
        }
    }
}

/// Per-demux-level latency on the baseline read path: NDROC propagation +
/// one output-merger stage + inter-stage link.
pub const NDRO_LEVEL_PS: f64 = NDROC_PROP_PS + MERGER_DELAY_PS + 4.5;
/// Per-demux-level latency on the HC read path (narrower column fan gives
/// a shorter link).
pub const HC_LEVEL_PS: f64 = NDROC_PROP_PS + MERGER_DELAY_PS + 3.5;
/// Constant tail of the baseline read path: NDRO pop + output conditioning.
pub const NDRO_TAIL_PS: f64 = NDRO_CLK_TO_OUT_PS + 5.0;
/// Constant tail of the HiPerRF read path: HC-CLK first pulse (8) + two
/// further serial pulses (20) + HC-DRO pop (5) + LoopBuffer transit (5) +
/// LoopBuffer output splitter (3) + HC-READ latch (4) + decode/conditioning
/// tail (12.8).
pub const HIPERRF_TAIL_PS: f64 = (SPLITTER_DELAY_PS + MERGER_DELAY_PS)
    + 2.0 * HCDRO_PULSE_SEP_PS
    + HCDRO_CLK_TO_OUT_PS
    + NDRO_CLK_TO_OUT_PS
    + SPLITTER_DELAY_PS
    + 4.0
    + 12.8;
/// Extra output stage merging the two banks onto the operand bus.
pub const BANK_OUTPUT_PS: f64 = 4.5;

/// Post-place-and-route wire hop counts on the critical read path for the
/// 32×32 configuration (paper §VI-C); scaled by demux level for other
/// sizes. Closed form — `sfq_chip::pnr::structural_readout_hops` derives
/// the same counts from the elaborated netlist and asserts agreement.
pub fn readout_hops(design: RfDesign, levels: usize) -> u32 {
    match design {
        RfDesign::NdroBaseline => (3 * levels) as u32, // 15 at L=5
        RfDesign::HiPerRf => (3 * levels + 4) as u32,  // 19 at L=5
        RfDesign::DualBanked | RfDesign::DualBankedIdeal => (3 * levels + 2) as u32, // 17
    }
}

/// Readout delay excluding wire delay (paper Table III).
pub fn readout_delay_ps(design: RfDesign, geometry: RfGeometry) -> f64 {
    let levels = geometry.demux_levels() as f64;
    match design {
        RfDesign::NdroBaseline => levels * NDRO_LEVEL_PS + NDRO_TAIL_PS,
        RfDesign::HiPerRf => levels * HC_LEVEL_PS + HIPERRF_TAIL_PS,
        RfDesign::DualBanked | RfDesign::DualBankedIdeal => {
            (levels - 1.0) * HC_LEVEL_PS + HIPERRF_TAIL_PS + BANK_OUTPUT_PS
        }
    }
}

/// Readout delay including PTL wire delay (paper Table IV).
pub fn readout_delay_with_wires_ps(design: RfDesign, geometry: RfGeometry) -> f64 {
    readout_delay_ps(design, geometry)
        + readout_hops(design, geometry.demux_levels()) as f64 * PTL_HOP_PS
}

/// Loopback latency: time from a value leaving the LoopBuffer until it is
/// rewritten into the source register, including the one-RF-cycle wait for
/// the loopback write enable issued in the following cycle (paper Fig. 11)
/// and PTL wire delay on the loopback path.
///
/// Returns `None` for the baseline design (no loopback).
pub fn loopback_latency_ps(design: RfDesign, geometry: RfGeometry) -> Option<f64> {
    let n = geometry.registers() as f64;
    let data_tree = n.log2() * SPLITTER_DELAY_PS;
    match design {
        RfDesign::NdroBaseline => None,
        RfDesign::HiPerRf => {
            // LB pop + output splitter + loopback join merger + data fan +
            // DAND + 9 wire hops + the next-cycle write enable.
            let logical =
                NDRO_CLK_TO_OUT_PS + SPLITTER_DELAY_PS + MERGER_DELAY_PS + data_tree + 4.0;
            Some(logical + 9.0 * PTL_HOP_PS + RF_CYCLE_PS)
        }
        RfDesign::DualBanked | RfDesign::DualBankedIdeal => {
            // Banking removes one merger and one splitter and three wire
            // hops from the loopback path (paper §V: "about 10ps").
            let half_tree = (n / 2.0).log2() * SPLITTER_DELAY_PS;
            let logical = NDRO_CLK_TO_OUT_PS + MERGER_DELAY_PS + half_tree + 4.0;
            Some(logical + 6.0 * PTL_HOP_PS + RF_CYCLE_PS)
        }
    }
}

/// Paper-reported reference values for Tables III and IV.
pub mod paper {
    /// Table III readout delay (ps) for (4×4, 16×16, 32×32).
    pub const READOUT_NDRO: [f64; 3] = [77.0, 144.0, 177.5];
    /// Table III HiPerRF readout delays (ps).
    pub const READOUT_HIPERRF: [f64; 3] = [122.8, 187.8, 220.3];
    /// Table III dual-banked readout delays (ps).
    pub const READOUT_DUAL: [f64; 3] = [94.8, 159.8, 192.3];
    /// Table IV readout delay with PTL wires at 32×32 (ps).
    pub const READOUT_WIRES: [f64; 3] = [216.8, 270.1, 236.8];
    /// Table IV loopback latency with PTL wires at 32×32 (ps):
    /// (HiPerRF, dual-banked).
    pub const LOOPBACK_WIRES: [f64; 2] = [108.4, 93.7];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduced_exactly() {
        for (i, g) in RfGeometry::paper_sizes().iter().enumerate() {
            assert!(
                (readout_delay_ps(RfDesign::NdroBaseline, *g) - paper::READOUT_NDRO[i]).abs()
                    < 0.05,
                "baseline {g}"
            );
            assert!(
                (readout_delay_ps(RfDesign::HiPerRf, *g) - paper::READOUT_HIPERRF[i]).abs() < 0.05,
                "hiperrf {g}: {}",
                readout_delay_ps(RfDesign::HiPerRf, *g)
            );
            assert!(
                (readout_delay_ps(RfDesign::DualBanked, *g) - paper::READOUT_DUAL[i]).abs() < 0.05,
                "dual {g}: {}",
                readout_delay_ps(RfDesign::DualBanked, *g)
            );
        }
    }

    #[test]
    fn table4_readout_with_wires() {
        let g = RfGeometry::paper_32x32();
        let designs = [
            RfDesign::NdroBaseline,
            RfDesign::HiPerRf,
            RfDesign::DualBanked,
        ];
        for (d, want) in designs.iter().zip(paper::READOUT_WIRES) {
            let got = readout_delay_with_wires_ps(*d, g);
            assert!((got - want).abs() < 0.1, "{d:?}: got {got}, want {want}");
        }
    }

    #[test]
    fn table4_loopback_close_to_paper() {
        let g = RfGeometry::paper_32x32();
        let hi = loopback_latency_ps(RfDesign::HiPerRf, g).unwrap();
        let dual = loopback_latency_ps(RfDesign::DualBanked, g).unwrap();
        assert!(
            (hi - paper::LOOPBACK_WIRES[0]).abs() / paper::LOOPBACK_WIRES[0] < 0.02,
            "{hi}"
        );
        assert!(
            (dual - paper::LOOPBACK_WIRES[1]).abs() / paper::LOOPBACK_WIRES[1] < 0.02,
            "{dual}"
        );
        assert!(loopback_latency_ps(RfDesign::NdroBaseline, g).is_none());
    }

    #[test]
    fn delay_ordering_matches_paper() {
        // baseline < dual-banked < HiPerRF at every size.
        for g in RfGeometry::paper_sizes() {
            let base = readout_delay_ps(RfDesign::NdroBaseline, g);
            let dual = readout_delay_ps(RfDesign::DualBanked, g);
            let hi = readout_delay_ps(RfDesign::HiPerRf, g);
            assert!(base < dual && dual < hi, "{g}");
        }
    }

    #[test]
    fn overhead_shrinks_with_size() {
        // Paper §VI-A: readout-delay overhead shrinks as the RF grows.
        let mut prev = f64::INFINITY;
        for regs in [4usize, 16, 32, 64, 128] {
            let g = RfGeometry::new(regs, 32).unwrap();
            let ratio = readout_delay_ps(RfDesign::HiPerRf, g)
                / readout_delay_ps(RfDesign::NdroBaseline, g);
            assert!(ratio < prev, "ratio {ratio} at {regs} regs");
            prev = ratio;
        }
    }

    #[test]
    fn ideal_variant_shares_banked_timing() {
        let g = RfGeometry::paper_32x32();
        assert_eq!(
            readout_delay_ps(RfDesign::DualBanked, g),
            readout_delay_ps(RfDesign::DualBankedIdeal, g)
        );
    }
}
