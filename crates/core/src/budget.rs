//! JJ / power budgets for the register-file designs, derived two ways.
//!
//! [`structural_budget`] is the source of truth: it elaborates a design's
//! netlist and walks its hierarchical instance scopes, grouping every cell
//! into a named section. The closed-form budgets below enumerate the same
//! cells analytically, section by section, and tests assert the two
//! derivations are *identical* — the formulas cross-check the structure
//! and vice versa. Both regenerate the paper's Table I (JJ count) and
//! Table II (static power).
//!
//! Terminology: `n` = registers, `w` = bits per register, `c = w/2` HC-DRO
//! columns, `L = log2(n)` demux levels.

use sfq_cells::{CellKind, Census};

use crate::config::RfGeometry;
use crate::designs::Design;

/// One named section of a design budget (e.g. `"read port"`).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSection {
    /// Section name.
    pub name: &'static str,
    /// Cells in the section.
    pub census: Census,
}

/// A per-section cell budget for a register-file design.
#[derive(Debug, Clone, PartialEq)]
pub struct RfBudget {
    /// Design name (for reports).
    pub design: &'static str,
    /// Geometry the budget was computed for.
    pub geometry: RfGeometry,
    /// Sections in display order.
    pub sections: Vec<BudgetSection>,
}

impl RfBudget {
    /// Merged census over all sections.
    pub fn census(&self) -> Census {
        let mut total = Census::default();
        for s in &self.sections {
            total.merge(&s.census);
        }
        total
    }

    /// Total JJ count.
    pub fn jj_total(&self) -> u64 {
        self.census().jj_total()
    }

    /// Total static power (µW).
    pub fn static_power_uw(&self) -> f64 {
        self.census().static_power_uw()
    }
}

/// Splitters in the SEL-distribution trees of one NDROC demux: level `i`
/// has `2^i` NDROCs sharing one select bit, needing `2^i - 1` splitters;
/// summed over levels 1..L this is `n - L - 1`.
fn demux_sel_splitters(n: usize, levels: usize) -> u64 {
    (n - levels - 1) as u64
}

/// Splitters broadcasting the demux RESET to all `n - 1` NDROCs.
fn demux_reset_splitters(n: usize) -> u64 {
    (n - 2) as u64
}

fn demux_census(n: usize, levels: usize) -> Census {
    let mut c = Census::default();
    c.add(CellKind::Ndroc, (n - 1) as u64);
    c.add(
        CellKind::Splitter,
        demux_sel_splitters(n, levels) + demux_reset_splitters(n),
    );
    c
}

/// Cells of one HC-CLK pulse tripler (see `sfq_cells::composite`).
fn hc_clk_census(count: u64) -> Census {
    let mut c = Census::default();
    c.add(CellKind::Splitter, 2 * count);
    c.add(CellKind::Merger, 2 * count);
    c.add(CellKind::Jtl, 2 * count);
    c
}

/// Cells of one HC-WRITE serializer.
fn hc_write_census(count: u64) -> Census {
    let mut c = Census::default();
    c.add(CellKind::Splitter, count);
    c.add(CellKind::Merger, 2 * count);
    c.add(CellKind::Jtl, 3 * count);
    c
}

/// Cells of one HC-READ decoder.
fn hc_read_census(count: u64) -> Census {
    let mut c = Census::default();
    c.add(CellKind::CounterBit, 2 * count);
    c.add(CellKind::Splitter, 2 * count);
    c
}

/// Budget for the baseline clock-less NDRO register file (paper §III).
pub fn ndro_rf_budget(geometry: RfGeometry) -> RfBudget {
    let n = geometry.registers();
    let w = geometry.width();
    let levels = geometry.demux_levels();

    let mut storage = Census::default();
    storage.add(CellKind::Ndro, (n * w) as u64);

    // Read port: demux tree + per-register read-enable splitter trees
    // fanning each demux output across the register's w cells.
    let mut read_port = demux_census(n, levels);
    read_port.add(CellKind::Splitter, (n * (w - 1)) as u64);

    // Reset port: identical structure, driven by W_ADDR (paper §III-B).
    let reset_port = read_port.clone();

    // Write port: demux + WEN fan-out trees + W_DATA fan-out trees + one
    // dynamic AND per bit cell (paper §III-C, Fig. 7).
    let mut write_port = demux_census(n, levels);
    write_port.add(CellKind::Splitter, (n * (w - 1)) as u64); // WEN trees
    write_port.add(CellKind::Splitter, (w * (n - 1)) as u64); // W_DATA trees
    write_port.add(CellKind::Dand, (n * w) as u64);

    // Output port: per-bit-column merger trees.
    let mut output_port = Census::default();
    output_port.add(CellKind::Merger, ((n - 1) * w) as u64);

    RfBudget {
        design: "NDRO RF (baseline)",
        geometry,
        sections: vec![
            BudgetSection {
                name: "storage",
                census: storage,
            },
            BudgetSection {
                name: "read port",
                census: read_port,
            },
            BudgetSection {
                name: "reset port",
                census: reset_port,
            },
            BudgetSection {
                name: "write port",
                census: write_port,
            },
            BudgetSection {
                name: "output port",
                census: output_port,
            },
        ],
    }
}

/// Budget for HiPerRF (paper §IV).
pub fn hiperrf_budget(geometry: RfGeometry) -> RfBudget {
    let n = geometry.registers();
    let c = geometry.hc_columns();
    let levels = geometry.demux_levels();

    let mut storage = Census::default();
    storage.add(CellKind::HcDro, (n * c) as u64);

    // Read port: demux + one HC-CLK per register + per-register splitter
    // trees fanning the tripled enable across c columns. No reset port —
    // the read port doubles as the erase port via the LoopBuffer
    // (paper §IV-C).
    let mut read_port = demux_census(n, levels);
    read_port.merge(&hc_clk_census(n as u64));
    read_port.add(CellKind::Splitter, (n * (c - 1)) as u64);

    // Write port: demux + HC-CLK per register + WEN gate trees + DANDs +
    // HC-WRITE per column + loopback-join merger per column + W_DATA
    // fan-out trees.
    let mut write_port = demux_census(n, levels);
    write_port.merge(&hc_clk_census(n as u64));
    write_port.add(CellKind::Splitter, (n * (c - 1)) as u64); // gate trees
    write_port.add(CellKind::Dand, (n * c) as u64);
    write_port.merge(&hc_write_census(c as u64));
    write_port.add(CellKind::Merger, c as u64); // loopback join
    write_port.add(CellKind::Splitter, (c * (n - 1)) as u64); // data trees

    // Output port: column merger trees + LoopBuffer NDROs with SET/RESET
    // broadcast trees + per-column output splitter (loopback vs HC-READ) +
    // HC-READ decoders with READ/RESET broadcast trees.
    let mut output_port = Census::default();
    output_port.add(CellKind::Merger, ((n - 1) * c) as u64);
    output_port.add(CellKind::Ndro, c as u64); // LoopBuffer
    output_port.add(CellKind::Splitter, c as u64); // LoopBuffer out
    output_port.add(CellKind::Splitter, 2 * (c - 1) as u64); // LB set/reset trees
    output_port.merge(&hc_read_census(c as u64));
    output_port.add(CellKind::Splitter, 2 * (c - 1) as u64); // HC-READ read/reset trees

    RfBudget {
        design: "HiPerRF",
        geometry,
        sections: vec![
            BudgetSection {
                name: "storage",
                census: storage,
            },
            BudgetSection {
                name: "read port",
                census: read_port,
            },
            BudgetSection {
                name: "write port",
                census: write_port,
            },
            BudgetSection {
                name: "output port",
                census: output_port,
            },
        ],
    }
}

/// Budget for the dual-banked HiPerRF (paper §V): two half-size banks plus
/// the port-interface fan-out (data-bit splitters to both banks, read-SEL
/// conditioning taps, enable taps).
pub fn dual_banked_budget(geometry: RfGeometry) -> RfBudget {
    let bank = geometry
        .bank_geometry()
        .expect("dual-banked needs >= 4 registers");
    let w = geometry.width();
    let levels = geometry.demux_levels();

    let bank_budget = hiperrf_budget(bank);
    let mut sections = Vec::new();
    for which in ["bank 0", "bank 1"] {
        for s in &bank_budget.sections {
            sections.push(BudgetSection {
                name: match (which, s.name) {
                    ("bank 0", "storage") => "bank0 storage",
                    ("bank 0", "read port") => "bank0 read port",
                    ("bank 0", "write port") => "bank0 write port",
                    ("bank 0", "output port") => "bank0 output port",
                    ("bank 1", "storage") => "bank1 storage",
                    ("bank 1", "read port") => "bank1 read port",
                    ("bank 1", "write port") => "bank1 write port",
                    _ => "bank1 output port",
                },
                census: s.census.clone(),
            });
        }
    }

    // Interface: one splitter per data bit feeding both banks' HC-WRITE
    // inputs, one conditioning tap per bank read-SEL bit, one tap per bank
    // enable.
    let mut interface = Census::default();
    interface.add(CellKind::Splitter, w as u64 + 2 * (levels - 1) as u64 + 2);
    sections.push(BudgetSection {
        name: "bank interface",
        census: interface,
    });

    RfBudget {
        design: "Dual-banked HiPerRF",
        geometry,
        sections,
    }
}

/// Budget for a hypothetical monolithic multi-ported HiPerRF with
/// `read_ports` read ports (each of which, per paper §V, drags in its own
/// loopback write port). This is the design point the paper *rejects* in
/// favour of banking: "a 32x32 bits HiPerRF with two read ports and two
/// write ports costs nearly triple the JJ counts due to superlinear
/// increase in the merger, splitter, and other peripheral circuitry".
///
/// Extra costs per additional port beyond the duplicated port machinery:
/// every cell's output must split toward each output network, and every
/// cell's CLK/D pins need mergers to accept enables/data from each port.
///
/// # Panics
///
/// Panics if `read_ports` is zero.
pub fn multi_port_hiperrf_budget(geometry: RfGeometry, read_ports: usize) -> RfBudget {
    assert!(
        read_ports >= 1,
        "a register file needs at least one read port"
    );
    let n = geometry.registers();
    let c = geometry.hc_columns();
    let base = hiperrf_budget(geometry);
    if read_ports == 1 {
        return base;
    }
    let extra = (read_ports - 1) as u64;

    let mut sections = base.sections;
    // Each extra read port duplicates the read port, the write port (for
    // its loopback), and the whole output port (merger trees, LoopBuffer,
    // HC-READ).
    let per_port: Vec<Census> = sections[1..4].iter().map(|s| s.census.clone()).collect();
    for (i, name) in [
        "extra read ports",
        "extra write ports",
        "extra output ports",
    ]
    .iter()
    .enumerate()
    {
        let mut census = Census::default();
        for _ in 0..extra {
            census.merge(&per_port[i]);
        }
        sections.push(BudgetSection { name, census });
    }
    // Cross-port plumbing at every cell: output splitters toward each
    // output network, CLK mergers for the enables, D mergers for the data.
    let mut plumbing = Census::default();
    plumbing.add(CellKind::Splitter, (n * c) as u64 * extra);
    plumbing.add(CellKind::Merger, 2 * (n * c) as u64 * extra);
    sections.push(BudgetSection {
        name: "cross-port cell plumbing",
        census: plumbing,
    });

    RfBudget {
        design: "Multi-ported HiPerRF",
        geometry,
        sections,
    }
}

/// The closed-form budget of a registered design — the analytic
/// cross-check for [`structural_budget`].
pub fn closed_form_budget(design: Design, geometry: RfGeometry) -> RfBudget {
    match design {
        Design::NdroBaseline => ndro_rf_budget(geometry),
        Design::HiPerRf => hiperrf_budget(geometry),
        Design::DualBanked => dual_banked_budget(geometry),
        Design::ShiftRegister => crate::shift_rf::shift_rf_budget(geometry),
    }
}

/// Maps a HiPerRF-bank scope's leading segment to its budget section.
fn hc_section(segment: &str) -> Option<&'static str> {
    if segment.starts_with("reg") {
        return Some("storage");
    }
    match segment {
        "read" => Some("read port"),
        // The datapath (HC-WRITE serializers, loopback join, W_DATA fan)
        // is part of the write port in the paper's accounting.
        "write" | "datapath" => Some("write port"),
        "output" => Some("output port"),
        _ => None,
    }
}

/// Maps an elaborated-netlist scope path to the budget section its cells
/// belong to.
///
/// # Panics
///
/// Panics on a scope no section claims — a new builder region must be
/// assigned a section here before structural budgets cover it.
fn section_of(design: Design, scope: &str) -> &'static str {
    let mut segments = scope.split('/');
    let head = segments.next().unwrap_or("");
    let section = match design {
        Design::NdroBaseline => {
            if head.starts_with("reg") {
                Some("storage")
            } else {
                match head {
                    "read" => Some("read port"),
                    "reset" => Some("reset port"),
                    "write" => Some("write port"),
                    "output" => Some("output port"),
                    _ => None,
                }
            }
        }
        Design::HiPerRf => hc_section(head),
        Design::DualBanked => match head {
            "interface" => Some("bank interface"),
            "bank0" => segments.next().and_then(hc_section).and_then(|s| match s {
                "storage" => Some("bank0 storage"),
                "read port" => Some("bank0 read port"),
                "write port" => Some("bank0 write port"),
                "output port" => Some("bank0 output port"),
                _ => None,
            }),
            "bank1" => segments.next().and_then(hc_section).and_then(|s| match s {
                "storage" => Some("bank1 storage"),
                "read port" => Some("bank1 read port"),
                "write port" => Some("bank1 write port"),
                "output port" => Some("bank1 output port"),
                _ => None,
            }),
            _ => None,
        },
        Design::ShiftRegister => {
            if head.starts_with("ring") {
                match segments.next() {
                    Some("bits") => Some("storage"),
                    _ => Some("ring plumbing"),
                }
            } else {
                match head {
                    // Recirculation-gate SET/RESET distribution belongs to
                    // the rings it controls.
                    "gating" => Some("ring plumbing"),
                    "clock" | "wdata" => Some("ports"),
                    _ => None,
                }
            }
        }
    };
    section.unwrap_or_else(|| panic!("unmapped scope {scope:?} for design {design}"))
}

/// Derives a design's budget from its *elaborated netlist*: builds the
/// structural model, walks every component's hierarchical scope, and
/// groups cells into sections (in first-appearance order, which the
/// builders lay out to match the closed-form section order).
///
/// This is the structure-derived source of truth behind the Table I / II
/// reports; [`closed_form_budget`] is its analytic cross-check.
pub fn structural_budget(design: Design, geometry: RfGeometry) -> RfBudget {
    let rf = design.build(geometry);
    let netlist = rf.netlist();
    let mut sections: Vec<BudgetSection> = Vec::new();
    for (id, _, component) in netlist.iter() {
        let name = section_of(design, netlist.scope_of(id));
        let census = Census::of_components([component]);
        match sections.iter_mut().find(|s| s.name == name) {
            Some(s) => s.census.merge(&census),
            None => sections.push(BudgetSection { name, census }),
        }
    }
    RfBudget {
        design: closed_form_budget(design, geometry).design,
        geometry,
        sections,
    }
}

/// Paper-reported reference values for Tables I and II.
pub mod paper {
    /// Table I: total JJ count for (4×4, 16×16, 32×32).
    pub const JJ_NDRO: [u64; 3] = [784, 9_850, 36_722];
    /// Table I: HiPerRF JJ counts.
    pub const JJ_HIPERRF: [u64; 3] = [695, 5_195, 16_133];
    /// Table I: dual-banked HiPerRF JJ counts.
    pub const JJ_DUAL: [u64; 3] = [736, 5_626, 17_094];
    /// Table II: static power (µW) for the baseline.
    pub const POWER_NDRO: [f64; 3] = [170.73, 1_997.49, 7_262.17];
    /// Table II: HiPerRF static power (µW).
    pub const POWER_HIPERRF: [f64; 3] = [149.16, 1_220.05, 3_911.00];
    /// Table II: dual-banked static power (µW).
    pub const POWER_DUAL: [f64; 3] = [148.47, 1_289.89, 4_077.88];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(ours: f64, paper: f64) -> f64 {
        (ours - paper).abs() / paper
    }

    #[test]
    fn ndro_4x4_matches_paper_exactly() {
        let b = ndro_rf_budget(RfGeometry::paper_4x4());
        assert_eq!(b.jj_total(), 784, "paper Table I reports exactly 784 JJs");
    }

    #[test]
    fn ndro_jj_tracks_table1() {
        for (g, paper) in RfGeometry::paper_sizes().iter().zip(paper::JJ_NDRO) {
            let ours = ndro_rf_budget(*g).jj_total();
            assert!(
                rel_err(ours as f64, paper as f64) < 0.01,
                "{g}: ours {ours} vs paper {paper}"
            );
        }
    }

    #[test]
    fn hiperrf_jj_tracks_table1() {
        for (g, paper) in RfGeometry::paper_sizes().iter().zip(paper::JJ_HIPERRF) {
            let ours = hiperrf_budget(*g).jj_total();
            assert!(
                rel_err(ours as f64, paper as f64) < 0.05,
                "{g}: ours {ours} vs paper {paper}"
            );
        }
    }

    #[test]
    fn dual_banked_jj_tracks_table1() {
        for (g, paper) in RfGeometry::paper_sizes().iter().zip(paper::JJ_DUAL) {
            let ours = dual_banked_budget(*g).jj_total();
            assert!(
                rel_err(ours as f64, paper as f64) < 0.02,
                "{g}: ours {ours} vs paper {paper}"
            );
        }
    }

    #[test]
    fn hiperrf_beats_baseline_at_scale() {
        // The paper's headline: ~56% JJ reduction at 32×32, shrinking
        // advantage at 4×4 where the overhead circuits dominate.
        let g = RfGeometry::paper_32x32();
        let base = ndro_rf_budget(g).jj_total() as f64;
        let hi = hiperrf_budget(g).jj_total() as f64;
        let saving = 1.0 - hi / base;
        assert!(saving > 0.5 && saving < 0.6, "32x32 saving was {saving:.3}");

        let g4 = RfGeometry::paper_4x4();
        let saving4 =
            1.0 - hiperrf_budget(g4).jj_total() as f64 / ndro_rf_budget(g4).jj_total() as f64;
        assert!(
            saving4 < 0.2,
            "4x4 saving should be small, got {saving4:.3}"
        );
    }

    #[test]
    fn dual_banked_costs_more_than_single() {
        for g in RfGeometry::paper_sizes() {
            assert!(dual_banked_budget(g).jj_total() > hiperrf_budget(g).jj_total());
        }
    }

    #[test]
    fn power_tracks_table2() {
        for (i, g) in RfGeometry::paper_sizes().iter().enumerate() {
            assert!(
                rel_err(ndro_rf_budget(*g).static_power_uw(), paper::POWER_NDRO[i]) < 0.04,
                "baseline power {g}"
            );
            assert!(
                rel_err(
                    hiperrf_budget(*g).static_power_uw(),
                    paper::POWER_HIPERRF[i]
                ) < 0.02,
                "hiperrf power {g}"
            );
            assert!(
                rel_err(
                    dual_banked_budget(*g).static_power_uw(),
                    paper::POWER_DUAL[i]
                ) < 0.10,
                "dual power {g}"
            );
        }
    }

    #[test]
    fn advantage_grows_with_size() {
        // Paper §VI-A: the relative advantage of HiPerRF grows with size.
        let mut prev = 0.0;
        for regs in [4usize, 8, 16, 32, 64, 128] {
            let g = RfGeometry::new(regs, regs.min(64)).unwrap();
            let saving =
                1.0 - hiperrf_budget(g).jj_total() as f64 / ndro_rf_budget(g).jj_total() as f64;
            assert!(saving > prev, "saving should grow: {saving} at {regs} regs");
            prev = saving;
        }
    }

    #[test]
    fn two_port_hiperrf_nearly_triples() {
        // Paper §V: a 2R2W 32x32 HiPerRF "costs nearly triple the JJ
        // counts"; banking achieves two ports for ~8% extra.
        let g = RfGeometry::paper_32x32();
        let single = hiperrf_budget(g).jj_total() as f64;
        let two_port = multi_port_hiperrf_budget(g, 2).jj_total() as f64;
        let ratio = two_port / single;
        // Our plumbing model lands at ~2.3x; the paper's qualitative
        // "nearly triple" presumably includes routing growth our flat
        // per-cell terms do not capture. Either way the conclusion stands:
        assert!((2.2..3.2).contains(&ratio), "2R2W ratio {ratio:.2}");
        let banked = dual_banked_budget(g).jj_total() as f64;
        assert!(
            banked < 0.5 * two_port,
            "banking must be far cheaper than true 2R2W"
        );
    }

    #[test]
    fn one_port_multi_budget_is_the_plain_budget() {
        let g = RfGeometry::paper_16x16();
        assert_eq!(
            multi_port_hiperrf_budget(g, 1).jj_total(),
            hiperrf_budget(g).jj_total()
        );
    }

    #[test]
    fn sections_cover_whole_budget() {
        let b = hiperrf_budget(RfGeometry::paper_32x32());
        let section_sum: u64 = b.sections.iter().map(|s| s.census.jj_total()).sum();
        assert_eq!(section_sum, b.jj_total());
    }

    #[test]
    fn demux_splitter_formulas() {
        assert_eq!(demux_sel_splitters(32, 5), 26);
        assert_eq!(demux_sel_splitters(4, 2), 1);
        assert_eq!(demux_reset_splitters(32), 30);
    }

    #[test]
    fn structural_budget_equals_closed_form_section_by_section() {
        // The tie between the two derivations: walking the elaborated
        // netlist's scopes must reproduce the analytic budget exactly —
        // same sections, same order, same per-section censuses.
        for design in crate::designs::registry() {
            for g in [RfGeometry::paper_4x4(), RfGeometry::paper_16x16()] {
                let structural = structural_budget(design, g);
                let closed = closed_form_budget(design, g);
                assert_eq!(structural, closed, "{design} at {g}");
            }
        }
    }

    #[test]
    fn structural_jj_tracks_table1() {
        // Table I from the elaborated netlists, not the formulas.
        for (i, g) in RfGeometry::paper_sizes().iter().enumerate() {
            let pairs = [
                (Design::NdroBaseline, paper::JJ_NDRO[i], 0.01),
                (Design::HiPerRf, paper::JJ_HIPERRF[i], 0.05),
                (Design::DualBanked, paper::JJ_DUAL[i], 0.02),
            ];
            for (design, paper, tol) in pairs {
                let ours = structural_budget(design, *g).jj_total();
                assert!(
                    rel_err(ours as f64, paper as f64) < tol,
                    "{design} {g}: structural {ours} vs paper {paper}"
                );
            }
        }
    }

    #[test]
    fn structural_power_tracks_table2() {
        // Table II from the elaborated netlists, not the formulas.
        for (i, g) in RfGeometry::paper_sizes().iter().enumerate() {
            let pairs = [
                (Design::NdroBaseline, paper::POWER_NDRO[i], 0.04),
                (Design::HiPerRf, paper::POWER_HIPERRF[i], 0.02),
                (Design::DualBanked, paper::POWER_DUAL[i], 0.10),
            ];
            for (design, paper, tol) in pairs {
                let ours = structural_budget(design, *g).static_power_uw();
                assert!(
                    rel_err(ours, paper) < tol,
                    "{design} {g}: structural {ours:.2} µW vs paper {paper} µW"
                );
            }
        }
    }
}
